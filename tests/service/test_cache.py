"""Result cache: byte-stable writes, corruption detection, soundness."""

from __future__ import annotations

import gzip
import json

from repro.service.cache import CACHE_SCHEMA, ResultCache
from tests.service.test_supervisor import fake_summary


def test_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    summary = fake_summary(seed=3)
    cache.put("fp1", summary)
    got = cache.get("fp1")
    assert got is not None
    # json round-trip comparison: record() carries NaN fields (and
    # NaN != NaN would fail a plain dict equality).
    assert json.dumps(got.record()) == json.dumps(summary.record())
    assert "fp1" in cache
    assert cache.fingerprints() == ["fp1"]


def test_miss_on_absent_entry(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("nope") is None
    assert cache.corrupt_dropped == 0  # absence is not corruption


def test_rewrites_are_byte_identical(tmp_path):
    # Same summary written twice (or from two service incarnations) must
    # produce the same bytes: canonical JSON + gzip mtime=0.
    a, b = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
    a.put("fp1", fake_summary(seed=3))
    b.put("fp1", fake_summary(seed=3))
    assert a.get_bytes("fp1") == b.get_bytes("fp1")


def test_corrupt_mid_stream_byte_is_dropped_not_served(tmp_path):
    # Regression: a flipped byte deep in the deflate stream raises
    # zlib.error (not an OSError subclass) — the first service chaos
    # campaign crashed on exactly this.
    cache = ResultCache(tmp_path)
    cache.put("fp1", fake_summary(seed=3))
    path = cache.path_for("fp1")
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert cache.get("fp1") is None
    assert cache.corrupt_dropped == 1
    assert not path.exists()  # dropped, so the next put starts clean


def test_truncated_entry_is_dropped(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("fp1", fake_summary(seed=3))
    path = cache.path_for("fp1")
    path.write_bytes(path.read_bytes()[:10])
    assert cache.get("fp1") is None
    assert cache.corrupt_dropped == 1


def test_fingerprint_mismatch_is_dropped(tmp_path):
    # An entry copied under the wrong key must never be served: the key
    # IS the soundness argument.
    cache = ResultCache(tmp_path)
    cache.put("fp1", fake_summary(seed=3))
    cache.path_for("fp2").write_bytes(cache.path_for("fp1").read_bytes())
    assert cache.get("fp2") is None
    assert cache.corrupt_dropped == 1


def test_unknown_schema_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("fp1", fake_summary(seed=3))
    payload = json.loads(gzip.decompress(cache.path_for("fp1").read_bytes()))
    assert payload["schema"] == CACHE_SCHEMA
    payload["schema"] = CACHE_SCHEMA + 1
    cache.path_for("fp1").write_bytes(
        gzip.compress(json.dumps(payload).encode("utf-8"), mtime=0)
    )
    assert cache.get("fp1") is None


def test_tampered_summary_fails_the_checksum(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("fp1", fake_summary(seed=3))
    payload = json.loads(gzip.decompress(cache.path_for("fp1").read_bytes()))
    payload["summary"]["delivered"] = 10**6
    cache.path_for("fp1").write_bytes(
        gzip.compress(json.dumps(payload).encode("utf-8"), mtime=0)
    )
    assert cache.get("fp1") is None
    assert cache.corrupt_dropped == 1
