"""Worker supervisor: retries, heartbeat timeouts, kills, quarantine."""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.chaos.corpus import load_entry
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import backoff_delays
from repro.reports.summary import FailedRun, RunSummary
from repro.rng import derive_seed
from repro.service.supervisor import (
    ERROR_TIMEOUT,
    ERROR_WORKER_DEATH,
    WorkerSupervisor,
)


def config(seed=1, **kw):
    return ScenarioConfig(
        name="svc-test", n_nodes=4, sim_time=20.0, policy="fifo",
        router="snw", seed=seed, **kw,
    )


def fake_summary(seed=1):
    """A cheap deterministic RunSummary (no simulator run)."""
    cfg = config(seed=seed)
    return RunSummary(
        scenario=cfg.name, policy=cfg.policy, seed=cfg.seed,
        sim_time=cfg.sim_time, initial_copies=cfg.initial_copies,
        buffer_bytes=cfg.buffer_bytes, interval_range=cfg.interval_range,
        created=10, delivered=7, relayed=20, delivery_ratio=0.7,
        average_hopcount=1.5, overhead_ratio=2.0, average_latency=30.0,
    )


def failed(cfg, kind="Boom"):
    return FailedRun(
        scenario=cfg.name, policy=cfg.policy, seed=cfg.seed,
        error_type=kind, error_message="injected failure",
    )


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestInline:
    def test_success_settles_immediately(self):
        sup = WorkerSupervisor(0, run_fn=lambda c: fake_summary(c.seed))
        sup.submit("j1", config())
        outcomes = sup.poll()
        assert [o.job_id for o in outcomes] == ["j1"]
        assert isinstance(outcomes[0].result, RunSummary)
        assert outcomes[0].attempts == 1
        assert sup.pending() == 0

    def test_failure_retries_after_seeded_backoff(self):
        clock = FakeClock()
        calls = []

        def flaky(cfg):
            calls.append(cfg.seed)
            return failed(cfg) if len(calls) == 1 else fake_summary(cfg.seed)

        sup = WorkerSupervisor(
            0, run_fn=flaky, max_attempts=2, seed=9,
            backoff_base=0.5, backoff_cap=2.0, clock=clock.now,
        )
        sup.submit("j1", config(seed=4))
        assert sup.poll() == []  # first attempt failed; retry scheduled
        delay = backoff_delays(
            derive_seed(9, "service.backoff", "j1"), 1, base=0.5, cap=2.0
        )[0]
        clock.advance(delay * 0.99)
        assert sup.poll() == []  # backoff not elapsed: deterministic wait
        clock.advance(delay * 0.02)
        outcomes = sup.poll()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0].result, RunSummary)
        assert outcomes[0].attempts == 2
        # Cache soundness: the retry reran the byte-exact same config
        # (same seed), never a mutated one.
        assert calls == [4, 4]
        assert sup.stats.retries == 1

    def test_poison_job_is_quarantined_as_a_corpus_entry(self, tmp_path):
        sup = WorkerSupervisor(
            0, run_fn=failed, max_attempts=2, backoff_base=0.0,
            quarantine_dir=tmp_path, clock=FakeClock().now,
        )
        sup.submit("j1", config(seed=5))  # attempt 1 fails, retry at t+0
        outcomes = sup.poll()  # retry due immediately; attempt 2 exhausts
        assert len(outcomes) == 1
        result = outcomes[0].result
        assert isinstance(result, FailedRun)
        assert result.attempts == 2
        assert outcomes[0].quarantine
        entry = load_entry(outcomes[0].quarantine)
        assert entry["failure"]["invariant"] == "Boom"
        assert "j1" in entry["failure"]["detail"]
        assert sup.stats.quarantined == 1

    def test_dead_supervisor_refuses_work(self):
        sup = WorkerSupervisor(0, run_fn=lambda c: fake_summary())
        sup.mark_dead()
        assert not sup.has_capacity()
        with pytest.raises(ConfigurationError):
            sup.submit("j1", config())

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerSupervisor(0, max_attempts=0)

    def test_backoff_schedule_is_deterministic_per_job(self):
        sup = WorkerSupervisor(0, seed=7, max_attempts=4)
        expected = backoff_delays(
            derive_seed(7, "service.backoff", "jX"), 3,
            base=0.05, cap=2.0,
        )
        assert sup._backoff_for("jX") == expected
        assert sup._backoff_for("jX") != sup._backoff_for("jY")


# -- process mode ------------------------------------------------------------
# run_fns must be module-level (spawn workers unpickle them by qualname).


def sleep_once_then_summary(cfg):
    """Sleeps long on the first attempt (marker file), fast after."""
    marker = Path(os.environ["REPRO_SERVICE_TEST_DIR"]) / f"ran-{cfg.seed}"
    if not marker.exists():
        marker.write_text("1", encoding="utf-8")
        time.sleep(60.0)
    return fake_summary(cfg.seed)


def hang_forever(cfg):
    time.sleep(60.0)
    return fake_summary(cfg.seed)


def quick_summary(cfg):
    return fake_summary(cfg.seed)


def wait_for(sup, n, budget=30.0):
    """Real-time poll loop until *n* outcomes arrive (process mode)."""
    outcomes = []
    deadline = time.perf_counter() + budget
    while len(outcomes) < n and time.perf_counter() < deadline:
        outcomes.extend(sup.poll())
        if len(outcomes) < n:
            time.sleep(0.05)
    return outcomes


class TestProcessMode:
    def test_runs_jobs_on_workers(self):
        sup = WorkerSupervisor(2, run_fn=quick_summary)
        try:
            sup.submit("j1", config(seed=1))
            sup.submit("j2", config(seed=2))
            outcomes = wait_for(sup, 2)
            assert sorted(o.job_id for o in outcomes) == ["j1", "j2"]
            assert all(isinstance(o.result, RunSummary) for o in outcomes)
        finally:
            sup.shutdown()

    def test_sigkilled_worker_is_detected_and_job_retried(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_TEST_DIR", str(tmp_path))
        sup = WorkerSupervisor(
            1, run_fn=sleep_once_then_summary, max_attempts=2,
            backoff_base=0.0,
        )
        try:
            sup.submit("j1", config(seed=6))
            # Wait until the worker has started the job (marker exists),
            # then SIGKILL it mid-run.
            deadline = time.perf_counter() + 15.0
            while (
                not (tmp_path / "ran-6").exists()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.05)
            assert (tmp_path / "ran-6").exists()
            assert sup.kill_worker(0) is not None
            outcomes = wait_for(sup, 1)
            assert len(outcomes) == 1
            assert isinstance(outcomes[0].result, RunSummary)
            assert outcomes[0].attempts == 2
            assert sup.stats.worker_deaths == 1
            assert sup.stats.pool_rebuilds >= 1
            assert sup.healthy  # rebuilt, not degraded
        finally:
            sup.shutdown()

    def test_heartbeat_timeout_is_pure_clock_arithmetic(self):
        # The deadline check runs on the injected clock: advancing it past
        # the timeout fails the flight without any real waiting.
        clock = FakeClock()
        sup = WorkerSupervisor(
            1, run_fn=hang_forever, timeout=5.0, max_attempts=1,
            backoff_base=0.0, clock=clock.now,
        )
        try:
            sup.submit("j1", config(seed=8))
            assert sup.poll() == []  # in flight, not overdue
            clock.advance(5.1)
            outcomes = wait_for(sup, 1, budget=10.0)
            assert len(outcomes) == 1
            result = outcomes[0].result
            assert isinstance(result, FailedRun)
            assert result.error_type == ERROR_TIMEOUT
            assert sup.stats.timeouts == 1
        finally:
            sup.shutdown()

    def test_worker_death_failure_names_the_attempt(self, tmp_path):
        # A job that dies on every attempt quarantines with WorkerDeath.
        sup = WorkerSupervisor(
            1, run_fn=hang_forever, timeout=0.0, max_attempts=1,
            backoff_base=0.0, quarantine_dir=tmp_path,
            clock=FakeClock().now,
        )
        try:
            sup.submit("j1", config(seed=9))
            # timeout=0 with a fake clock stuck at 0: deadline == now, so
            # advance is needed; use a real poll loop after bumping.
            sup._clock = lambda: 1.0
            outcomes = wait_for(sup, 1, budget=10.0)
            assert len(outcomes) == 1
            assert outcomes[0].result.error_type == ERROR_TIMEOUT
            assert outcomes[0].quarantine  # max_attempts exhausted
        finally:
            sup.shutdown()


def test_error_worker_death_constant_is_used_for_broken_pools():
    # Sanity: the constant exists and is distinct from the timeout type
    # (the service journal and docs taxonomy rely on both names).
    assert ERROR_WORKER_DEATH == "WorkerDeath"
    assert ERROR_TIMEOUT == "WorkerTimeout"
