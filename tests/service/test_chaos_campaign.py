"""The service chaos campaign runs clean and is deterministic."""

from __future__ import annotations

import json

from repro.chaos.service_target import run_service_campaign


def test_campaign_is_clean_and_deterministic(tmp_path):
    first = run_service_campaign(7, 4, ops_per_case=40)
    second = run_service_campaign(7, 4, ops_per_case=40)
    assert first["findings"] == [], first["findings"]
    assert first["cases_ok"] == 4
    # Byte-level determinism: the campaign is a pure function of its seed.
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_campaigns_with_different_seeds_are_independent():
    a = run_service_campaign(1, 2, ops_per_case=30)
    b = run_service_campaign(2, 2, ops_per_case=30)
    assert a["findings"] == [] and b["findings"] == []
    assert a["seed"] != b["seed"]
