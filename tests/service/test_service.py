"""ScenarioService end-to-end: lifecycle, exactly-once, overload, degraded
mode — all on workers=0 with an injected clock, so nothing here sleeps."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import config_fingerprint
from repro.reports.summary import FailedRun, RunSummary
from repro.service.api import (
    STATUS_COALESCED,
    STATUS_DONE,
    STATUS_QUEUED,
    STATUS_REJECTED,
    ScenarioService,
)
from repro.service.queue import SHED_DISPLACED
from repro.service.store import DONE, FAILED, SHED
from tests.service.test_supervisor import (
    FakeClock,
    config,
    fake_summary,
    failed,
)


class Runner:
    """Counts computes per fingerprint; fails while fail_budget holds."""

    def __init__(self):
        self.computes = {}
        self.fail_budget = {}

    def __call__(self, cfg):
        fp = config_fingerprint(cfg)
        if self.fail_budget.get(fp, 0) > 0:
            self.fail_budget[fp] -= 1
            return failed(cfg, kind="WorkerDeath")
        self.computes[fp] = self.computes.get(fp, 0) + 1
        return fake_summary(cfg.seed)


@pytest.fixture
def ctx(tmp_path):
    clock = FakeClock()
    runner = Runner()

    def make(**kw):
        options = dict(
            workers=0, queue_capacity=8, max_attempts=2, seed=3,
            backoff_base=0.0, backoff_cap=0.1, run_fn=runner,
            clock=clock.now, sleep=clock.advance,
        )
        options.update(kw)
        return ScenarioService(tmp_path / "svc", **options)

    return make, runner, clock


class TestLifecycle:
    def test_submit_drain_result(self, ctx):
        make, runner, _ = ctx
        service = make()
        ticket = service.submit(config(seed=1))
        assert ticket.status == STATUS_QUEUED and ticket.accepted
        assert service.drain()
        job = service.status(ticket.job_id)
        assert job.state == DONE and not job.cache_hit
        assert isinstance(service.result(ticket.job_id), RunSummary)
        assert service.stats.computed == 1
        assert runner.computes[ticket.fingerprint] == 1

    def test_duplicate_coalesces_then_hits_the_cache(self, ctx):
        make, runner, _ = ctx
        service = make()
        first = service.submit(config(seed=1))
        twin = service.submit(config(seed=1))
        assert twin.status == STATUS_COALESCED
        assert twin.job_id == first.job_id  # rides the in-flight job
        service.drain()
        third = service.submit(config(seed=1))
        assert third.status == STATUS_DONE and third.cached
        # One fingerprint, three submissions, exactly one compute.
        assert runner.computes == {first.fingerprint: 1}
        assert service.stats.coalesced == 1
        assert service.stats.cache_hits == 1

    def test_restart_serves_cached_results_without_recompute(self, ctx):
        make, runner, _ = ctx
        service = make()
        service.submit(config(seed=1))
        service.drain()
        service.close()
        revived = make()
        ticket = revived.submit(config(seed=1))
        assert ticket.status == STATUS_DONE and ticket.cached
        assert sum(runner.computes.values()) == 1

    def test_failed_job_reports_its_error(self, ctx):
        make, runner, _ = ctx
        cfg = config(seed=5)
        runner.fail_budget[config_fingerprint(cfg)] = 10  # poison
        service = make()
        ticket = service.submit(cfg)
        service.drain()
        job = service.status(ticket.job_id)
        assert job.state == FAILED
        result = service.result(ticket.job_id)
        assert isinstance(result, FailedRun)
        assert result.error_type == "WorkerDeath"
        assert service.supervisor.stats.quarantined == 1

    def test_retry_recovers_a_transient_failure(self, ctx):
        make, runner, _ = ctx
        cfg = config(seed=5)
        runner.fail_budget[config_fingerprint(cfg)] = 1  # fail exactly once
        service = make()
        ticket = service.submit(cfg)
        assert service.drain()
        assert service.status(ticket.job_id).state == DONE
        assert service.supervisor.stats.retries == 1
        # The retry reran the byte-exact same config.
        assert runner.computes == {ticket.fingerprint: 1}

    def test_dispatch_keys_rolling_snapshots_by_fingerprint(self, ctx):
        # The sweep engine's mid-run-resume idiom: a job with
        # snapshot_every set rolls its snapshot under the service root,
        # keyed by the submit-time fingerprint (the cache key is computed
        # before this execution-plumbing mutation).
        make, _, _ = ctx
        seen = {}

        def spy(cfg):
            seen[config_fingerprint(cfg.replace(snapshot_to=None))] = (
                cfg.snapshot_to
            )
            return fake_summary(cfg.seed)

        service = make(run_fn=spy)
        ticket = service.submit(config(seed=1, snapshot_every=5.0))
        assert service.drain()
        snap = seen[ticket.fingerprint]
        assert snap == str(
            service.root / "snap" / f"{ticket.fingerprint}.snap.gz"
        )

    def test_unknown_job_raises(self, ctx):
        make, _, _ = ctx
        with pytest.raises(ConfigurationError):
            make().status("job-ghost")


class TestExactlyOnce:
    def test_crash_between_cache_write_and_done_line_replays_as_a_hit(
        self, ctx
    ):
        # The write-ordering argument: cache.put lands BEFORE the journal's
        # done line, so a crash in between must replay as requeue → cache
        # hit, never as a second computation.
        make, runner, _ = ctx
        service = make()
        ticket = service.submit(config(seed=1))
        real_record_done = service.store.record_done

        def crash(job_id, **kw):
            raise RuntimeError("injected crash after cache.put")

        service.store.record_done = crash
        with pytest.raises(RuntimeError):
            service.drain()
        service.store.record_done = real_record_done
        assert service.cache.get(ticket.fingerprint) is not None  # put won
        service.close()

        revived = make()
        assert revived.stats.recovered == 1
        assert revived.drain()
        job = revived.status(ticket.job_id)
        assert job.state == DONE and job.cache_hit
        assert runner.computes == {ticket.fingerprint: 1}  # exactly once

    def test_crash_while_running_requeues_with_attempts_preserved(self, ctx):
        make, runner, _ = ctx
        service = make()
        # Dispatch without settling: mark running in the journal, then
        # "crash" before the supervisor outcome lands.
        ticket = service.submit(config(seed=1))
        service.store.record_running(ticket.job_id, attempts=1)
        service.close()
        revived = make()
        assert revived.stats.recovered == 1
        assert revived.drain()
        job = revived.status(ticket.job_id)
        assert job.state == DONE
        assert runner.computes == {ticket.fingerprint: 1}


class TestOverload:
    def test_full_queue_rejects_with_a_retry_hint(self, ctx):
        make, _, _ = ctx
        service = make(queue_capacity=2)
        for seed in (1, 2):
            assert service.submit(config(seed=seed)).accepted
        ticket = service.submit(config(seed=3))
        assert ticket.status == STATUS_REJECTED and not ticket.accepted
        assert ticket.retry_after is not None and ticket.retry_after > 0
        assert service.stats.rejected == 1
        # Rejection is stateless: nothing was journaled for it.
        assert len(service.store.jobs()) == 2

    def test_priority_displacement_sheds_with_a_counted_reason(self, ctx):
        make, _, _ = ctx
        service = make(queue_capacity=2)
        service.submit(config(seed=1))
        victim = service.submit(config(seed=2))
        urgent = service.submit(config(seed=3), priority=5)
        assert urgent.status == STATUS_QUEUED
        shed_job = service.status(victim.job_id)
        assert shed_job.state == SHED
        assert shed_job.shed_reason == SHED_DISPLACED
        assert service.stats.shed == 1  # never silent
        assert service.drain()
        # The shed job stays terminal; the survivors complete.
        assert service.status(urgent.job_id).state == DONE

    def test_rejected_duplicate_of_cached_result_is_still_served(self, ctx):
        make, _, _ = ctx
        service = make(queue_capacity=1)
        done = service.submit(config(seed=1))
        service.drain()
        service.submit(config(seed=2))  # fills the queue
        # Queue is full, but the duplicate never touches admission.
        ticket = service.submit(config(seed=1))
        assert ticket.status == STATUS_DONE and ticket.cached
        assert ticket.fingerprint == done.fingerprint


class TestDegradedMode:
    def test_dead_pool_still_serves_cache_hits(self, ctx):
        make, runner, _ = ctx
        service = make()
        service.submit(config(seed=1))
        service.drain()
        service.supervisor.mark_dead()
        ticket = service.submit(config(seed=1))
        assert ticket.status == STATUS_DONE and ticket.cached
        assert service.stats.degraded_hits == 1
        assert service.report()["degraded"] is True
        assert sum(runner.computes.values()) == 1

    def test_report_is_json_safe_and_counts_everything(self, ctx):
        import json

        make, _, _ = ctx
        service = make()
        service.submit(config(seed=1))
        service.drain()
        report = service.report()
        json.dumps(report)  # must not raise
        assert report["counts"][DONE] == 1
        assert report["cache"]["entries"] == 1
        assert report["stats"]["computed"] == 1

    def test_write_report_lands_in_the_root(self, ctx):
        make, _, _ = ctx
        service = make()
        service.submit(config(seed=1))
        service.drain()
        path = service.write_report()
        assert path.exists() and path.parent == service.root
