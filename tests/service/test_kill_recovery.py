"""The kill-recovery proof, end to end through the real CLI.

A serve process is SIGKILLed mid-batch; re-running the same command
against the same root must finish every accepted job, serve duplicate
fingerprints from the cache, and exit 0.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv, **kw):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.service", *argv],
        env=env, capture_output=True, text=True, timeout=180, **kw,
    )


def spawn_cli(*argv):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", *argv],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_mid_batch(journal, budget=90.0):
    """True once >=1 job is done AND another is journaled as running —
    the kill then lands mid-computation with a cache entry already
    written, so the restart must both recover and serve hits."""
    deadline = time.perf_counter() + budget
    while time.perf_counter() < deadline:
        events = []
        if journal.exists():
            for line in journal.read_text(encoding="utf-8").splitlines():
                try:
                    events.append(json.loads(line).get("event"))
                except ValueError:
                    continue
        if "done" in events and events[-1] == "running":
            return True
        time.sleep(0.05)
    return False


def test_sigkill_mid_batch_then_restart_completes_everything(tmp_path):
    batch = tmp_path / "batch.json"
    root = tmp_path / "root"
    made = run_cli(
        "make-batch", "--out", str(batch), "--jobs", "3",
        "--duplicates", "2", "--sim-time", "60", "--nodes", "5",
    )
    assert made.returncode == 0, made.stderr

    serve_args = (
        "serve", "--root", str(root), "--batch", str(batch),
        "--workers", "1", "--max-attempts", "2", "--backoff-base", "0.0",
    )
    victim = spawn_cli(*serve_args)
    try:
        assert wait_for_mid_batch(root / "journal.jsonl")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            victim.kill()
    assert victim.returncode == -signal.SIGKILL

    # Same command, same root: recovery replays the journal and finishes.
    revived = run_cli(*serve_args)
    assert revived.returncode == 0, revived.stdout + revived.stderr

    report = run_cli("report", "--root", str(root))
    assert report.returncode == 0
    state = json.loads(report.stdout)
    # Every accepted job reached a terminal state; nothing stuck.
    assert state["counts"]["queued"] == 0
    assert state["counts"]["running"] == 0
    assert state["counts"]["failed"] == 0
    # 3 computed jobs, plus cache-hit jobs for the resubmissions of the
    # fingerprint that completed before the kill (same-run duplicates of
    # still-open fingerprints coalesce and create no job of their own).
    assert state["counts"]["done"] >= 4
    # Duplicate fingerprints never recompute: each fingerprint has at most
    # one non-cache-hit done job across BOTH service incarnations.
    computed = [
        j["fingerprint"] for j in state["jobs"]
        if j["state"] == "done" and not j["cache_hit"]
    ]
    assert len(computed) == len(set(computed))
    assert len(set(computed)) <= 3  # only 3 distinct configs exist
    assert any(j["cache_hit"] for j in state["jobs"] if j["state"] == "done")
    assert len(state["cache_entries"]) == 3
