"""Admission queue: bounded, deterministic backpressure and shedding."""

from __future__ import annotations

import pytest

from repro.service.queue import RETRY_AFTER_PER_JOB, AdmissionQueue


def fill(q, n, priority=0, start_seq=0):
    for i in range(n):
        decision = q.offer(f"j{start_seq + i}", priority=priority,
                           seq=start_seq + i)
        assert decision.admitted


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_fifo_within_a_priority():
    q = AdmissionQueue(4)
    fill(q, 3)
    assert [q.pop(), q.pop(), q.pop()] == ["j0", "j1", "j2"]
    assert q.pop() is None


def test_higher_priority_dispatches_first():
    q = AdmissionQueue(4)
    q.offer("low", priority=0, seq=0)
    q.offer("high", priority=5, seq=1)
    q.offer("mid", priority=2, seq=2)
    assert q.snapshot() == ["high", "mid", "low"]


def test_full_queue_rejects_with_growing_retry_after():
    q = AdmissionQueue(2)
    fill(q, 2)
    decision = q.offer("extra", priority=0, seq=9)
    assert not decision.admitted
    assert decision.retry_after == RETRY_AFTER_PER_JOB * 3  # depth 2 + 1
    assert decision.displaced is None
    assert len(q) == 2  # never grows


def test_higher_priority_displaces_the_newest_lowest():
    q = AdmissionQueue(2)
    q.offer("old-low", priority=0, seq=0)
    q.offer("new-low", priority=0, seq=1)
    decision = q.offer("urgent", priority=3, seq=2)
    assert decision.admitted
    # Victim is lowest priority, newest admission among equals.
    assert decision.displaced == "new-low"
    assert "urgent" in q and "old-low" in q


def test_equal_priority_never_displaces():
    q = AdmissionQueue(1)
    q.offer("first", priority=1, seq=0)
    decision = q.offer("second", priority=1, seq=1)
    assert not decision.admitted
    assert decision.displaced is None


def test_force_bypasses_the_bound_for_recovery():
    q = AdmissionQueue(1)
    fill(q, 1)
    q.force("recovered", priority=0, seq=99)
    assert len(q) == 2  # transient overshoot, drains via pop
    assert q.pop() == "j0"
    assert q.pop() == "recovered"
