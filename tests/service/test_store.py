"""Job journal: state machine legality, replay, torn-tail tolerance."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.store import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    JobStore,
)


def store(tmp_path):
    return JobStore(tmp_path / "journal.jsonl")


class TestLifecycle:
    def test_full_happy_path(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1", priority=2, config={"x": 1})
        assert s.get("j1").state == QUEUED
        assert s.get("j1").priority == 2
        s.record_running("j1", attempts=1)
        assert s.get("j1").state == RUNNING
        s.record_done("j1", cache_hit=False)
        job = s.get("j1")
        assert job.state == DONE and job.terminal and not job.cache_hit

    def test_requeue_after_crash_preserves_attempts(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        s.record_running("j1", attempts=2)
        s.record_queued("j1", "fp1", attempts=2)  # crash-recovery requeue
        job = s.get("j1")
        assert job.state == QUEUED
        assert job.attempts == 2  # poison jobs cannot dodge quarantine

    def test_queued_to_done_serves_a_cache_hit(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1", config=None)
        s.record_done("j1", cache_hit=True)
        assert s.get("j1").cache_hit

    def test_queued_to_failed_is_the_lost_config_dead_end(self, tmp_path):
        # Regression: the chaos campaign found this transition illegal —
        # a job whose config payload was torn away and whose fingerprint
        # misses the cache must be failable straight from queued.
        s = store(tmp_path)
        s.record_queued("j1", "fp1", config=None)
        s.record_failed(
            "j1", error_type="MissingConfig", error_message="gone", attempts=0
        )
        assert s.get("j1").state == FAILED

    def test_terminal_states_refuse_further_transitions(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        s.record_shed("j1", reason="displaced-by-priority")
        with pytest.raises(ConfigurationError):
            s.record_running("j1", attempts=1)
        with pytest.raises(ConfigurationError):
            s.record_queued("j1", "fp1")

    def test_unknown_job_transition_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            store(tmp_path).record_done("ghost", cache_hit=False)

    def test_shed_records_its_reason(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        s.record_shed("j1", reason="displaced-by-priority")
        assert s.get("j1").shed_reason == "displaced-by-priority"
        assert s.counts()[SHED] == 1


class TestReplay:
    def test_reload_matches_live_state(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1", config={"a": 1})
        s.record_running("j1", attempts=1)
        s.record_queued("j2", "fp2")
        reloaded = JobStore(s.path)
        assert reloaded.state_digest() == s.state_digest()
        assert reloaded.get("j1").config == {"a": 1}
        assert [j.job_id for j in reloaded.jobs()] == ["j1", "j2"]

    def test_replay_is_byte_stable(self, tmp_path):
        s = store(tmp_path)
        for i in range(5):
            s.record_queued(f"j{i}", f"fp{i}", priority=i % 2)
        s.record_running("j0", attempts=1)
        s.record_done("j0", cache_hit=False)
        a = JobStore(s.path).state_digest()
        b = JobStore(s.path).state_digest()
        assert a == b == s.state_digest()

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        with open(s.path, "a", encoding="utf-8") as fh:
            fh.write('{"job": "j2", "event": "que')  # torn, no newline
        reloaded = JobStore(s.path)
        assert reloaded.skipped_lines == 1
        assert reloaded.get("j2") is None
        assert reloaded.get("j1").state == QUEUED

    def test_append_repairs_a_torn_tail(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        with open(s.path, "a", encoding="utf-8") as fh:
            fh.write('{"job": "j2", "event": "que')
        survivor = JobStore(s.path)
        survivor.record_queued("j3", "fp3")
        reloaded = JobStore(s.path)
        # The fragment is quarantined on its own line; j1 and j3 survive.
        assert reloaded.get("j1") is not None
        assert reloaded.get("j3") is not None
        assert reloaded.skipped_lines == 1

    def test_orphan_terminal_line_keeps_the_job_visible(self, tmp_path):
        # The queued line was lost (torn earlier); a later done line must
        # not crash the replay nor drop the job.
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps(
                {"job": "j9", "event": "done", "fingerprint": "fp9",
                 "cache_hit": True}
            ) + "\n",
            encoding="utf-8",
        )
        s = JobStore(path)
        job = s.get("j9")
        assert job is not None and job.state == DONE and job.cache_hit

    def test_next_seq_resumes_past_recorded_admissions(self, tmp_path):
        s = store(tmp_path)
        s.record_queued("j1", "fp1")
        s.record_queued("j2", "fp2")
        assert JobStore(s.path).next_seq() == s.next_seq() == 2
