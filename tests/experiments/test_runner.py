"""Scenario runner: assembly, determinism, policy/router dispatch."""

from __future__ import annotations

import math

import pytest

from repro.core.sdsrp import SdsrpPolicy
from repro.errors import ConfigurationError
from repro.experiments.runner import build_scenario, run_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.policies.fifo import FifoPolicy


def tiny(policy="fifo", **kw):
    """A seconds-scale scenario for runner tests."""
    cfg = scale_scenario(
        random_waypoint_scenario(policy=policy), node_factor=0.1,
        time_factor=0.05,
    )
    return cfg.replace(**kw) if kw else cfg


class TestBuild:
    def test_assembles_stack(self):
        built = build_scenario(tiny())
        assert len(built.nodes) == 10
        assert built.nodes[0].router is not None
        assert isinstance(built.nodes[0].router.policy, FifoPolicy)
        assert built.shared is None

    def test_sdsrp_gets_shared_state(self):
        built = build_scenario(tiny(policy="sdsrp"))
        assert built.shared is not None
        p0 = built.nodes[0].router.policy
        p1 = built.nodes[1].router.policy
        assert isinstance(p0, SdsrpPolicy)
        assert p0.estimator is p1.estimator  # fleet-shared λ

    def test_sdsrp_oracle_wired(self):
        built = build_scenario(tiny(policy="sdsrp-oracle"))
        assert built.shared is not None and built.shared.oracle is not None

    def test_policy_kwargs_forwarded(self):
        cfg = tiny(policy="sdsrp", policy_kwargs={"taylor_terms": 4,
                                                  "priority_form": "taylor"})
        built = build_scenario(cfg)
        assert built.nodes[0].router.policy.params.taylor_terms == 4

    def test_bad_policy_kwargs_rejected(self):
        with pytest.raises(TypeError):
            build_scenario(tiny(policy="sdsrp",
                                policy_kwargs={"bogus_knob": 1}))

    @pytest.mark.parametrize("router", ["snw", "snw-source", "epidemic",
                                        "direct", "first-contact", "snf"])
    def test_all_router_kinds_build(self, router):
        built = build_scenario(tiny(router=router))
        assert built.nodes[0].router is not None

    @pytest.mark.parametrize("mobility", ["rwp", "taxi", "random-walk",
                                          "random-direction"])
    def test_all_mobility_kinds_build(self, mobility):
        built = build_scenario(tiny(mobility=mobility))
        assert built.world.mobility.n_nodes == 10

    def test_trace_mobility_node_count_checked(self, tmp_path):
        import numpy as np

        from repro.traces.format import write_movement_trace

        path = tmp_path / "two.txt"
        write_movement_trace(
            path, np.array([0.0, 10.0]), np.zeros((2, 2, 2))
        )
        with pytest.raises(ConfigurationError):
            build_scenario(tiny(mobility="trace", trace_path=str(path)))


class TestRun:
    def test_returns_populated_summary(self):
        summary = run_scenario(tiny())
        assert summary.created > 0
        assert 0.0 <= summary.delivery_ratio <= 1.0
        assert summary.contacts >= 0
        assert summary.wall_seconds > 0
        assert summary.policy == "fifo"

    def test_deterministic_given_seed(self):
        a = run_scenario(tiny(seed=11))
        b = run_scenario(tiny(seed=11))
        da, db = a.as_dict(), {**b.as_dict(), "wall_seconds": a.wall_seconds}
        assert da.keys() == db.keys()
        for key, va in da.items():
            vb = db[key]
            # NaN-safe: a tiny run can have no intermeeting samples at all,
            # making the (identical) means NaN on both sides.
            both_nan = (
                isinstance(va, float) and math.isnan(va)
                and isinstance(vb, float) and math.isnan(vb)
            )
            assert va == vb or both_nan, key

    def test_seed_changes_outcome(self):
        a = run_scenario(tiny(seed=11))
        b = run_scenario(tiny(seed=12))
        assert (
            a.created != b.created
            or a.delivered != b.delivered
            or a.relayed != b.relayed
        )

    def test_buffer_report_optional(self):
        built = build_scenario(tiny(with_buffer_report=True))
        built.sim.run()
        assert built.buffer_report is not None
        assert not math.isnan(built.buffer_report.mean_occupancy())
