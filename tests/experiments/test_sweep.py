"""Sweep engine: replication, ordering, aggregation."""

from __future__ import annotations

import math

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.experiments.sweep import replicate, run_many, summarize_replicates


def tiny(**kw):
    cfg = scale_scenario(
        random_waypoint_scenario(policy="fifo"), node_factor=0.08,
        time_factor=0.04,
    )
    return cfg.replace(**kw) if kw else cfg


class TestReplicate:
    def test_seeds_differ_and_are_stable(self):
        reps1 = replicate(tiny(), 4)
        reps2 = replicate(tiny(), 4)
        seeds1 = [c.seed for c in reps1]
        assert len(set(seeds1)) == 4
        assert seeds1 == [c.seed for c in reps2]

    def test_other_fields_unchanged(self):
        for rep in replicate(tiny(), 3):
            assert rep.policy == "fifo"
            assert rep.n_nodes == tiny().n_nodes


class TestRunMany:
    def test_results_in_input_order(self):
        configs = [tiny(seed=s) for s in (5, 6, 7)]
        results = run_many(configs, workers=1)
        assert [r.seed for r in results] == [5, 6, 7]

    def test_serial_equals_itself(self):
        configs = replicate(tiny(), 2)
        a = run_many(configs, workers=1)
        b = run_many(configs, workers=1)
        assert [r.delivered for r in a] == [r.delivered for r in b]


class TestSummarize:
    def test_mean_over_metric(self):
        summaries = run_many(replicate(tiny(), 3), workers=1)
        mean = summarize_replicates(summaries, "delivery_ratio")
        expected = sum(s.delivery_ratio for s in summaries) / 3
        assert mean == expected

    def test_nan_values_skipped(self):
        # A run with zero deliveries has NaN overhead; it must not poison
        # the mean.
        s1 = run_scenario(tiny(seed=1))
        values = [s1, s1]
        got = summarize_replicates(values, "overhead_ratio")
        if math.isnan(s1.overhead_ratio):
            assert math.isnan(got)
        else:
            assert got == s1.overhead_ratio


class TestBackoff:
    def test_delays_are_deterministic_per_seed(self):
        from repro.experiments.sweep import backoff_delays

        assert backoff_delays(7, 5) == backoff_delays(7, 5)
        assert backoff_delays(7, 5) != backoff_delays(8, 5)

    def test_equal_jitter_windows_and_cap(self):
        from repro.experiments.sweep import (
            BACKOFF_BASE, BACKOFF_CAP, backoff_delays,
        )

        delays = backoff_delays(3, 10)
        for k, delay in enumerate(delays, start=1):
            window = min(BACKOFF_CAP, BACKOFF_BASE * 2 ** (k - 1))
            assert window / 2 <= delay <= window
        assert max(delays) <= BACKOFF_CAP

    def test_base_scales_the_schedule(self):
        from repro.experiments.sweep import backoff_delays

        halved = backoff_delays(3, 4, base=0.25)
        full = backoff_delays(3, 4, base=0.5)
        for a, b in zip(halved, full):
            assert a == b / 2  # same jitter draw, scaled window

    def test_retry_rounds_sleep_the_seeded_schedule(self, monkeypatch):
        import time as time_module

        from repro.experiments.sweep import backoff_delays
        from repro.rng import derive_seed

        slept = []
        monkeypatch.setattr(time_module, "sleep", slept.append)

        def broken(**kw):
            return tiny(
                mobility="trace", trace_path="/nonexistent/contacts.txt", **kw
            )

        config = broken(seed=4)
        run_many([config], workers=1, retries=2, backoff_base=0.001)
        expected = backoff_delays(
            derive_seed(config.seed, "sweep.backoff"), 2, base=0.001
        )
        assert slept == expected

    def test_zero_base_disables_the_sleep(self, monkeypatch):
        import time as time_module

        def no_sleep(_seconds):
            raise AssertionError("backoff_base=0 must not sleep")

        monkeypatch.setattr(time_module, "sleep", no_sleep)

        def broken(**kw):
            return tiny(
                mobility="trace", trace_path="/nonexistent/contacts.txt", **kw
            )

        run_many([broken(seed=4)], workers=1, retries=2, backoff_base=0.0)


class TestBackoffEdges:
    def test_zero_attempts_is_empty(self):
        from repro.experiments.sweep import backoff_delays

        assert backoff_delays(7, 0) == []

    def test_zero_base_yields_all_zero_delays(self):
        from repro.experiments.sweep import backoff_delays

        assert backoff_delays(7, 5, base=0.0) == [0.0] * 5

    def test_cap_below_base_caps_every_window(self):
        from repro.experiments.sweep import backoff_delays

        delays = backoff_delays(7, 6, base=10.0, cap=1.0)
        for delay in delays:
            assert 0.5 <= delay <= 1.0  # equal jitter inside [cap/2, cap]

    def test_jitter_is_the_seeded_stream_exactly(self):
        # The jitter draws come from RngFactory(seed).stream("sweep.backoff")
        # and nowhere else: reconstructing them reproduces the schedule to
        # the bit.
        from repro.experiments.sweep import backoff_delays
        from repro.rng import RngFactory

        stream = RngFactory(11).stream("sweep.backoff")
        expected = []
        for k in range(1, 5):
            window = min(30.0, 0.5 * 2.0 ** (k - 1))
            expected.append(window * (0.5 + 0.5 * float(stream.random())))
        assert backoff_delays(11, 4) == expected


class TestRetrySeeds:
    def test_failed_item_retries_with_fresh_derived_seed(self, monkeypatch):
        # First attempt fails for one config; the retry must run a config
        # whose seed is derived from the original (never the same event
        # sequence again), and the result must land in the original slot.
        import repro.experiments.sweep as sweep_module
        from repro.reports.summary import FailedRun, RunSummary
        from repro.rng import derive_seed

        ok, bad = tiny(seed=3), tiny(seed=4)
        retry_seed = derive_seed(bad.seed, "retry", 1)
        calls = []

        def fake_safe(cfg):
            calls.append(cfg.seed)
            if cfg.seed == bad.seed:
                return FailedRun(
                    scenario=cfg.name, policy=cfg.policy, seed=cfg.seed,
                    error_type="Boom", error_message="first attempt dies",
                )
            return run_scenario(cfg)

        monkeypatch.setattr(sweep_module, "run_scenario_safe", fake_safe)
        results = run_many(
            [ok, bad], workers=1, retries=1, backoff_base=0.0
        )
        assert calls == [ok.seed, bad.seed, retry_seed]
        assert isinstance(results[0], RunSummary)
        assert results[0].seed == ok.seed
        assert isinstance(results[1], RunSummary)  # retry succeeded ...
        assert results[1].seed == retry_seed  # ... with the derived seed
        assert len(results) == 2  # ordering preserved, one slot per config
