"""Scenario presets (Tables II/III) and scaling invariants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import (
    ScenarioConfig,
    epfl_scenario,
    random_waypoint_scenario,
    scale_scenario,
)
from repro.units import kbps, megabytes, minutes


class TestTableII:
    def test_paper_parameters(self):
        cfg = random_waypoint_scenario()
        assert cfg.sim_time == 18000.0
        assert cfg.area == (4500.0, 3400.0)
        assert cfg.n_nodes == 100
        assert cfg.speed_range == (2.0, 2.0)
        assert cfg.bandwidth == pytest.approx(kbps(250))
        assert cfg.radio_range == 100.0
        assert cfg.buffer_bytes == megabytes(2.5)
        assert cfg.message_size == megabytes(0.5)
        assert cfg.interval_range == (25.0, 35.0)
        assert cfg.ttl == minutes(300)
        assert cfg.initial_copies == 32

    def test_overrides(self):
        cfg = random_waypoint_scenario(policy="fifo", initial_copies=64)
        assert cfg.policy == "fifo"
        assert cfg.initial_copies == 64


class TestTableIII:
    def test_paper_parameters(self):
        cfg = epfl_scenario()
        assert cfg.n_nodes == 200
        assert cfg.mobility == "taxi"
        assert cfg.sim_time == 18000.0
        assert cfg.buffer_bytes == megabytes(2.5)


class TestValidation:
    def test_unknown_mobility(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", n_nodes=10, sim_time=100.0,
                           mobility="teleport")

    def test_unknown_router(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", n_nodes=10, sim_time=100.0, router="ospf")

    def test_trace_needs_path(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", n_nodes=10, sim_time=100.0,
                           mobility="trace")

    def test_replace_returns_new(self):
        cfg = random_waypoint_scenario()
        other = cfg.replace(seed=99)
        assert other.seed == 99 and cfg.seed == 1


class TestScaling:
    def test_density_preserved(self):
        base = random_waypoint_scenario()
        small = scale_scenario(base, node_factor=0.4)
        base_density = base.n_nodes / (base.area[0] * base.area[1])
        small_density = small.n_nodes / (small.area[0] * small.area[1])
        assert small_density == pytest.approx(base_density, rel=0.01)

    def test_buffer_pressure_preserved(self):
        base = random_waypoint_scenario()
        small = scale_scenario(base, node_factor=0.4, time_factor=1 / 3)
        # copy-bytes per buffer-byte:
        # (sim_time/interval) * L * size / (N * buf)
        def pressure(c):
            msgs = c.sim_time / ((c.interval_range[0] + c.interval_range[1]) / 2)
            return (
                msgs * c.initial_copies * c.message_size
                / (c.n_nodes * c.buffer_bytes)
            )

        assert pressure(small) == pytest.approx(pressure(base), rel=0.05)

    def test_ttl_scales_with_time(self):
        base = random_waypoint_scenario()
        small = scale_scenario(base, time_factor=0.5)
        assert small.ttl == base.ttl * 0.5
        assert small.sim_time == base.sim_time * 0.5

    def test_copies_scale_with_nodes(self):
        small = scale_scenario(random_waypoint_scenario(), node_factor=0.4)
        assert small.initial_copies == round(32 * 0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scale_scenario(random_waypoint_scenario(), node_factor=0.0)
