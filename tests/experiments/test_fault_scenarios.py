"""Fault-plan scenarios end to end: completion, counters, determinism."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.experiments.runner import run_scenario, run_scenario_safe
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.faults import FaultPlan
from repro.reports.summary import FailedRun


def churn_config(policy: str = "sdsrp", churn: float = 0.2, **kw):
    """Tiny RWP scenario with the acceptance churn plan (duty = horizon/5)."""
    cfg = scale_scenario(
        random_waypoint_scenario(policy=policy),
        node_factor=0.08, time_factor=0.04,
    )
    duty = cfg.sim_time / 5.0
    cfg = cfg.replace(faults=FaultPlan(
        churn_fraction=churn, churn_off_time=duty, churn_on_time=duty
    ))
    return cfg.replace(**kw) if kw else cfg


def stable_record(summary) -> dict:
    """A summary's record with wall-clock timing and NaN identity removed."""
    data = summary.record()
    data.pop("wall_seconds")
    for key, value in data.items():
        if isinstance(value, float) and math.isnan(value):
            data[key] = "nan"  # NaN != NaN would fail equality checks
    return data


class TestChurnScenario:
    @pytest.mark.parametrize("policy", ["sdsrp", "fifo", "snw-c"])
    def test_completes_with_fault_counters(self, policy):
        summary = run_scenario(churn_config(policy=policy))
        assert summary.policy == policy
        assert summary.faults.get("node_down", 0) >= 1
        flat = summary.as_dict()
        assert flat["fault_node_down"] == summary.faults["node_down"]

    def test_fault_rng_stream_is_deterministic(self):
        a = run_scenario(churn_config())
        b = run_scenario(churn_config())
        assert stable_record(a) == stable_record(b)
        assert a.faults  # the comparison above was not vacuous

    def test_fault_stream_does_not_perturb_clean_runs(self):
        # Faults draw from their own named RNG stream, so a disabled plan is
        # byte-identical to no plan at all.
        base = churn_config(churn=0.0).replace(faults=None)
        with_plan = base.replace(faults=FaultPlan())
        assert stable_record(run_scenario(base)) == stable_record(
            run_scenario(with_plan)
        )

    def test_churn_degrades_but_does_not_zero_delivery(self):
        clean = run_scenario(churn_config(churn=0.0).replace(faults=None))
        churned = run_scenario(churn_config(churn=0.4))
        assert churned.created > 0
        assert churned.delivery_ratio <= clean.delivery_ratio
        assert churned.drops.get("fault", 0) >= 1

    def test_faults_round_trip_through_records(self):
        summary = run_scenario(churn_config())
        restored = type(summary).from_record(summary.record())
        assert restored == summary


class TestRunScenarioSafe:
    def test_success_returns_summary(self):
        result = run_scenario_safe(churn_config())
        assert not isinstance(result, FailedRun)
        assert result.faults.get("node_down", 0) >= 1

    def test_failure_returns_failed_run(self):
        # Passes config validation but dies in build_scenario: the trace
        # file does not exist.
        cfg = churn_config().replace(
            mobility="trace", trace_path="/nonexistent/contacts.txt"
        )
        result = run_scenario_safe(cfg)
        assert isinstance(result, FailedRun)
        assert result.scenario == cfg.name
        assert result.policy == cfg.policy
        assert result.seed == cfg.seed
        assert result.traceback  # carries the worker-side stack
        assert FailedRun.from_record(
            dataclasses.asdict(result)
        ) == result
