"""Sweep checkpoints: fingerprints, persistence, resume semantics."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.checkpoint import SweepCheckpoint, config_fingerprint
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.experiments.sweep import run_many
from repro.reports.summary import FailedRun, RunSummary


def tiny(**kw):
    cfg = scale_scenario(
        random_waypoint_scenario(policy="fifo"), node_factor=0.08,
        time_factor=0.04,
    )
    return cfg.replace(**kw) if kw else cfg


def broken(**kw):
    """Passes validation but dies in build_scenario (missing trace file)."""
    return tiny(mobility="trace", trace_path="/nonexistent/contacts.txt", **kw)


def stable(records):
    """Summary records with wall-clock timing and NaN identity normalized."""
    out = []
    for r in records:
        data = r.record()
        data.pop("wall_seconds", None)
        for key, value in data.items():
            if isinstance(value, float) and math.isnan(value):
                data[key] = "nan"  # NaN != NaN would fail equality checks
        out.append(data)
    return out


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert config_fingerprint(tiny()) == config_fingerprint(tiny())

    def test_any_field_change_changes_it(self):
        base = config_fingerprint(tiny())
        assert config_fingerprint(tiny(seed=2)) != base
        assert config_fingerprint(tiny(policy="sdsrp")) != base


class TestPersistence:
    def test_summary_roundtrip_including_nan(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        summary = run_scenario(tiny())
        assert math.isnan(summary.mean_intermeeting) or True  # either way
        SweepCheckpoint(path).record("k1", summary)
        loaded = SweepCheckpoint(path).completed("k1")
        assert isinstance(loaded, RunSummary)
        assert stable([loaded]) == stable([summary])

    def test_failed_runs_are_loaded_but_not_completed(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        failure = FailedRun("s", "fifo", 1, "RuntimeError", "boom")
        SweepCheckpoint(path).record("k1", failure)
        ckpt = SweepCheckpoint(path)
        assert ckpt.completed("k1") is None  # resume must retry it
        assert ckpt.failed("k1") == failure

    def test_last_record_per_key_wins(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.record("k1", FailedRun("s", "fifo", 1, "RuntimeError", "boom"))
        summary = run_scenario(tiny())
        ckpt.record("k1", summary)
        with pytest.warns(UserWarning, match="duplicate"):
            reloaded = SweepCheckpoint(path)
        assert reloaded.completed("k1") is not None
        assert reloaded.failed("k1") is None

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        SweepCheckpoint(path).record("k1", run_scenario(tiny()))
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "kind": "summary", "data": {"sc')
        ckpt = SweepCheckpoint(path)
        assert len(ckpt) == 1
        assert ckpt.completed("k1") is not None
        assert ckpt.completed("k2") is None

    def test_torn_line_with_valid_json_but_bad_shape_is_ignored(self, tmp_path):
        # A crash can also tear a line into a *shorter valid JSON document*
        # (e.g. the data object closed early); from_record then raises
        # TypeError, which the loader must treat like any other torn line.
        path = tmp_path / "ckpt.jsonl"
        SweepCheckpoint(path).record("k1", run_scenario(tiny()))
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "kind": "summary", "data": {}}\n')
            fh.write('{"key": "k3", "kind": "wat", "data": {}}\n')
        ckpt = SweepCheckpoint(path)
        assert len(ckpt) == 1
        assert ckpt.completed("k1") is not None
        assert ckpt.completed("k2") is None

    def test_duplicate_fingerprints_warn_once_and_keep_the_last(
        self, tmp_path
    ):
        # A journal with hand-duplicated lines (a retry history, or a
        # sweep that recomputed items after a pool rebuild before the
        # harvest fix): replay keeps the LAST record per key and warns
        # exactly once, naming the counts.
        import warnings as warnings_module

        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint(path)
        summary = run_scenario(tiny())
        ckpt.record("k1", FailedRun("s", "fifo", 1, "RuntimeError", "boom"))
        ckpt.record("k2", summary)
        # Duplicate both keys by replaying the file onto itself.
        lines = path.read_text(encoding="utf-8")
        first_k1 = json.loads(lines.splitlines()[0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(lines)  # k1 failed, k2 summary — again
            fh.write(json.dumps(first_k1) + "\n")  # k1 a third time

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            reloaded = SweepCheckpoint(path)
        dup_warnings = [
            w for w in caught if "duplicate" in str(w.message)
        ]
        assert len(dup_warnings) == 1  # once per load, not per line
        assert "3 duplicate line(s)" in str(dup_warnings[0].message)
        assert "2 fingerprint(s)" in str(dup_warnings[0].message)
        assert reloaded.duplicate_keys == 3
        # Last-write-wins: k1's final record is the failure replay, k2's
        # the summary.
        assert reloaded.failed("k1") is not None
        assert reloaded.completed("k2") is not None

    def test_clean_journal_does_not_warn(self, tmp_path):
        import warnings as warnings_module

        path = tmp_path / "ckpt.jsonl"
        SweepCheckpoint(path).record("k1", run_scenario(tiny()))
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            reloaded = SweepCheckpoint(path)
        assert [w for w in caught if "duplicate" in str(w.message)] == []
        assert reloaded.duplicate_keys == 0

    def test_record_repairs_a_torn_tail_before_appending(self, tmp_path):
        # Hand-truncate the final line (no trailing newline), then append:
        # the new record must land on its own line, not be glued onto the
        # torn fragment (which would lose both records on reload).
        path = tmp_path / "ckpt.jsonl"
        ckpt = SweepCheckpoint(path)
        summary = run_scenario(tiny())
        ckpt.record("k1", summary)
        ckpt.record("k2", summary)
        whole = path.read_bytes()
        path.write_bytes(whole[:-10])  # tear the k2 line mid-write
        survivor = SweepCheckpoint(path)
        survivor.record("k3", summary)
        reloaded = SweepCheckpoint(path)
        assert reloaded.completed("k1") is not None  # first line intact
        assert reloaded.completed("k2") is None  # torn, quarantined
        assert reloaded.completed("k3") is not None  # appended cleanly


class TestResumedSweeps:
    def test_resume_reuses_results_identically(self, tmp_path):
        configs = [tiny(seed=s) for s in (5, 6, 7)]
        uninterrupted = run_many(configs, workers=1)

        # "Killed" sweep: only the first two items got checkpointed.
        path = tmp_path / "ckpt.jsonl"
        partial = run_many(configs[:2], workers=1, checkpoint=str(path))
        assert stable(partial) == stable(uninterrupted[:2])

        # Resume over the full grid: completed runs come from the file.
        resumed = run_many(configs, workers=1, checkpoint=str(path))
        assert stable(resumed) == stable(uninterrupted)
        # The reused entries are the recorded objects, not re-runs: their
        # recorded wall clocks match the checkpointed ones exactly.
        reloaded = SweepCheckpoint(path)
        for cfg, result in zip(configs[:2], resumed[:2]):
            hit = reloaded.completed(config_fingerprint(cfg))
            assert hit == result

    def test_resumed_failures_are_retried(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        cfg = tiny(seed=9)
        ckpt = SweepCheckpoint(path)
        ckpt.record(
            config_fingerprint(cfg),
            FailedRun(cfg.name, cfg.policy, cfg.seed, "OSError", "flaky disk"),
        )
        [result] = run_many([cfg], workers=1, checkpoint=str(path))
        assert isinstance(result, RunSummary)

    def test_checkpoint_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_many([tiny(seed=3), broken()], workers=1, checkpoint=str(path))
        lines = [json.loads(x) for x in path.read_text().splitlines() if x]
        assert {entry["kind"] for entry in lines} == {"summary", "failed"}


class TestFailureOrdering:
    def test_failed_runs_stay_in_input_order(self):
        configs = [tiny(seed=5), broken(seed=6), tiny(seed=7)]
        results = run_many(configs, workers=1, safe=True)
        assert isinstance(results[0], RunSummary) and results[0].seed == 5
        assert isinstance(results[1], FailedRun) and results[1].seed == 6
        assert isinstance(results[2], RunSummary) and results[2].seed == 7

    def test_failed_runs_in_order_across_processes(self):
        configs = [tiny(seed=5), broken(seed=6), tiny(seed=7)]
        parallel = run_many(configs, workers=2, safe=True)
        serial = run_many(configs, workers=1, safe=True)
        assert stable(
            [r for r in parallel if isinstance(r, RunSummary)]
        ) == stable([r for r in serial if isinstance(r, RunSummary)])
        assert isinstance(parallel[1], FailedRun)
        assert parallel[1].error_type == serial[1].error_type

    def test_retries_use_fresh_seeds_and_count_attempts(self):
        [result] = run_many([broken(seed=4)], workers=1, retries=2)
        assert isinstance(result, FailedRun)
        assert result.attempts == 3
