"""Figure generators: structure and tiny-scale sanity (not full figures —
those run in benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments.figures as F
from repro.experiments.figures import FigureData, fig4_priority_curve
from repro.experiments.scenario import random_waypoint_scenario


@pytest.fixture()
def micro_reduction(monkeypatch):
    """Make the reduced scale truly tiny for unit-testing the plumbing."""
    monkeypatch.setattr(F, "REDUCED_NODE_FACTOR", 0.08)
    monkeypatch.setattr(F, "REDUCED_TIME_FACTOR", 0.04)
    monkeypatch.setattr(F, "REDUCED_COPIES", (16, 32))
    monkeypatch.setattr(F, "REDUCED_BUFFERS_MB", (2.0, 4.0))
    monkeypatch.setattr(F, "REDUCED_RATES", ((10.0, 15.0), (45.0, 50.0)))


class TestSweepStructure:
    def test_fig8_copies_structure(self, micro_reduction):
        data = F.fig8_copies(policies=("fifo", "snw-c"), workers=1)
        assert data.figure == "fig8(a-c)"
        assert data.x_values == [16, 32]
        assert set(data.series) == {"fifo", "snw-c"}
        for metrics in data.series.values():
            assert set(metrics) == set(F.PAPER_METRICS)
            assert len(metrics["delivery_ratio"]) == 2

    def test_fig8_buffer_applies_buffer_bytes(self, micro_reduction):
        data = F.fig8_buffer(policies=("fifo",), workers=1)
        raws = data.raw["fifo"]
        assert raws[0][0].buffer_bytes == 2 * 1024 * 1024
        assert raws[1][0].buffer_bytes == 4 * 1024 * 1024

    def test_fig8_rate_scales_interval(self, micro_reduction):
        data = F.fig8_rate(policies=("fifo",), workers=1)
        lo0, hi0 = data.raw["fifo"][0][0].interval_range
        lo1, hi1 = data.raw["fifo"][1][0].interval_range
        assert lo1 / lo0 == pytest.approx(45.0 / 10.0)

    def test_copies_scaled_to_fleet(self, micro_reduction):
        data = F.fig8_copies(policies=("fifo",), workers=1)
        # 8 nodes (factor 0.08 of 100): L=16 -> ~1.28 -> >= 2.
        applied = data.raw["fifo"][0][0].initial_copies
        assert applied == max(2, round(16 * 0.08))

    def test_replicates_averaged(self, micro_reduction):
        data = F.fig8_copies(policies=("fifo",), replicates=2, workers=1)
        assert len(data.raw["fifo"][0]) == 2

    def test_table_rendering(self, micro_reduction):
        data = F.fig8_copies(policies=("fifo",), workers=1)
        table = data.metric_table("delivery_ratio")
        assert "fifo" in table and "delivery_ratio" in table

    def test_best_policy(self):
        data = FigureData(
            figure="f",
            x_label="x",
            x_values=[1, 2],
            series={
                "a": {"delivery_ratio": [0.5, 0.1]},
                "b": {"delivery_ratio": [0.4, 0.2]},
            },
        )
        assert data.best_policy("delivery_ratio") == ["a", "b"]
        assert data.best_policy("delivery_ratio", prefer="min") == ["b", "a"]


class TestFig3:
    def test_intermeeting_fit(self, micro_reduction, monkeypatch):
        # Tiny fleets produce few samples; enlarge slightly for a stable fit.
        monkeypatch.setattr(F, "REDUCED_NODE_FACTOR", 0.2)
        monkeypatch.setattr(F, "REDUCED_TIME_FACTOR", 0.15)
        fit, samples = F.fig3_intermeeting("rwp", seed=2)
        assert fit.n_samples == samples.size
        assert fit.mean > 0
        assert np.all(samples > 0)


class TestFig4:
    def test_curves(self):
        curves = fig4_priority_curve()
        peak = curves["p_r"][int(np.argmax(curves["ideal"]))]
        assert peak == pytest.approx(1 - 1 / np.e, abs=5e-3)
