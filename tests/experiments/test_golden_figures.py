"""Golden regression tests for the figure pipelines.

Tiny fixed-seed sweeps through the real ``fig8``/``fig9`` code paths,
compared against committed expected outputs.  Any change to the simulator
core, RNG stream layout, routing/policy logic or sweep plumbing that moves a
number shows up here as a diff against the golden file — *before* anyone
burns hours on a full paper-scale regeneration.

When a change is intentional, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_figures.py

and commit the updated files under ``tests/experiments/golden/`` together
with a note in the change log explaining the behavioural change.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.experiments.figures import (
    ANALYTIC_SERIES,
    fig8_copies,
    fig9_copies,
    fig_validate,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small enough for seconds-scale CI, large enough to exercise congestion.
NODE_FACTOR = 0.12
TIME_FACTOR = 0.06
POLICIES = ("fifo", "sdsrp")
SEED = 1


def figure_payload(data) -> dict:
    return {
        "figure": data.figure,
        "x_label": data.x_label,
        "x_values": [list(x) if isinstance(x, tuple) else x for x in data.x_values],
        "series": data.series,
    }


def check_golden(name: str, payload: dict) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert payload["figure"] == expected["figure"]
    assert payload["x_label"] == expected["x_label"]
    assert payload["x_values"] == expected["x_values"]
    assert set(payload["series"]) == set(expected["series"])
    for policy, metrics in expected["series"].items():
        for metric, values in metrics.items():
            got = payload["series"][policy][metric]
            assert len(got) == len(values), (policy, metric)
            for i, (g, e) in enumerate(zip(got, values)):
                if math.isnan(e):
                    assert math.isnan(g), (policy, metric, i)
                else:
                    # Tolerance covers float text round-trips only — the
                    # pipeline itself is deterministic.
                    assert g == pytest.approx(e, rel=1e-9, abs=1e-12), (
                        policy, metric, i
                    )


def test_fig8_copies_matches_golden():
    data = fig8_copies(
        policies=POLICIES, replicates=1, workers=1, seed=SEED,
        node_factor=NODE_FACTOR, time_factor=TIME_FACTOR,
    )
    assert not data.failures
    check_golden("fig8_copies", figure_payload(data))


def test_fig9_copies_matches_golden():
    data = fig9_copies(
        policies=POLICIES, replicates=1, workers=1, seed=SEED,
        node_factor=NODE_FACTOR, time_factor=TIME_FACTOR,
    )
    assert not data.failures
    check_golden("fig9_copies", figure_payload(data))


def test_fig_validate_copies_matches_golden():
    """The validation preset: simulated policy curves plus the analytic
    overlay, both pinned — a drift in *either* engine shows up here."""
    data = fig_validate(
        scenario="rwp", axis="copies", policies=POLICIES, replicates=1,
        workers=1, seed=SEED, node_factor=NODE_FACTOR,
        time_factor=TIME_FACTOR,
    )
    assert not data.failures
    assert ANALYTIC_SERIES in data.series
    check_golden("fig_validate_copies", figure_payload(data))
