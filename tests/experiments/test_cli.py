"""CLI smoke tests (argument parsing + tiny executions)."""

from __future__ import annotations

import json

import pytest

import repro.experiments.figures as F
from repro.experiments.cli import build_parser, main


@pytest.fixture(autouse=True)
def micro_reduction(monkeypatch):
    monkeypatch.setattr(F, "REDUCED_NODE_FACTOR", 0.08)
    monkeypatch.setattr(F, "REDUCED_TIME_FACTOR", 0.04)
    monkeypatch.setattr(F, "REDUCED_COPIES", (16, 32))
    monkeypatch.setattr(F, "REDUCED_BUFFERS_MB", (2.0, 4.0))
    monkeypatch.setattr(F, "REDUCED_RATES", ((10.0, 15.0), (45.0, 50.0)))


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    assert main(["run", "--scenario", "rwp", "--policy", "fifo",
                 "--reduced"]) == 0
    out = capsys.readouterr().out
    assert "fifo" in out


def test_run_json_output(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    assert main(["run", "--reduced", "--policy", "fifo",
                 "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["policy"] == "fifo"
    assert "delivery_ratio" in payload


def test_fig4_command(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "peaks at P(R)" in out


def test_fig3_command(capsys, monkeypatch):
    monkeypatch.setattr(F, "REDUCED_NODE_FACTOR", 0.2)
    monkeypatch.setattr(F, "REDUCED_TIME_FACTOR", 0.1)
    assert main(["fig3", "--scenario", "rwp"]) == 0
    out = capsys.readouterr().out
    assert "E(I)" in out


def test_fig8_command(capsys, tmp_path):
    out_file = tmp_path / "fig8.json"
    assert main(["fig8", "--axis", "copies", "--policies", "fifo",
                 "--workers", "1", "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["figure"] == "fig8(a-c)"
    assert "fifo" in payload["series"]
    out = capsys.readouterr().out
    assert "delivery_ratio" in out


def test_fig9_command(capsys):
    assert main(["fig9", "--axis", "buffer", "--policies", "fifo",
                 "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig9(d-f)" in out


def test_run_epfl_scenario(capsys):
    assert main(["run", "--scenario", "epfl", "--policy", "snw-c",
                 "--reduced"]) == 0
    assert "snw-c" in capsys.readouterr().out


def test_run_obs_outputs(capsys, tmp_path):
    obs_file = tmp_path / "metrics.json"
    trace_file = tmp_path / "trace.jsonl"
    assert main(["run", "--reduced", "--policy", "fifo",
                 "--obs-out", str(obs_file), "--obs-interval", "120",
                 "--trace", str(trace_file), "--profile"]) == 0
    out = capsys.readouterr().out

    from repro.obs.timeseries import read_timeseries_json
    payload = read_timeseries_json(obs_file)
    assert payload["interval"] == 120.0
    assert payload["samples"]["time"]

    from repro.obs.trace import aggregate_trace, read_trace_jsonl
    records = read_trace_jsonl(trace_file)
    assert aggregate_trace(records)["created"] > 0

    assert "phase" in out  # profiler table header
    assert "movement" in out


def test_run_obs_csv_export(tmp_path):
    obs_file = tmp_path / "metrics.csv"
    assert main(["run", "--reduced", "--policy", "fifo",
                 "--obs-out", str(obs_file)]) == 0
    header = obs_file.read_text().splitlines()[0]
    assert header.startswith("time,created,delivered")


def test_run_without_obs_flags_writes_nothing(tmp_path, capsys):
    assert main(["run", "--reduced", "--policy", "fifo"]) == 0
    assert "phase" not in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []


def test_run_with_churn(capsys, tmp_path):
    out_file = tmp_path / "churn.json"
    assert main(["run", "--reduced", "--policy", "fifo", "--churn", "0.4",
                 "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["fault_node_down"] >= 1


def test_fig8_churn_axis(capsys, monkeypatch):
    monkeypatch.setattr(F, "REDUCED_CHURN", (0.0, 0.4))
    assert main(["fig8", "--axis", "churn", "--policies", "fifo",
                 "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig8(churn)" in out
    assert "churned node fraction" in out


def test_fig8_resume_reuses_checkpointed_results(capsys, tmp_path, monkeypatch):
    # "Killed" sweep: only the 1-point grid got checkpointed.
    monkeypatch.setattr(F, "REDUCED_COPIES", (16,))
    ckpt = tmp_path / "sweep.jsonl"
    assert main(["fig8", "--axis", "copies", "--policies", "fifo",
                 "--workers", "1", "--resume", str(ckpt)]) == 0
    recorded = ckpt.read_text()
    assert recorded

    # Resume over the full grid vs. an uninterrupted fresh sweep.
    monkeypatch.setattr(F, "REDUCED_COPIES", (16, 32))
    resumed_json = tmp_path / "resumed.json"
    assert main(["fig8", "--axis", "copies", "--policies", "fifo",
                 "--workers", "1", "--resume", str(ckpt),
                 "--json", str(resumed_json)]) == 0
    fresh_json = tmp_path / "fresh.json"
    assert main(["fig8", "--axis", "copies", "--policies", "fifo",
                 "--workers", "1", "--json", str(fresh_json)]) == 0

    resumed = json.loads(resumed_json.read_text())
    fresh = json.loads(fresh_json.read_text())
    assert json.dumps(resumed["series"], sort_keys=True) == json.dumps(
        fresh["series"], sort_keys=True
    )
    # The checkpoint was appended to, never rewritten.
    assert ckpt.read_text().startswith(recorded)


def test_sweep_reports_failures_and_exits_nonzero(capsys, tmp_path,
                                                 monkeypatch):
    # Make every grid point fail at build time: the scenario factory now
    # demands a trace file that does not exist.
    import repro.experiments.scenario as S
    broken = S.random_waypoint_scenario().replace(
        mobility="trace", trace_path=str(tmp_path / "missing.txt")
    )
    monkeypatch.setattr(F, "random_waypoint_scenario", lambda: broken)
    monkeypatch.setattr(F, "REDUCED_COPIES", (16,))
    assert main(["fig8", "--axis", "copies", "--policies", "fifo",
                 "--workers", "1", "--retries", "1"]) == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
