"""Examples stay importable/compilable (full runs live outside unit tests)."""

from __future__ import annotations

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring_and_main(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', '#!/usr/bin/env python'))
    assert 'if __name__ == "__main__":' in source
