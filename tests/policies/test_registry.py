"""Policy registry."""

import pytest

from repro.core.sdsrp import SdsrpPolicy
from repro.errors import ConfigurationError
from repro.policies.base import BufferPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.registry import available_policies, make_policy, register_policy


def test_builtins_present():
    names = available_policies()
    for expected in ("fifo", "lifo", "random", "snw-o", "snw-c", "mofo",
                     "shli", "sdsrp"):
        assert expected in names


def test_make_policy_by_name():
    assert isinstance(make_policy("fifo"), FifoPolicy)
    assert isinstance(make_policy("sdsrp"), SdsrpPolicy)


def test_instances_are_fresh():
    assert make_policy("fifo") is not make_policy("fifo")


def test_unknown_policy():
    with pytest.raises(ConfigurationError):
        make_policy("magic")


def test_register_custom_policy():
    class Custom(FifoPolicy):
        name = "custom-test"

    register_policy("custom-test", Custom)
    try:
        assert isinstance(make_policy("custom-test"), BufferPolicy)
        with pytest.raises(ConfigurationError):
            register_policy("custom-test", Custom)
    finally:
        from repro.policies import registry

        registry._REGISTRY.pop("custom-test", None)
