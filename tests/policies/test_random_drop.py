"""RandomPolicy regression: drops must follow the scenario seed.

The original implementation seeded each node's generator from the node id
alone (through ambient ``np.random`` machinery — reprolint REP001's first
real catch), so *every* scenario seed produced the identical drop sequence
and "averaging over seeds" averaged nothing.  These tests pin the fix:
node-scoped streams derived from the scenario's seeded registry.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.experiments.runner import build_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.policies.base import PolicyContext
from repro.policies.random_drop import RandomPolicy
from repro.rng import RngFactory
from repro.units import megabytes


def congested(seed: int):
    """A small scenario squeezed until the random policy must drop."""
    return scale_scenario(
        random_waypoint_scenario(policy="random", seed=seed),
        node_factor=0.15,
        time_factor=0.08,
    ).replace(buffer_bytes=megabytes(1.0))


def dropped_ids(seed: int) -> list[tuple[int, str, str]]:
    built = build_scenario(congested(seed))
    drops: list[tuple[int, str, str]] = []
    built.sim.listeners.subscribe(
        "message.dropped",
        lambda m, node, reason: drops.append((node.id, m.msg_id, reason)),
    )
    built.sim.run()
    return drops


def _ctx(node_id: int, factory: RngFactory | None) -> PolicyContext:
    return PolicyContext(
        node=SimpleNamespace(id=node_id), sim=None, n_nodes=10, rng=factory
    )


def test_same_seed_identical_drops():
    first = dropped_ids(5)
    second = dropped_ids(5)
    assert first, "congested scenario should produce drops"
    assert first == second


def test_different_seeds_different_drops():
    # The pre-fix behaviour made these identical for every seed pair.
    assert dropped_ids(5) != dropped_ids(6)


def test_nodes_draw_independent_streams():
    factory = RngFactory(123)
    a, b = RandomPolicy(), RandomPolicy()
    a.attach(_ctx(0, factory))
    b.attach(_ctx(1, factory))
    draws_a = [a._rng.random() for _ in range(8)]
    draws_b = [b._rng.random() for _ in range(8)]
    assert draws_a != draws_b


def test_scenario_seed_changes_policy_draws():
    a, b = RandomPolicy(), RandomPolicy()
    a.attach(_ctx(0, RngFactory(1)))
    b.attach(_ctx(0, RngFactory(2)))
    assert [a._rng.random() for _ in range(8)] != [
        b._rng.random() for _ in range(8)
    ]


def test_standalone_policy_is_still_deterministic():
    # Without a scenario registry the constructor seed governs the stream.
    a, b = RandomPolicy(seed=9), RandomPolicy(seed=9)
    a.attach(_ctx(3, None))
    b.attach(_ctx(3, None))
    assert [a._rng.random() for _ in range(8)] == [
        b._rng.random() for _ in range(8)
    ]


def test_score_is_stable_per_message():
    policy = RandomPolicy(seed=0)
    msg = SimpleNamespace(msg_id="M1")
    first = policy.send_priority(msg, 0.0)
    assert policy.drop_priority(msg, 10.0) == first
    assert policy.send_priority(msg, 99.0) == first
