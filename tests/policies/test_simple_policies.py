"""FIFO / LIFO / Random / SnW-O / SnW-C / MOFO / SHLI ranking behaviour."""

from __future__ import annotations

import pytest

from repro.policies.copies_based import CopiesRatioPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.lifo import LifoPolicy
from repro.policies.mofo import MofoPolicy
from repro.policies.random_drop import RandomPolicy
from repro.policies.shli import ShliPolicy
from repro.policies.ttl_based import TtlRatioPolicy
from tests.helpers import make_message


def rank_for_send(policy, messages, now=0.0):
    return sorted(
        messages, key=lambda m: policy.send_priority(m, now), reverse=True
    )


def drop_victim(policy, messages, now=0.0):
    return min(messages, key=lambda m: policy.drop_priority(m, now))


class TestFifo:
    def test_sends_oldest_first(self):
        p = FifoPolicy()
        a, b, c = (make_message(msg_id=m) for m in "abc")
        for m in (a, b, c):
            p.on_message_added(m, 0.0)
        assert rank_for_send(p, [c, a, b]) == [a, b, c]

    def test_drops_oldest_first(self):
        p = FifoPolicy()
        a, b = make_message(msg_id="a"), make_message(msg_id="b")
        p.on_message_added(a, 0.0)
        p.on_message_added(b, 1.0)
        assert drop_victim(p, [b, a]) is a

    def test_newcomer_never_rejected(self):
        assert FifoPolicy.compare_newcomer is False

    def test_redelivery_after_drop_is_new(self):
        p = FifoPolicy()
        a, b = make_message(msg_id="a"), make_message(msg_id="b")
        p.on_message_added(a, 0.0)
        p.on_message_added(b, 1.0)
        p.on_message_dropped(a, 2.0, "overflow")
        a2 = make_message(msg_id="a")
        p.on_message_added(a2, 3.0)
        assert drop_victim(p, [a2, b]) is b  # b is now the oldest


class TestLifo:
    def test_sends_newest_first_drops_newest_first(self):
        p = LifoPolicy()
        a, b = make_message(msg_id="a"), make_message(msg_id="b")
        p.on_message_added(a, 0.0)
        p.on_message_added(b, 1.0)
        assert rank_for_send(p, [a, b]) == [b, a]
        assert drop_victim(p, [a, b]) is b


class TestRandom:
    def test_scores_stable_per_message(self):
        p = RandomPolicy(seed=1)
        m = make_message(msg_id="x")
        assert p.send_priority(m, 0.0) == p.send_priority(m, 99.0)

    def test_scores_in_unit_interval(self):
        p = RandomPolicy(seed=2)
        for i in range(20):
            s = p.send_priority(make_message(msg_id=f"m{i}"), 0.0)
            assert 0.0 <= s < 1.0


class TestSnwO:
    def test_priority_is_ttl_ratio(self):
        p = TtlRatioPolicy()
        m = make_message(created_at=0.0, ttl=100.0)
        assert p.priority(m, 25.0) == pytest.approx(0.75)

    def test_fresher_message_wins(self):
        p = TtlRatioPolicy()
        fresh = make_message(msg_id="f", created_at=90.0, ttl=100.0)
        stale = make_message(msg_id="s", created_at=0.0, ttl=100.0)
        assert rank_for_send(p, [stale, fresh], now=100.0) == [fresh, stale]
        assert drop_victim(p, [stale, fresh], now=100.0) is stale

    def test_normalization_matters_for_mixed_ttls(self):
        p = TtlRatioPolicy()
        # 50/100 s left (ratio .5) vs 100/1000 s left (ratio .1):
        short = make_message(msg_id="short", created_at=0.0, ttl=100.0)
        long = make_message(msg_id="long", created_at=0.0, ttl=1000.0)
        assert drop_victim(p, [short, long], now=900.0 * 0 + 50.0) is not None
        assert p.priority(short, 50.0) == pytest.approx(0.5)
        assert p.priority(long, 900.0) == pytest.approx(0.1)


class TestSnwC:
    def test_priority_is_copies_ratio(self):
        p = CopiesRatioPolicy()
        m = make_message(copies=8, initial_copies=16)
        assert p.priority(m, 0.0) == pytest.approx(0.5)

    def test_copies_rich_sent_first_poor_dropped_first(self):
        p = CopiesRatioPolicy()
        rich = make_message(msg_id="r", copies=16, initial_copies=16)
        poor = make_message(msg_id="p", copies=1, initial_copies=16)
        assert rank_for_send(p, [poor, rich]) == [rich, poor]
        assert drop_victim(p, [poor, rich]) is poor


class TestMofo:
    def test_most_forwarded_dropped_first(self):
        p = MofoPolicy()
        hot = make_message(msg_id="hot")
        cold = make_message(msg_id="cold")
        for _ in range(3):
            p.record_forward("hot")
        assert drop_victim(p, [hot, cold]) is hot
        assert rank_for_send(p, [hot, cold]) == [cold, hot]


class TestShli:
    def test_shortest_absolute_lifetime_dropped_first(self):
        p = ShliPolicy()
        # ratio would prefer to drop `long` (0.1 < 0.5); SHLI drops `short`
        # because its absolute remaining lifetime (50 s) is smaller.
        short = make_message(msg_id="short", created_at=0.0, ttl=100.0)
        long = make_message(msg_id="long", created_at=0.0, ttl=1000.0)
        now = 50.0
        assert p.priority(short, now) == pytest.approx(50.0)
        assert p.priority(long, now) == pytest.approx(950.0)
        assert drop_victim(p, [short, long], now=now) is short
