"""GBSD-style utility policy (related-work baseline)."""

from __future__ import annotations

import pytest

from repro.core.sdsrp import SdsrpShared
from repro.policies.gbsd import GbsdPolicy
from tests.helpers import build_micro_world, make_message

ISOLATED = [(i * 900.0, 0.0) for i in range(10)]


def gbsd_world():
    shared = SdsrpShared.for_fleet(len(ISOLATED))

    def factory():
        return GbsdPolicy(shared=shared)

    return build_micro_world(points=ISOLATED, policy_factory=factory,
                             area=(10_000.0, 1_000.0))


def test_priority_ignores_copy_count():
    mw = gbsd_world()
    policy = mw.router(0).policy
    few = make_message(msg_id="few", copies=2, initial_copies=16,
                       created_at=0.0)
    many = make_message(msg_id="many", copies=16, initial_copies=16,
                        created_at=0.0)
    # Same R, same (empty) lineage: GBSD sees them as equal.
    assert policy.priority(few, 10.0) == pytest.approx(
        policy.priority(many, 10.0)
    )


def test_fresher_message_ranks_higher():
    mw = gbsd_world()
    policy = mw.router(0).policy
    fresh = make_message(msg_id="fresh", created_at=0.0, ttl=6000.0)
    stale = make_message(msg_id="stale", created_at=-5500.0, ttl=6000.0,
                         spray_times=[-5500.0, -5000.0])
    assert policy.priority(fresh, 10.0) > policy.priority(stale, 10.0)


def test_runs_with_epidemic_router():
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import random_waypoint_scenario, scale_scenario

    cfg = scale_scenario(
        random_waypoint_scenario(policy="gbsd", router="epidemic", seed=2),
        node_factor=0.1, time_factor=0.05,
    )
    summary = run_scenario(cfg)
    assert summary.created > 0


def test_oracle_variant_builds():
    from repro.experiments.runner import build_scenario
    from repro.experiments.scenario import random_waypoint_scenario, scale_scenario

    cfg = scale_scenario(
        random_waypoint_scenario(policy="gbsd-oracle", router="epidemic",
                                 seed=2),
        node_factor=0.1, time_factor=0.05,
    )
    built = build_scenario(cfg)
    assert built.shared is not None and built.shared.oracle is not None
