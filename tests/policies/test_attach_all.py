"""Every registered policy attaches and ranks without a full scenario."""

from __future__ import annotations

import pytest

from repro.policies.base import PolicyContext
from repro.policies.registry import available_policies, make_policy
from tests.helpers import build_micro_world, make_message


@pytest.fixture(scope="module")
def host():
    return build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])


@pytest.mark.parametrize("name", available_policies())
def test_attach_and_rank(host, name):
    policy = make_policy(name)
    policy.attach(PolicyContext(node=host.nodes[0], sim=host.sim, n_nodes=10))
    msg = make_message(msg_id=f"probe-{name}", copies=4, initial_copies=8)
    send = policy.send_priority(msg, now=1.0)
    drop = policy.drop_priority(msg, now=1.0)
    assert isinstance(send, float) and isinstance(drop, float)
    assert send == send and drop == drop  # not NaN
    # Hooks are callable without effect requirements.
    policy.on_message_added(msg, 1.0)
    policy.on_link_up(host.nodes[1], 1.0)
    policy.on_link_down(host.nodes[1], 2.0)
    policy.on_message_dropped(msg, 3.0, "overflow")
    assert policy.will_accept(make_message(msg_id="other"), 3.0) in (True, False)
