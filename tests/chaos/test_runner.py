"""Case runner: oracle translation, digests, stable summary projection."""

from __future__ import annotations

import pytest

import repro.chaos.runner as runner_mod
from repro.chaos.oracles import ORACLE_CRASH, ORACLE_INVARIANT
from repro.chaos.runner import case_digest, run_case, stable_summary
from repro.errors import InvariantViolation
from tests.chaos.conftest import tiny_case


class TestRunCase:
    def test_clean_case_returns_summary_and_trace(self):
        result = run_case(tiny_case())
        assert result.ok
        assert result.failure is None
        assert result.summary is not None
        assert result.trace_jsonl

    def test_invariant_violation_becomes_invariant_oracle(self, monkeypatch):
        exc = InvariantViolation(
            "copy-conservation", "tokens doubled",
            node_id=2, msg_id="M3", time=17.0,
        )
        exc.trace_tail = [{"event": "transfer.commit"}]

        def boom(built):
            raise exc

        monkeypatch.setattr(runner_mod, "run_built", boom)
        result = run_case(tiny_case())
        assert not result.ok
        failure = result.failure
        assert failure.oracle == ORACLE_INVARIANT
        assert failure.invariant == "copy-conservation"
        assert failure.violation_time == 17.0
        assert failure.node_id == 2 and failure.msg_id == "M3"
        assert failure.trace_tail == [{"event": "transfer.commit"}]

    def test_any_other_crash_becomes_crash_oracle(self, monkeypatch):
        def boom(built):
            raise ValueError("unexpected")

        monkeypatch.setattr(runner_mod, "run_built", boom)
        result = run_case(tiny_case())
        assert result.failure.oracle == ORACLE_CRASH
        assert result.failure.invariant == "ValueError"
        assert "unexpected" in result.failure.detail

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        def interrupted(built):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "run_built", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_case(tiny_case())


class TestDigests:
    def test_same_config_digests_identically(self):
        config = tiny_case()
        assert case_digest(config) == case_digest(config)

    def test_different_seeds_digest_differently(self):
        assert case_digest(tiny_case()) != case_digest(tiny_case(seed=12))

    def test_failing_case_has_no_digest(self, monkeypatch):
        def boom(built):
            raise InvariantViolation("buffer-accounting", "off by one")

        monkeypatch.setattr(runner_mod, "run_built", boom)
        assert case_digest(tiny_case()) is None


class TestStableSummary:
    def test_wall_clock_fields_are_projected_out(self):
        result = run_case(tiny_case())
        stable = stable_summary(result.summary)
        assert "wall_seconds" not in stable
        assert "profile" not in stable
        assert not any(k.startswith("profile_") for k in stable)
        assert stable["created"] == result.summary.created
