"""The backend-identity oracle: scalar vs vector divergence is a finding.

Mutation-style coverage for the cross-backend metamorphic check: a healthy
simulator passes it silently, while a deliberately broken vector contact
kernel is caught, verified by its own cross-backend replay (not downgraded
to a failure-replay record) and written to the corpus as a replayable
backend-identity entry.
"""

from __future__ import annotations

import repro.vector.world as vector_world
from repro.chaos.corpus import load_corpus, replay_reproduces
from repro.chaos.fuzzer import fuzz
from repro.chaos.oracles import ORACLE_BACKEND
from repro.chaos.runner import check_backend_identity
from tests.chaos.conftest import fast_space, tiny_case


def break_vector_contacts(monkeypatch):
    """Make the vector engine drop the last in-range pair each tick."""
    real = vector_world.contact_keys_matrix

    def lossy(positions, radius):
        keys = real(positions, radius)
        return keys[:-1] if keys.size else keys

    # VectorWorld resolves the kernel through make_contact_kernel at build
    # time, which reads the module globals patched here.
    monkeypatch.setattr(vector_world, "contact_keys_matrix", lossy)


class TestCheckBackendIdentity:
    def test_healthy_case_passes_both_directions(self):
        for backend in ("scalar", "vector"):
            case = tiny_case(engine_backend=backend)
            assert check_backend_identity(case) is None

    def test_broken_vector_kernel_is_detected(self, monkeypatch):
        break_vector_contacts(monkeypatch)
        failure = check_backend_identity(tiny_case(engine_backend="vector"))
        assert failure is not None
        assert failure.oracle == ORACLE_BACKEND
        assert failure.invariant == "backend-identity"


class TestFuzzCampaign:
    def test_healthy_campaign_counts_the_oracle_and_stays_clean(self):
        report = fuzz(
            4,
            seed=1201,
            space=fast_space(),
            metamorphic_every=1,
            shrink_failures=False,
        )
        assert report.checks.get(ORACLE_BACKEND, 0) == 4
        assert report.ok, [f.failure.as_dict() for f in report.findings]

    def test_broken_vector_engine_is_found_and_recorded(
        self, monkeypatch, tmp_path
    ):
        break_vector_contacts(monkeypatch)
        report = fuzz(
            4,
            seed=1201,
            space=fast_space(),
            corpus_dir=str(tmp_path),
            metamorphic_every=1,
            shrink_failures=False,
        )
        findings = [
            f for f in report.findings if f.failure.oracle == ORACLE_BACKEND
        ]
        assert findings, "no backend-identity finding on a broken engine"
        # Verified by the cross-backend replay, not downgraded.
        assert all(f.replay_confirmed for f in findings)
        entries = load_corpus(tmp_path)
        assert any(
            e["failure"]["oracle"] == ORACLE_BACKEND for _, e in entries
        )
        # ... and with the engine still broken, the entry reproduces.
        for _, entry in entries:
            if entry["failure"]["oracle"] == ORACLE_BACKEND:
                assert replay_reproduces(entry)
