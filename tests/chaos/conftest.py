"""Shared chaos-test scaffolding: fast search spaces and tiny cases.

The full :class:`~repro.chaos.space.ChaosSpace` samples runs up to 600
simulated seconds; the spaces here shrink every axis so a whole campaign
fits inside a unit test's time budget without losing the regimes under
test (token-splitting routers, tight buffers, scripted faults).
"""

from __future__ import annotations

import dataclasses

from repro.chaos.space import ChaosSpace
from repro.experiments.scenario import ScenarioConfig


def fast_space(**overrides) -> ChaosSpace:
    """A search space whose cases run in tens of milliseconds."""
    space = ChaosSpace(
        routers=("snw",),
        policies=("fifo",),
        mobilities=("rwp",),
        n_nodes=(4, 8),
        sim_time=(100.0, 200.0),
        ttl_choices=(600.0,),
        copies_choices=(8,),
        max_fault_events=6,
        # Sharded cases pay ~2s of worker spawn each — the nightly space
        # samples them; unit-test campaigns opt in explicitly.
        shard_counts=(1,),
    )
    return dataclasses.replace(space, **overrides) if overrides else space


def tiny_case(**overrides) -> ScenarioConfig:
    """One small, clean, sanitizer-armed scenario for direct runner tests."""
    config = ScenarioConfig(
        name="chaos-test",
        n_nodes=6,
        sim_time=150.0,
        mobility="rwp",
        area=(800.0, 800.0),
        speed_range=(1.0, 3.0),
        radio_range=100.0,
        buffer_bytes=4000,
        message_size=1000,
        interval_range=(10.0, 20.0),
        ttl=600.0,
        initial_copies=8,
        router="snw",
        policy="fifo",
        seed=11,
        sanitize=True,
        trace_capacity=65536,
    )
    return config.replace(**overrides) if overrides else config
