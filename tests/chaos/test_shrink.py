"""Delta-debug shrinking, exercised with synthetic oracles (no sim runs).

Each test wires a ``check`` function that decides reproduction from the
candidate config alone, so the passes' logic — event ddmin, rate zeroing,
fleet/horizon/copies halving, budget discipline — is asserted exactly and
instantly.
"""

from __future__ import annotations

import pytest

from repro.chaos.oracles import ORACLE_INVARIANT, OracleFailure
from repro.chaos.shrink import shrink, shrink_stats
from repro.errors import ConfigurationError
from repro.faults.plan import (
    EVENT_LINK_FLAP,
    EVENT_NODE_DOWN,
    EVENT_TRANSFER_FAULT,
    FaultEvent,
    FaultPlan,
)
from tests.chaos.conftest import tiny_case

FAILURE = OracleFailure(
    oracle=ORACLE_INVARIANT, detail="d", invariant="copy-conservation",
    violation_time=60.0,
)

#: The one event the synthetic bug depends on.
CULPRIT = FaultEvent(time=40.0, kind=EVENT_NODE_DOWN, node=0)


def noisy_plan() -> FaultPlan:
    """The culprit buried in scripted noise plus all three rate families."""
    noise = [
        FaultEvent(time=10.0 * (i + 1), kind=EVENT_LINK_FLAP, node=i)
        for i in range(5)
    ] + [
        FaultEvent(time=15.0 * (i + 1), kind=EVENT_TRANSFER_FAULT)
        for i in range(4)
    ]
    events = tuple(sorted([CULPRIT, *noise], key=lambda e: (e.time, e.kind)))
    return FaultPlan(
        churn_fraction=0.3,
        churn_off_time=50.0,
        churn_on_time=50.0,
        link_flap_rate=0.01,
        transfer_fault_prob=0.1,
        events=events,
    )


def base_config():
    return tiny_case(n_nodes=16, sim_time=400.0, faults=noisy_plan())


def culprit_check(config) -> OracleFailure | None:
    """Reproduces iff the culprit event survives in the candidate."""
    plan = config.faults
    if plan is not None and CULPRIT in plan.events:
        return FAILURE
    return None


class TestEventPass:
    def test_shrinks_to_the_single_culprit_event(self):
        minimal, attempts = shrink(
            base_config(), FAILURE, check=culprit_check, budget=200
        )
        assert minimal.faults is not None
        assert CULPRIT in minimal.faults.events
        assert len(minimal.faults.events) == 1
        assert attempts > 0

    def test_rate_families_are_zeroed_when_irrelevant(self):
        minimal, _ = shrink(
            base_config(), FAILURE, check=culprit_check, budget=200
        )
        plan = minimal.faults
        assert plan.churn_fraction == 0.0
        assert plan.link_flap_rate == 0.0
        assert plan.transfer_fault_prob == 0.0

    def test_fleet_horizon_and_copies_are_halved(self):
        minimal, _ = shrink(
            base_config(), FAILURE, check=culprit_check, budget=200
        )
        stats = shrink_stats(minimal)
        assert stats["n_nodes"] == 2
        # Horizon floor: just past violation_time=60, never below 50.
        assert 60.0 < stats["sim_time"] <= 100.0
        assert stats["initial_copies"] == 1


class TestDiscipline:
    def test_budget_caps_candidate_runs(self):
        calls = []

        def counting_check(config):
            calls.append(1)
            return culprit_check(config)

        _, attempts = shrink(
            base_config(), FAILURE, check=counting_check, budget=7
        )
        assert attempts == len(calls) == 7

    def test_unreproducible_failure_returns_the_original(self):
        config = base_config()
        minimal, _ = shrink(
            config, FAILURE, check=lambda c: None, budget=50
        )
        assert minimal == config

    def test_a_different_bug_is_not_accepted(self):
        # Candidates reproduce a *different* invariant: no reduction counts.
        other = OracleFailure(
            oracle=ORACLE_INVARIANT, detail="d", invariant="pin-hygiene"
        )
        config = base_config()
        minimal, _ = shrink(
            config, FAILURE, check=lambda c: other, budget=50
        )
        assert minimal == config

    def test_invalid_candidates_count_as_non_reproductions(self):
        def fussy_check(config):
            if config.n_nodes < 16:
                raise ConfigurationError("candidate went out of range")
            return FAILURE

        config = base_config()
        minimal, _ = shrink(config, FAILURE, check=fussy_check, budget=100)
        # Node reduction always raised, so the fleet must be untouched.
        assert minimal.n_nodes == 16

    def test_fully_disabled_plan_is_dropped(self):
        plan = FaultPlan(
            churn_fraction=0.3, churn_off_time=50.0, churn_on_time=50.0
        )
        config = tiny_case(n_nodes=4, sim_time=100.0, faults=plan)
        # The bug does not depend on faults at all.
        minimal, _ = shrink(config, FAILURE, check=lambda c: FAILURE, budget=50)
        assert minimal.faults is None


class TestStats:
    def test_stats_fingerprint(self):
        config = base_config()
        stats = shrink_stats(config)
        assert stats == {
            "n_nodes": 16,
            "sim_time": 400.0,
            "fault_events": 10,
            "initial_copies": 8,
        }
        assert shrink_stats(config.replace(faults=None))["fault_events"] == 0


class TestHorizonFloor:
    @pytest.mark.parametrize("violation_time", [None, 350.0])
    def test_horizon_never_cuts_off_the_violation(self, violation_time):
        failure = OracleFailure(
            oracle=ORACLE_INVARIANT, detail="d", invariant="x",
            violation_time=violation_time,
        )
        config = tiny_case(n_nodes=4, sim_time=400.0)
        minimal, _ = shrink(
            config, failure, check=lambda c: failure, budget=50
        )
        if violation_time is None:
            assert minimal.sim_time >= 50.0
        else:
            assert minimal.sim_time > violation_time
