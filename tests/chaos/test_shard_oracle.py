"""The shard-identity oracle: sharded vs single-process divergence is a
finding.

Mutation-style coverage mirroring the backend-identity oracle tests: a
healthy sharded engine passes silently (worker kills included), while a
deliberately lossy barrier merge is caught, verified by its own
shard-identity replay (not downgraded to a failure-replay record) and
written to the corpus as a replayable shard-identity entry.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.corpus import load_corpus, replay_reproduces
from repro.chaos.fuzzer import fuzz
from repro.chaos.oracles import ORACLE_SHARD
from repro.chaos.runner import check_shard_identity
from repro.shard.coordinator import ShardCoordinator
from tests.chaos.conftest import fast_space, tiny_case


def break_shard_merge(monkeypatch):
    """Make the coordinator's merged pair set drop one pair per barrier.

    The mutation lives in the coordinator (parent process) rather than in
    a worker: spawn-context workers import fresh modules, so a parent-side
    monkeypatch never reaches them — merging is the layer a test can break.
    """
    real = ShardCoordinator.pairs

    def lossy(self, now, positions):
        merged = real(self, now, positions)
        if merged:
            merged.discard(max(merged))
        return merged

    monkeypatch.setattr(ShardCoordinator, "pairs", lossy)


def shard_space():
    """A fast space where every scalar case runs sharded with a kill.

    Faults and the buffer-monotone regime are switched off so each fuzz
    iteration spends its (worker-spawn dominated) budget on the shard
    oracle, not on sibling metamorphic runs."""
    return dataclasses.replace(
        fast_space(
            n_nodes=(4, 6),
            sim_time=(100.0, 130.0),
            max_fault_events=0,
            churn_prob=0.0,
            flap_prob=0.0,
            transfer_fault_prob=0.0,
            buffer_messages=(1, 1),
        ),
        shard_counts=(2,),
        shard_kill_prob=1.0,
    )


class TestCheckShardIdentity:
    def test_unsharded_case_passes_vacuously(self):
        assert check_shard_identity(tiny_case()) is None

    def test_healthy_sharded_case_passes(self):
        assert check_shard_identity(tiny_case(shard_count=2)) is None

    def test_healthy_sharded_case_with_worker_kill_passes(self):
        # Recovery makes the killed run byte-identical, so no finding.
        case = tiny_case(shard_count=2, shard_kill=(0, 20))
        assert check_shard_identity(case) is None

    def test_lossy_merge_is_detected(self, monkeypatch):
        break_shard_merge(monkeypatch)
        failure = check_shard_identity(tiny_case(shard_count=2))
        assert failure is not None
        assert failure.oracle == ORACLE_SHARD
        assert failure.invariant == "shard-identity"


class TestFuzzCampaign:
    def test_broken_merge_is_found_and_recorded(self, monkeypatch, tmp_path):
        break_shard_merge(monkeypatch)
        report = fuzz(
            2,
            seed=77,
            space=shard_space(),
            corpus_dir=str(tmp_path),
            metamorphic_every=1,
            shrink_failures=False,
        )
        assert report.checks.get(ORACLE_SHARD, 0) >= 1
        findings = [
            f for f in report.findings if f.failure.oracle == ORACLE_SHARD
        ]
        assert findings, "no shard-identity finding on a lossy merge"
        # Verified by the shard-identity replay itself, not downgraded.
        assert all(f.replay_confirmed for f in findings)
        entries = load_corpus(tmp_path)
        shard_entries = [
            e for _, e in entries if e["failure"]["oracle"] == ORACLE_SHARD
        ]
        assert shard_entries
        # ... and with the merge still broken, the entry reproduces.
        for entry in shard_entries:
            assert replay_reproduces(entry)
