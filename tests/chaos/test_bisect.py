"""Snapshot-accelerated localization: state digests and divergence search."""

from __future__ import annotations

from repro.chaos.bisect import bisect_divergence, locate_violation, state_digest
from repro.experiments.runner import build_scenario
from repro.snapshot import save
from tests.chaos.conftest import tiny_case


class TestStateDigest:
    def test_identical_states_digest_identically(self):
        built_a = build_scenario(tiny_case())
        built_b = build_scenario(tiny_case())
        assert state_digest(save(built_a)) == state_digest(save(built_b))

    def test_different_states_digest_differently(self):
        built_a = build_scenario(tiny_case())
        built_b = build_scenario(tiny_case(seed=99))
        assert state_digest(save(built_a)) != state_digest(save(built_b))

    def test_capture_is_observation_only(self):
        built = build_scenario(tiny_case())
        assert state_digest(save(built)) == state_digest(save(built))


class TestLocateViolation:
    def test_clean_run_yields_no_bracket(self):
        assert locate_violation(tiny_case(), checkpoints=4) is None


class TestBisectDivergence:
    def test_identical_runs_never_diverge(self):
        config = tiny_case()
        assert bisect_divergence(config, config, checkpoints=4) is None

    def test_different_seeds_diverge_within_the_first_window(self):
        config_a = tiny_case()
        config_b = tiny_case(seed=99)
        t = bisect_divergence(config_a, config_b, checkpoints=4)
        assert t is not None
        # Different seeds differ from the very first tick, so the divergence
        # must be pinned inside the first checkpoint window.
        assert 0.0 < t <= config_a.sim_time / 5.0
