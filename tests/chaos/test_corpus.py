"""Reproducer corpus: entry layout, atomic writes, validation, replay."""

from __future__ import annotations

import json

import pytest

from repro.chaos.corpus import (
    CORPUS_SCHEMA,
    entry_path,
    load_corpus,
    load_entry,
    make_entry,
    pytest_snippet,
    replay_entry,
    replay_reproduces,
    write_entry,
)
from repro.chaos.oracles import ORACLE_INVARIANT, OracleFailure
from repro.errors import ObsFormatError
from repro.experiments.checkpoint import config_fingerprint
from repro.snapshot.restore import decode_config
from tests.chaos.conftest import tiny_case

FAILURE = OracleFailure(
    oracle=ORACLE_INVARIANT,
    detail="live spray tokens sum to 12 but at most 8 may exist",
    invariant="copy-conservation",
    violation_time=33.0,
    msg_id="M4",
)


def entry(**kw):
    defaults = dict(base_seed=7, iteration=3, shrink_attempts=21)
    defaults.update(kw)
    return make_entry(tiny_case(), FAILURE, **defaults)


class TestEntry:
    def test_layout(self):
        e = entry(original_config=tiny_case(n_nodes=20))
        assert e["schema"] == CORPUS_SCHEMA
        assert e["id"] == config_fingerprint(tiny_case())
        assert e["failure"]["invariant"] == "copy-conservation"
        assert decode_config(e["config"]) == tiny_case()
        assert decode_config(e["original_config"]) == tiny_case(n_nodes=20)
        assert e["base_seed"] == 7 and e["iteration"] == 3

    def test_pytest_snippet_compiles_and_names_the_entry(self):
        e = entry()
        snippet = pytest_snippet(e)
        compile(snippet, "<corpus snippet>", "exec")
        assert f"test_chaos_reproducer_{e['id'][:12]}" in snippet
        assert "'copy-conservation'" in snippet

    def test_file_name_carries_oracle_and_id(self, tmp_path):
        e = entry()
        path = entry_path(tmp_path, e)
        assert path.name == f"invariant-{e['id'][:16]}.json"


class TestWriteLoad:
    def test_roundtrip_is_exact_and_atomic(self, tmp_path):
        e = entry()
        path = write_entry(tmp_path, e)
        assert load_entry(path) == json.loads(json.dumps(e))
        assert not list(tmp_path.glob("*.tmp")), "staging file left behind"

    def test_same_minimal_case_overwrites(self, tmp_path):
        write_entry(tmp_path, entry(iteration=1))
        write_entry(tmp_path, entry(iteration=2))
        corpus = load_corpus(tmp_path)
        assert len(corpus) == 1
        assert corpus[0][1]["iteration"] == 2

    def test_load_corpus_is_sorted_and_tolerates_missing_dir(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
        for seed in (3, 1, 2):
            write_entry(tmp_path, entry(base_seed=seed))
        paths = [p for p, _ in load_corpus(tmp_path)]
        assert paths == sorted(paths)

    def test_unreadable_entry_raises(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObsFormatError, match="unreadable"):
            load_entry(bad)

    def test_wrong_schema_raises(self, tmp_path):
        e = entry()
        e["schema"] = CORPUS_SCHEMA + 1
        path = write_entry(tmp_path, e)
        with pytest.raises(ObsFormatError, match="schema"):
            load_entry(path)

    def test_missing_key_raises(self, tmp_path):
        e = entry()
        del e["config"]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(e), encoding="utf-8")
        with pytest.raises(ObsFormatError, match="config"):
            load_entry(path)

    def test_non_object_document_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ObsFormatError, match="not a JSON object"):
            load_entry(path)


class TestReplay:
    def test_replay_runs_the_recorded_config(self):
        result = replay_entry(entry())
        assert result.config == tiny_case()

    def test_fixed_bug_no_longer_reproduces(self):
        # tiny_case is clean: an entry claiming it violates an invariant
        # must report non-reproduction (the regression-test direction).
        assert not replay_reproduces(entry())
