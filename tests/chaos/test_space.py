"""Chaos search space: determinism, range discipline, fault-plan sampling."""

from __future__ import annotations

from repro.chaos.space import ChaosSpace, describe_case, sample_case
from repro.rng import derive_seed
from tests.chaos.conftest import fast_space


class TestDeterminism:
    def test_same_seed_and_index_is_the_same_case(self):
        space = ChaosSpace()
        assert sample_case(space, 7, 3) == sample_case(space, 7, 3)

    def test_cases_vary_across_indices(self):
        space = ChaosSpace()
        cases = [sample_case(space, 7, i) for i in range(10)]
        assert len({c.seed for c in cases}) == 10
        assert len({(c.router, c.policy, c.n_nodes) for c in cases}) > 1

    def test_seed_is_derived_from_base_and_index(self):
        case = sample_case(ChaosSpace(), 42, 5)
        assert case.seed == derive_seed(42, "chaos", 5)
        assert case.name == "chaos-5"


class TestRanges:
    def test_every_draw_respects_the_space(self):
        space = ChaosSpace()
        for i in range(30):
            case = sample_case(space, 1, i)
            assert case.router in space.routers
            assert case.policy in space.policies
            assert case.mobility in space.mobilities
            assert space.n_nodes[0] <= case.n_nodes <= space.n_nodes[1]
            assert space.sim_time[0] <= case.sim_time <= space.sim_time[1]
            assert case.ttl in space.ttl_choices
            assert case.initial_copies in space.copies_choices
            lo, hi = case.interval_range
            assert space.interval_lo[0] <= lo <= space.interval_lo[1]
            assert lo < hi
            k = case.buffer_bytes // space.message_size
            assert space.buffer_messages[0] <= k <= space.buffer_messages[1]

    def test_cases_are_sanitizer_armed_and_traced(self):
        case = sample_case(ChaosSpace(), 3, 0)
        assert case.sanitize
        assert case.trace_capacity > 0

    def test_restricted_space_is_respected(self):
        space = fast_space()
        for i in range(10):
            case = sample_case(space, 2, i)
            assert case.router == "snw"
            assert case.policy == "fifo"

    def test_both_engine_backends_are_sampled(self):
        backends = {
            sample_case(ChaosSpace(), 6, i).engine_backend for i in range(30)
        }
        assert backends == {"scalar", "vector"}

    def test_backend_axis_can_be_restricted(self):
        space = fast_space(engine_backends=("vector",))
        for i in range(10):
            assert sample_case(space, 2, i).engine_backend == "vector"

    def test_backend_draw_does_not_shift_earlier_axes(self):
        """The backend is drawn after the classic axes: every other field
        of a case must be unchanged from what a backend-free space would
        have produced, so pre-existing corpus entries keep their
        (seed, index) identity.  The shard axes are drawn later still and
        only on the scalar path, so they are normalized out here."""
        wide = ChaosSpace()
        narrow = ChaosSpace(engine_backends=("scalar",))
        for i in range(15):
            a = sample_case(wide, 4, i).replace(
                engine_backend="scalar", shard_count=1, shard_kill=None
            )
            b = sample_case(narrow, 4, i).replace(
                shard_count=1, shard_kill=None
            )
            assert a == b

    def test_shard_draw_does_not_shift_earlier_axes(self):
        """The shard axes are drawn last (after the backend): disabling
        them must reproduce every earlier field exactly — the same
        corpus-stability discipline the backend axis followed."""
        wide = ChaosSpace()
        narrow = ChaosSpace(shard_counts=(1,))
        for i in range(20):
            a = sample_case(wide, 4, i).replace(
                shard_count=1, shard_kill=None
            )
            b = sample_case(narrow, 4, i)
            assert a == b

    def test_shard_axis_samples_valid_cases(self):
        """Sharded draws construct (validation allows them) and the kill
        barrier is always in range; vector cases never shard."""
        space = ChaosSpace(shard_counts=(2, 4), shard_kill_prob=1.0)
        saw_sharded = False
        for i in range(20):
            case = sample_case(space, 11, i)
            if case.engine_backend != "scalar":
                assert case.shard_count == 1 and case.shard_kill is None
                continue
            saw_sharded = True
            assert case.shard_count in (2, 4)
            assert case.shard_kill is not None
            shard_id, barrier_seq = case.shard_kill
            assert 0 <= shard_id < case.shard_count
            assert barrier_seq >= 1
        assert saw_sharded


class TestFaultPlans:
    def test_events_are_valid_and_time_sorted(self):
        for i in range(30):
            case = sample_case(ChaosSpace(), 9, i)
            plan = case.faults
            if plan is None or not plan.events:
                continue
            times = [e.time for e in plan.events]
            assert times == sorted(times)
            for event in plan.events:
                assert 0.0 <= event.time <= case.sim_time
                assert 0 <= event.node < case.n_nodes
            # The plan must survive build-time validation as sampled.
            plan.validate_for(case.sim_time, case.n_nodes)

    def test_some_cases_carry_no_faults(self):
        # With per-family probabilities < 1 the space must also produce
        # plain cases (the fuzzer's clean baseline for metamorphic checks).
        plans = [sample_case(ChaosSpace(), 5, i).faults for i in range(40)]
        assert any(p is None for p in plans)
        assert any(p is not None for p in plans)


class TestDescribe:
    def test_one_liner_mentions_the_essentials(self):
        case = sample_case(ChaosSpace(), 1, 4)
        line = describe_case(case)
        assert case.name in line
        assert case.router in line
        assert case.policy in line

    def test_no_fault_case_is_labelled(self):
        case = sample_case(ChaosSpace(), 5, 0).replace(faults=None)
        assert "no-faults" in describe_case(case)
