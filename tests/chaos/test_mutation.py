"""Mutation acceptance: the harness must catch a deliberately broken sim.

The canonical end-to-end proof for a fuzzer is a seeded bug: patch
``Message.apply_split`` to skip the sender-side token halving (the exact
class of bug the two-phase split protocol exists to prevent), fuzz, and
require that the campaign (1) catches it through the invariant oracle,
(2) shrinks the reproducer, (3) brackets the first violating tick from a
snapshot, and (4) writes a corpus entry that replays the failure.
"""

from __future__ import annotations

import pytest

from repro.chaos.corpus import load_entry, replay_reproduces
from repro.chaos.fuzzer import fuzz
from repro.chaos.oracles import ORACLE_INVARIANT
from repro.chaos.shrink import shrink_stats
from repro.net.message import Message
from tests.chaos.conftest import fast_space


@pytest.fixture
def broken_split(monkeypatch):
    """Skip the sender-side commit: split children duplicate spray tokens."""
    monkeypatch.setattr(Message, "apply_split", lambda self, now: None)


@pytest.fixture(scope="module")
def campaign_args(tmp_path_factory):
    return dict(
        iterations=10,
        seed=13,
        space=fast_space(),
        metamorphic_every=0,
        shrink_budget=32,
        corpus_dir=str(tmp_path_factory.mktemp("corpus")),
    )


def test_seeded_token_duplication_is_caught_shrunk_and_recorded(
    broken_split, campaign_args
):
    report = fuzz(**campaign_args)
    assert report.findings, (
        "the fuzzer missed a token-duplication bug the sanitizer is "
        "designed to catch"
    )

    finding = report.findings[0]
    assert finding.failure.oracle == ORACLE_INVARIANT
    assert finding.failure.invariant == "copy-conservation"
    assert finding.replay_confirmed

    # Shrinking must land inside the acceptance envelope and actually
    # reduce the case relative to what the sampler drew.
    shrunk = shrink_stats(finding.config)
    original = shrink_stats(finding.original_config)
    assert shrunk["fault_events"] <= 10
    assert shrunk["n_nodes"] <= 20
    assert shrunk["n_nodes"] <= original["n_nodes"]
    assert shrunk["sim_time"] <= original["sim_time"]
    assert shrunk["initial_copies"] <= original["initial_copies"]

    # Snapshot localization bracketed the first violating tick.
    assert finding.bracket is not None
    assert finding.bracket["invariant"] == "copy-conservation"
    assert finding.bracket["violation_time"] == pytest.approx(
        finding.failure.violation_time
    )

    # The corpus entry replays the failure deterministically (the mutation
    # is still active, so the recorded schedule must re-trigger it).
    assert finding.corpus_path is not None
    entry = load_entry(finding.corpus_path)
    assert replay_reproduces(entry)
    assert entry["failure"]["invariant"] == "copy-conservation"


def test_unbroken_simulator_passes_the_same_campaign(campaign_args):
    # The control leg: identical campaign, no mutation, no findings —
    # otherwise the test above could pass on fuzzer false positives.
    report = fuzz(**campaign_args)
    assert report.ok, [f.failure.detail for f in report.findings]
    assert report.iterations_run == campaign_args["iterations"]
