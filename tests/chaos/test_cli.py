"""The chaos CLI: flags, seed offsetting, reporting, delegation."""

from __future__ import annotations

import json

import repro.chaos.cli as cli_mod
from repro.chaos.cli import build_parser, main
from repro.chaos.fuzzer import Finding, FuzzReport
from repro.chaos.oracles import ORACLE_INVARIANT, OracleFailure
from repro.experiments.cli import main as experiments_main
from tests.chaos.conftest import tiny_case


def stub_fuzz(recorded, findings=()):
    """A fuzz() stand-in that records its call and returns a fixed report."""

    def fake_fuzz(iterations, seed, **kwargs):
        recorded.append({"iterations": iterations, "seed": seed, **kwargs})
        report = FuzzReport(
            seed=seed,
            iterations_requested=iterations,
            iterations_run=iterations,
            checks={"invariant": iterations},
        )
        report.findings = list(findings)
        return report

    return fake_fuzz


def one_finding() -> Finding:
    return Finding(
        iteration=2,
        failure=OracleFailure(
            oracle=ORACLE_INVARIANT, detail="d", invariant="pin-hygiene"
        ),
        config=tiny_case(),
        original_config=tiny_case(),
        corpus_path="chaos/corpus/invariant-feedbeef.json",
    )


class TestFlags:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.iterations == 50
        assert args.seed == 1
        assert args.seed_offset == 0
        assert args.corpus is None
        assert args.budget_seconds is None

    def test_seed_offset_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "20260806")
        args = build_parser().parse_args([])
        assert args.seed_offset == 20260806
        # An explicit flag still wins over the environment.
        args = build_parser().parse_args(["--seed-offset", "3"])
        assert args.seed_offset == 3


class TestMain:
    def test_clean_campaign_exits_zero(self, monkeypatch, capsys):
        calls = []
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz(calls))
        assert main(["--iterations", "7", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "all oracles held" in out
        assert "7/7 iterations (seed 5)" in out
        assert calls[0]["iterations"] == 7 and calls[0]["seed"] == 5

    def test_findings_exit_nonzero_and_are_listed(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli_mod, "fuzz", stub_fuzz([], findings=[one_finding()])
        )
        assert main(["--iterations", "3"]) == 1
        out = capsys.readouterr().out
        assert "invariant/pin-hygiene" in out
        assert "chaos/corpus/invariant-feedbeef.json" in out

    def test_seed_offset_shifts_the_campaign_seed(self, monkeypatch):
        calls = []
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz(calls))
        main(["--seed", "7", "--seed-offset", "100"])
        assert calls[0]["seed"] == 107

    def test_space_restrictions_are_forwarded(self, monkeypatch):
        calls = []
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz(calls))
        main(["--routers", "snw", "epidemic", "--policies", "fifo"])
        space = calls[0]["space"]
        assert space.routers == ("snw", "epidemic")
        assert space.policies == ("fifo",)

    def test_no_shrink_and_budget_are_forwarded(self, monkeypatch):
        calls = []
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz(calls))
        main(["--no-shrink", "--budget-seconds", "30", "--shrink-budget", "9"])
        assert calls[0]["shrink_failures"] is False
        assert calls[0]["budget_seconds"] == 30.0
        assert calls[0]["shrink_budget"] == 9

    def test_json_report_to_file(self, monkeypatch, tmp_path):
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz([]))
        out = tmp_path / "report.json"
        main(["--iterations", "2", "--json", str(out)])
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["iterations_run"] == 2
        assert payload["findings"] == []

    def test_json_report_to_stdout(self, monkeypatch, capsys):
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz([]))
        main(["--iterations", "2", "--json", "-"])
        out = capsys.readouterr().out
        start = out.index("{")
        assert json.loads(out[start:])["iterations_requested"] == 2


class TestDelegation:
    def test_experiments_cli_delegates_to_chaos(self, monkeypatch, capsys):
        calls = []
        monkeypatch.setattr(cli_mod, "fuzz", stub_fuzz(calls))
        code = experiments_main(["chaos", "--iterations", "4", "--seed", "9"])
        assert code == 0
        assert calls[0] == {
            "iterations": 4,
            "seed": 9,
            "corpus_dir": None,
            "budget_seconds": None,
            "space": calls[0]["space"],
            "shrink_failures": True,
            "shrink_budget": 64,
            "metamorphic_every": 5,
            "log": print,
        }
        assert "all oracles held" in capsys.readouterr().out


class TestEndToEnd:
    def test_tiny_real_campaign_holds(self, capsys):
        # Two real cases through the full stack; slow-ish but the one
        # place the CLI and fuzzer meet without stubs.
        code = main([
            "--iterations", "2", "--seed", "5", "--metamorphic-every", "0",
            "--routers", "snw", "--policies", "fifo", "--quiet",
        ])
        assert code == 0
        assert "all oracles held" in capsys.readouterr().out
