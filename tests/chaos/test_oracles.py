"""Oracle vocabulary: failure matching, serialization, summary checks."""

from __future__ import annotations

from types import SimpleNamespace

from repro.chaos.oracles import (
    MONOTONE_MIN_CREATED,
    MONOTONE_SLACK,
    ORACLE_BUFFER_MONOTONE,
    ORACLE_INVARIANT,
    ORACLE_SUMMARY,
    OracleFailure,
    check_buffer_monotone,
    check_summary,
)


def summary(**overrides) -> SimpleNamespace:
    base = dict(
        created=40, delivered=10, relayed=25, contacts=100,
        drops={"buffer": 3}, faults={"node_down": 2},
        delivery_ratio=0.25, buffer_bytes=4000,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestMatching:
    def failure(self, **kw) -> OracleFailure:
        base = dict(
            oracle=ORACLE_INVARIANT, detail="d", invariant="copy-conservation"
        )
        base.update(kw)
        return OracleFailure(**base)

    def test_same_oracle_and_invariant_match(self):
        assert self.failure().matches(self.failure(detail="other text"))

    def test_none_never_matches(self):
        assert not self.failure().matches(None)

    def test_different_oracle_or_invariant_do_not_match(self):
        assert not self.failure().matches(self.failure(oracle=ORACLE_SUMMARY))
        assert not self.failure().matches(
            self.failure(invariant="pin-hygiene")
        )


class TestSerialization:
    def test_as_dict_from_dict_roundtrip(self):
        failure = OracleFailure(
            oracle=ORACLE_INVARIANT,
            detail="tokens doubled",
            invariant="copy-conservation",
            violation_time=42.0,
            node_id=3,
            msg_id="M9",
            trace_tail=[{"event": "transfer.commit", "t": 41.0}],
        )
        assert OracleFailure.from_dict(failure.as_dict()) == failure

    def test_minimal_dict_decodes(self):
        got = OracleFailure.from_dict({"oracle": "crash", "detail": "boom"})
        assert got.invariant is None
        assert got.trace_tail == []


class TestCheckSummary:
    def test_clean_summary_passes(self):
        assert check_summary(summary()) is None

    def test_delivered_above_created_fires(self):
        failure = check_summary(summary(delivered=41))
        assert failure is not None
        assert failure.oracle == ORACLE_SUMMARY
        assert failure.invariant == "delivered-le-created"

    def test_negative_counters_fire(self):
        failure = check_summary(summary(relayed=-1))
        assert failure is not None and failure.invariant == "non-negative-counters"
        failure = check_summary(summary(drops={"buffer": -2}))
        assert failure is not None and "drop_buffer" in failure.detail
        failure = check_summary(summary(faults={"node_down": -1}))
        assert failure is not None and "fault_node_down" in failure.detail

    def test_delivery_ratio_out_of_range_fires(self):
        failure = check_summary(summary(delivery_ratio=1.5, delivered=40))
        assert failure is not None
        assert failure.invariant == "delivery-ratio-range"


class TestBufferMonotone:
    def test_flagrant_reversal_fires(self):
        small = summary(delivery_ratio=0.9, buffer_bytes=2000)
        large = summary(delivery_ratio=0.3)
        failure = check_buffer_monotone(small, large)
        assert failure is not None
        assert failure.oracle == ORACLE_BUFFER_MONOTONE

    def test_within_slack_passes(self):
        small = summary(
            delivery_ratio=0.29 + MONOTONE_SLACK, buffer_bytes=2000
        )
        large = summary(delivery_ratio=0.3)
        assert check_buffer_monotone(small, large) is None

    def test_expected_direction_passes(self):
        small = summary(delivery_ratio=0.1, buffer_bytes=2000)
        large = summary(delivery_ratio=0.5)
        assert check_buffer_monotone(small, large) is None

    def test_small_samples_are_ignored(self):
        small = summary(
            delivery_ratio=1.0, created=MONOTONE_MIN_CREATED - 1,
            buffer_bytes=2000,
        )
        large = summary(delivery_ratio=0.0)
        assert check_buffer_monotone(small, large) is None
