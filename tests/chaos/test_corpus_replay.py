"""Replay every committed corpus entry: fixed bugs must stay fixed.

A corpus entry records a config that once violated an oracle.  After the
underlying bug is fixed the entry is expected NOT to reproduce — that is
the regression direction this test locks in.  An entry that still
reproduces marks an open bug and must not be committed without an xfail
marker here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chaos.corpus import load_corpus, replay_reproduces

CORPUS_DIR = Path(__file__).resolve().parents[2] / "chaos" / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[p.name for p, _ in ENTRIES]
)
def test_committed_reproducer_stays_fixed(path, entry):
    assert not replay_reproduces(entry), (
        f"{path.name} reproduces again: the bug it recorded has regressed "
        f"({entry['failure']['oracle']}/{entry['failure']['invariant']})"
    )


def test_corpus_directory_exists():
    # The directory is committed (with a README) even when empty, so the
    # nightly job always has a stable --corpus target.
    assert CORPUS_DIR.is_dir()
