"""Seeded property tests for the vector kernels (no Hypothesis).

Each property is checked against a *pure-Python* scalar reference over a
seeded grid of random inputs plus hand-built adversarial cases (exact
radius-boundary ties, empty inputs, all-pairs-connected cliques).  The
contract everywhere is **exact** equality — same keys, same floats to the
last bit — because the whole vector backend rests on these kernels being
drop-in replacements for the scalar arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import FORM_CLOSED, FORM_TAYLOR
from repro.core.priority import (
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_taylor,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import build_scenario, run_built
from repro.rng import RngFactory
from repro.vector.kernels import (
    contact_keys_grid,
    contact_keys_matrix,
    filter_heterogeneous_keys,
    key_delta,
    keys_to_pairs,
    mask_down_keys,
    pairs_to_keys,
    sdsrp_priority_batch,
    triu_pairs,
)
from tests.obs.conftest import tiny_config

SEEDS = (0, 1, 2, 3, 4)


def rng_for(seed: int) -> np.random.Generator:
    return RngFactory(seed).stream("tests.vector.kernels")


def reference_contact_keys(positions: np.ndarray, radius: float) -> list[int]:
    """O(n^2) per-pair loop with the scalar detector's float sequence:
    ``positions[i] - positions[j]`` (i < j), squared, compared with ``<=``."""
    n = positions.shape[0]
    keys = []
    for i in range(n):
        for j in range(i + 1, n):
            diff = positions[i] - positions[j]
            if float(diff @ diff) <= radius * radius:
                keys.append(i * n + j)
    return keys


# -- key encoding ------------------------------------------------------------


class TestKeyEncoding:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pairs_keys_roundtrip(self, seed):
        rng = rng_for(seed)
        n = int(rng.integers(2, 200))
        m = int(rng.integers(1, 50))
        ii = rng.integers(0, n - 1, size=m)
        jj = rng.integers(ii + 1, n)
        keys = pairs_to_keys(ii, jj, n)
        back_i, back_j = keys_to_pairs(keys, n)
        assert np.array_equal(back_i, ii) and np.array_equal(back_j, jj)

    def test_key_order_is_lexicographic_pair_order(self):
        """Ascending keys == sorted (i, j) tuples: the property the event
        ordering of the vector world is built on."""
        n = 17
        iu, ju = triu_pairs(n)
        keys = pairs_to_keys(iu, ju, n)
        assert np.all(np.diff(keys) > 0)
        pairs = list(zip(iu.tolist(), ju.tolist()))
        assert pairs == sorted(pairs)


# -- contact kernels ---------------------------------------------------------


class TestContactKernels:
    @pytest.mark.parametrize("kernel", [contact_keys_matrix, contact_keys_grid])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_reference_loop(self, kernel, seed):
        rng = rng_for(seed)
        for n in (2, 7, 33, 64):
            positions = rng.uniform(0.0, 1000.0, size=(n, 2))
            # Radii spanning "almost no contacts" to "full clique".
            for radius in (10.0, 120.0, 2000.0):
                got = kernel(positions, radius)
                want = reference_contact_keys(positions, radius)
                assert got.tolist() == want, (kernel.__name__, n, radius)

    @pytest.mark.parametrize("kernel", [contact_keys_matrix, contact_keys_grid])
    def test_boundary_tie_is_inclusive(self, kernel):
        """Nodes at *exactly* the radius are in contact (<=, never <) —
        including a pair that straddles a grid-cell boundary."""
        radius = 100.0
        positions = np.array([
            [0.0, 0.0],
            [radius, 0.0],        # exactly on the boundary, cell neighbor
            [0.0, radius],        # exactly on the boundary, other axis
            [250.0, 250.0],       # isolated
            [250.0 + radius, 250.0],  # tie with the isolated node
        ])
        got = kernel(positions, radius)
        want = reference_contact_keys(positions, radius)
        n = positions.shape[0]
        assert got.tolist() == want
        ties = pairs_to_keys(np.array([0, 0, 3]), np.array([1, 2, 4]), n)
        assert set(ties.tolist()) <= set(got.tolist()), (
            "exact-boundary pairs must count as contacts"
        )

    @pytest.mark.parametrize("kernel", [contact_keys_matrix, contact_keys_grid])
    def test_degenerate_inputs(self, kernel):
        one = np.zeros((1, 2))
        assert kernel(one, 10.0).size == 0
        clique = np.zeros((5, 2))  # all nodes stacked: full clique
        assert kernel(clique, 1.0).size == 10

    @pytest.mark.parametrize("kernel", [contact_keys_matrix, contact_keys_grid])
    def test_bad_inputs_raise(self, kernel):
        good = np.zeros((3, 2))
        with pytest.raises(ConfigurationError, match="radius"):
            kernel(good, 0.0)
        with pytest.raises(ConfigurationError, match="shape"):
            kernel(np.zeros((3, 3)), 10.0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_grid_equals_matrix_exactly(self, seed):
        rng = rng_for(seed)
        positions = rng.uniform(0.0, 5000.0, size=(150, 2))
        a = contact_keys_matrix(positions, 100.0)
        b = contact_keys_grid(positions, 100.0)
        assert np.array_equal(a, b)


# -- filters -----------------------------------------------------------------


class TestFilters:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_heterogeneous_filter_matches_scalar(self, seed):
        """Same min-of-ranges test as ``World._filter_heterogeneous``."""
        rng = rng_for(seed)
        n = 40
        positions = rng.uniform(0.0, 500.0, size=(n, 2))
        ranges = rng.uniform(50.0, 150.0, size=n)
        keys = contact_keys_matrix(positions, float(ranges.max()))
        got = filter_heterogeneous_keys(keys, n, positions, ranges)
        want = []
        for key in keys.tolist():
            i, j = key // n, key % n
            limit = min(ranges[i], ranges[j])
            diff = positions[i] - positions[j]
            if float(diff @ diff) <= limit * limit:
                want.append(key)
        assert got.tolist() == want

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mask_down_keys_matches_set_ops(self, seed):
        rng = rng_for(seed)
        n = 30
        positions = rng.uniform(0.0, 400.0, size=(n, 2))
        keys = contact_keys_matrix(positions, 120.0)
        down = set(int(x) for x in rng.integers(0, n, size=5))
        got = mask_down_keys(keys, n, down)
        want = [
            k for k in keys.tolist() if k // n not in down and k % n not in down
        ]
        assert got.tolist() == want
        assert mask_down_keys(keys, n, set()) is keys

    @pytest.mark.parametrize("seed", SEEDS)
    def test_key_delta_matches_set_differences(self, seed):
        rng = rng_for(seed)
        universe = np.arange(200, dtype=np.int64)
        old = np.sort(rng.choice(universe, size=60, replace=False))
        new = np.sort(rng.choice(universe, size=70, replace=False))
        downs, ups = key_delta(old, new)
        assert downs.tolist() == sorted(set(old.tolist()) - set(new.tolist()))
        assert ups.tolist() == sorted(set(new.tolist()) - set(old.tolist()))

    def test_key_delta_fast_path_and_edges(self):
        same = np.array([3, 5, 9], dtype=np.int64)
        downs, ups = key_delta(same, same.copy())  # zero-churn fast path
        assert downs.size == 0 and ups.size == 0
        empty = np.empty(0, dtype=np.int64)
        downs, ups = key_delta(empty, same)
        assert downs.size == 0 and ups.tolist() == [3, 5, 9]
        downs, ups = key_delta(same, empty)
        assert downs.tolist() == [3, 5, 9] and ups.size == 0


# -- batched SDSRP priority --------------------------------------------------


class TestSdsrpPriorityBatch:
    def sample(self, rng, size):
        copies = rng.integers(1, 33, size=size)
        remaining = rng.uniform(0.0, 18000.0, size=size)
        m_seen = rng.integers(0, 10, size=size)
        n_holders = np.maximum(1, m_seen + 1 - rng.integers(0, 3, size=size))
        return copies, remaining, m_seen, n_holders

    @pytest.mark.parametrize("seed", SEEDS)
    def test_closed_form_is_bit_identical_to_scalar(self, seed):
        rng = rng_for(seed)
        copies, remaining, m_seen, n_holders = self.sample(rng, 200)
        lam, n_nodes = 0.0004, 100
        batch = sdsrp_priority_batch(
            copies, remaining, m_seen, n_holders, lam, n_nodes,
            priority_form=FORM_CLOSED,
        )
        scalar = [
            float(priority_closed_form(
                int(c), float(r), int(m), int(n), lam, n_nodes
            ))
            for c, r, m, n in zip(copies, remaining, m_seen, n_holders)
        ]
        assert batch.tolist() == scalar  # exact, not approx

    @pytest.mark.parametrize("seed", SEEDS)
    def test_taylor_form_is_bit_identical_to_scalar(self, seed):
        rng = rng_for(seed)
        copies, remaining, m_seen, n_holders = self.sample(rng, 200)
        lam, n_nodes, terms = 0.0004, 100, 8
        batch = sdsrp_priority_batch(
            copies, remaining, m_seen, n_holders, lam, n_nodes,
            priority_form=FORM_TAYLOR, taylor_terms=terms,
        )
        scalar = []
        for c, r, m, n in zip(copies, remaining, m_seen, n_holders):
            pt = p_delivered(int(m), n_nodes)
            pr = p_remaining(int(c), float(r), int(n), lam, n_nodes)
            scalar.append(float(priority_taylor(pt, pr, int(n), terms=terms)))
        assert batch.tolist() == scalar

    def test_empty_batch(self):
        empty = np.empty(0)
        out = sdsrp_priority_batch(empty, empty, empty, empty, 0.001, 10)
        assert out.size == 0


# -- the policy's batch entry points, on real simulation state ---------------


class TestPolicyBatchOnRealBuffers:
    """``SdsrpPolicy.priorities`` (and the GBSD subclass) must equal the
    per-message ``priority`` calls on buffers produced by an actual run —
    real spray lineages, real drop histories, real TTLs."""

    @pytest.mark.parametrize("policy", ["sdsrp", "gbsd"])
    def test_batch_equals_scalar_on_run_state(self, policy):
        built = build_scenario(tiny_config(
            router="snw", policy=policy, engine_backend="vector"
        ))
        run_built(built)
        now = built.sim.now
        checked = 0
        for node in built.nodes:
            messages = list(node.buffer)
            if not messages:
                continue
            pol = node.router.policy
            assert pol.batchable
            batch = pol.priorities(messages, now)
            scalar = [pol.priority(m, now) for m in messages]
            assert batch == scalar  # exact float equality
            assert pol.send_priorities(messages, now) == [
                pol.send_priority(m, now) for m in messages
            ]
            assert pol.drop_priorities(messages, now) == [
                pol.drop_priority(m, now) for m in messages
            ]
            checked += len(messages)
        assert checked > 0, "no node ended the run with a non-empty buffer"
