"""Differential equivalence: the vector backend replays the scalar bytes.

The vector engine (:mod:`repro.vector`) is only allowed to exist because it
is *observably identical* to the scalar reference: same seeded scenario,
same event trace (byte-for-byte JSONL), same metric time series, same
summary (modulo wall-clock fields).  This suite pins that contract cell by
cell across the configuration matrix — every router, every buffer policy,
every mobility model, faults, the runtime sanitizer, and both contact
kernels — using axis-coverage grids rather than the full cross product so
the matrix stays inside the tier-1 time budget.

A trace diff here means the fast path changed *behaviour*, not just speed;
see docs/vectorization.md for the contract and how to debug a mismatch.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ROUTER_KINDS, ScenarioConfig
from repro.faults.plan import FaultEvent, FaultPlan
from repro.policies.registry import available_policies
from repro.routing.base import Router
from repro.snapshot import restore, save
from repro.snapshot.codec import canonical_json
from repro.vector.world import VectorWorld
from tests.obs.conftest import tiny_config
from tests.obs.test_determinism import assert_identical
from tests.snapshot.test_roundtrip import outputs, run_with_snapshot

#: Fault schedule mixing rate-based churn/flaps with scripted events, so the
#: equivalence cells exercise ``set_node_down``/``force_link_down`` — the
#: out-of-band link mutations that invalidate the vector key mirror.
FAULTED = FaultPlan(
    churn_fraction=0.3,
    churn_off_time=200.0,
    churn_on_time=150.0,
    churn_wipe_buffer=True,
    link_flap_rate=0.02,
    transfer_fault_prob=0.1,
    events=(
        FaultEvent(time=100.0, kind="node_down", node=2),
        FaultEvent(time=300.0, kind="node_up", node=2),
        FaultEvent(time=400.0, kind="link_flap", node=1),
    ),
)


def observed(**overrides) -> ScenarioConfig:
    return tiny_config(obs_interval=60.0, trace_capacity=500_000, **overrides)


def stable_summary(summary) -> str:
    """The run summary minus wall-clock noise, as sorted JSON."""
    payload = dataclasses.asdict(summary)
    stable = {
        k: v
        for k, v in payload.items()
        if k not in ("wall_seconds", "profile") and not k.startswith("profile_")
    }
    return json.dumps(stable, sort_keys=True)


def backend_run(config: ScenarioConfig, backend: str) -> tuple[str, str, str]:
    """(trace JSONL, time-series JSON, stable summary) for one backend."""
    built = build_scenario(config.replace(engine_backend=backend))
    summary = run_built(built)
    assert built.trace is not None and built.timeseries is not None
    if backend == "vector":
        assert isinstance(built.world, VectorWorld)
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
        stable_summary(summary),
    )


def assert_backends_agree(name: str, config: ScenarioConfig) -> None:
    scalar = backend_run(config, "scalar")
    vector = backend_run(config, "vector")
    assert scalar[0], f"{name}: empty trace; the cell is vacuous"
    # assert_identical dumps both runs to REPRO_OBS_ARTIFACT_DIR on mismatch.
    assert_identical(f"{name}-trace-timeseries", [scalar[:2], vector[:2]])
    assert scalar[2] == vector[2], f"{name}: summary differs"


# -- axis grids --------------------------------------------------------------


class TestRouterAxis:
    @pytest.mark.parametrize("router", ROUTER_KINDS)
    def test_vector_matches_scalar(self, router):
        assert_backends_agree(
            f"router-{router}", observed(router=router, policy="sdsrp")
        )


class TestPolicyAxis:
    @pytest.mark.parametrize("policy", available_policies())
    def test_vector_matches_scalar(self, policy):
        assert_backends_agree(
            f"policy-{policy}", observed(router="snw", policy=policy)
        )


class TestMobilityAxis:
    @pytest.mark.parametrize(
        "mobility", ["rwp", "random-walk", "random-direction", "stationary"]
    )
    def test_vector_matches_scalar(self, mobility):
        assert_backends_agree(
            f"mobility-{mobility}", observed(mobility=mobility, policy="gbsd")
        )


class TestHardeningAxis:
    def test_faulted_run_matches(self):
        """Churn + flaps + scripted events: the key mirror re-syncs right."""
        assert_backends_agree("faulted", observed(faults=FAULTED))

    def test_sanitized_run_matches(self):
        """The invariant sanitizer observes identical state on both paths."""
        assert_backends_agree("sanitized", observed(sanitize=True))

    def test_grid_contact_backend_matches(self):
        """Cell binning produces the same contacts as the dense kernel."""
        assert_backends_agree("grid", observed(contact_backend="grid"))

    def test_seeds_differ(self):
        """Anti-vacuity: different seeds produce different vector traces."""
        a = backend_run(observed(seed=1), "vector")
        b = backend_run(observed(seed=2), "vector")
        assert a[0] != b[0]


class TestBatchedBranch:
    def test_forced_batching_matches(self, monkeypatch):
        """Drop the batch-size gate to 1 so every ranking goes through the
        NumPy batch path, then require the scalar bytes anyway.

        ``batch_min_messages`` is a pure cost dispatch — at the default of
        16 the tiny fleets here rarely reach it, which would leave the
        batched branch untested.
        """
        monkeypatch.setattr(Router, "batch_min_messages", 1)
        for policy in ("sdsrp", "sdsrp-knapsack", "gbsd"):
            assert_backends_agree(
                f"batched-{policy}", observed(router="snw", policy=policy)
            )


# -- snapshots on the vector path -------------------------------------------


class TestVectorSnapshot:
    def test_save_restore_continue_is_byte_identical(self):
        """Mid-horizon save -> restore -> run on the vector backend equals
        the uninterrupted vector run, and re-capturing the restored state
        reproduces the snapshot payload exactly."""
        config = observed(engine_backend="vector")
        snap, baseline = run_with_snapshot(config)
        restored = restore(snap)
        assert isinstance(restored.world, VectorWorld)
        recaptured = save(restored)
        assert canonical_json(recaptured.state) == canonical_json(snap.state)
        assert recaptured.checksum == snap.checksum
        run_built(restored)
        assert outputs(restored) == outputs(baseline)

    def test_restored_vector_run_matches_scalar(self):
        """Cross-backend: the restored vector continuation replays the
        bytes of an uninterrupted *scalar* run of the same scenario."""
        snap, _ = run_with_snapshot(observed(engine_backend="vector"))
        restored = restore(snap)
        run_built(restored)
        scalar = build_scenario(observed(engine_backend="scalar"))
        run_built(scalar)
        assert outputs(restored) == outputs(scalar)
