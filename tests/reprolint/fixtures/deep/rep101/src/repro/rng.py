"""Stub of the real ``repro.rng`` so fixture imports resolve.

REP101 skips this module by name — the factory's own internals may
construct generators however they like.
"""


class RngFactory:
    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, name: str) -> "RngFactory":
        return self


def derive_seed(base: int, *components: object) -> int:
    return base
