"""REP101 fixture: worker-path seed derivation."""

from repro.rng import RngFactory, derive_seed


def run_derived(task) -> RngFactory:
    """TN: worker derives its seed from the task."""
    seed = derive_seed(task.seed, task.index)
    return RngFactory(seed)


def run_attribute(task) -> RngFactory:
    """TN: attribute seeds (config.seed style) are accepted."""
    return RngFactory(task.seed)


def run_underived(task) -> RngFactory:
    """TP x1: locally-computed seed — replayed workers may diverge."""
    seed = task.seed + 1
    return RngFactory(seed)
