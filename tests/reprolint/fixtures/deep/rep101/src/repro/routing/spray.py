"""REP101 fixture: draw-provenance true positives, negatives, suppression."""

import numpy as np

from repro.rng import RngFactory


class GoodRouter:
    """TN: draws trace to a named stream bound on self."""

    def __init__(self, factory: RngFactory) -> None:
        self._rng = factory.stream("routing.spray")

    def pick(self) -> float:
        return self._rng.random()


def good_param_draw(rng) -> float:
    """TN: unannotated-but-rng-named parameter counts as caller-supplied."""
    return rng.uniform(0.0, 1.0)


def good_per_node_streams(factory: RngFactory, nodes) -> None:
    """TN: stream name varies per node, safe to shard."""
    for node in nodes:
        rng = factory.stream(f"routing.node.{node.id}")
        node.offset = rng.uniform(0.0, 1.0)


def bad_literal_factory() -> float:
    """TP x1: literal seed decouples this code from the scenario seed."""
    rng = RngFactory(42).stream("routing.bad")
    return rng.random()


def bad_ambient() -> float:
    """TP x1: ambient numpy generator, not a named stream."""
    gen = np.random.default_rng()
    return gen.random()


def bad_untraceable(state) -> float:
    """TP x1: rng-named local whose origin cannot be traced."""
    rng = state.make_generator()
    return rng.normal()


def bad_shared_loop(factory: RngFactory, nodes) -> None:
    """TP x1: one constant-named stream drawn inside a per-node loop."""
    rng = factory.stream("routing.step")
    for node in nodes:
        node.offset = rng.uniform(0.0, 1.0)


def suppressed_literal() -> float:
    """Suppressed: documented constant-seed fallback."""
    rng = RngFactory(7).stream("routing.fallback")  # reprolint: disable=REP101
    return rng.random()
