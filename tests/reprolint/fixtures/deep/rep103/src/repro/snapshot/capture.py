"""REP103 fixture codec: reads ``count`` directly and ``_total`` through
the ``total`` property; deliberately never reads ``missed``/``transient``."""


def save(counter) -> dict:
    return {"count": counter.count, "total": counter.total}
