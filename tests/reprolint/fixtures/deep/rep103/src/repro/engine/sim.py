"""REP103 fixture: one captured, one missed, one suppressed attribute."""


class Counter:
    def __init__(self) -> None:
        self.count = 0
        self._total = 0
        self.missed = 0
        self.transient = 0

    def tick(self) -> None:
        self.count += 1
        self._total += 1
        self.missed += 1

    def reset(self) -> None:
        self.transient = 0  # reprolint: disable=REP103

    @property
    def total(self) -> int:
        """Captured indirectly: capture reads ``total``, which reads
        ``_total`` — the property-expansion fixpoint must cover it."""
        return self._total
