"""REP104 fixture: pure observer, impure observer, suppressed site."""


class GoodProbe:
    """TN: mutates only itself; registration calls are wiring, not state."""

    def __init__(self, sim) -> None:
        self.samples: list = []
        sim.listeners.subscribe("tick", self._on_tick)

    def _on_tick(self, now: float) -> None:
        self.samples.append(now)

    def summarize(self) -> float:
        totals = [s for s in self.samples]
        return sum(totals)


class BadProbe:
    def attach(self, sim) -> None:
        """TP x1: writes a foreign object's attribute."""
        sim.tag = "observed"

    def drain(self, sim) -> None:
        """TP x1: calls a mutator method on a foreign object."""
        sim.queue.pop()

    def suppressed_touch(self, sim) -> None:
        """Suppressed: the one blessed foreign interaction."""
        sim.flags.update({"obs": True})  # reprolint: disable=REP104
