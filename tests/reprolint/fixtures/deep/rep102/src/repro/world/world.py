"""REP102 fixture: set-iteration taint with sinks, sanitizers, suppression."""

import os


class World:
    def __init__(self) -> None:
        self.links: set = set()
        self.teardown_log: list = []

    def _drop(self, pair) -> None:
        self.teardown_log.append(pair)

    def bad_teardown(self, new_links: set) -> None:
        """TP x1: set-difference order flows into a state-mutating call."""
        for pair in self.links - new_links:
            self._drop(pair)

    def good_teardown(self, new_links: set) -> None:
        """TN: sorted() sanitizes the iteration order."""
        for pair in sorted(self.links - new_links):
            self._drop(pair)

    def good_unordered_accumulation(self, new_links: set) -> set:
        """TN: accumulating into a set keeps the result order-free."""
        stale = set()
        for pair in self.links - new_links:
            stale.add(pair)
        return stale

    def bad_materialize(self) -> list:
        """TP x1: list() freezes hash order into an ordered sequence."""
        return list(self.links)

    def good_materialize(self) -> list:
        """TN: sorted() produces a deterministic sequence."""
        return sorted(self.links)

    def suppressed_teardown(self, new_links: set) -> None:
        """Suppressed: order provably irrelevant at this site."""
        for pair in self.links - new_links:  # reprolint: disable=REP102
            self._drop(pair)


def bad_listing(path: str) -> list:
    """TP x1: filesystem listing order accumulates into an ordered list."""
    names: list = []
    for name in os.listdir(path):
        names.append(name)
    return names


def good_listing(path: str) -> list:
    """TN: sorted listing."""
    names: list = []
    for name in sorted(os.listdir(path)):
        names.append(name)
    return names
