"""Mutation checks: the deep rules must catch real regressions in src/.

Each test copies the repo's actual ``src/`` tree, re-introduces a historic
bug class (unsorted set teardown, a dropped snapshot codec field) and
asserts the analyzer reports *exactly* the expected finding — no more, no
less.  This pins the rules to the behaviour-relevant sites they exist to
protect, not just to synthetic fixtures.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from reprolint.deep import analyze

HERE = Path(__file__).parent
REPO_SRC = HERE.parents[1] / "src"


@pytest.fixture()
def src_copy(tmp_path: Path) -> Path:
    shutil.copytree(REPO_SRC, tmp_path / "src")
    return tmp_path


def _mutate(root: Path, rel: str, old: str, new: str) -> None:
    target = root / rel
    text = target.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor vanished from {rel}: {old!r}"
    target.write_text(text.replace(old, new, 1), encoding="utf-8")


def test_unmutated_copy_is_clean(src_copy: Path):
    result = analyze(src_copy)
    assert not result.findings, "\n".join(f.message for f in result.findings)


def test_removing_sorted_in_world_teardown_yields_one_rep102(src_copy: Path):
    _mutate(
        src_copy,
        "src/repro/world/world.py",
        "for i, j in sorted(self.links - new_links):",
        "for i, j in self.links - new_links:",
    )
    result = analyze(src_copy)
    assert [f.code for f in result.findings] == ["REP102"]
    finding = result.findings[0]
    assert finding.path == "src/repro/world/world.py"
    assert "World.update" in finding.message
    assert "_link_down" in finding.message


def test_dropping_a_snapshot_codec_field_yields_one_rep103(src_copy: Path):
    _mutate(
        src_copy,
        "src/repro/snapshot/capture.py",
        '            "last_aged": router._last_aged,\n',
        "",
    )
    result = analyze(src_copy)
    assert [f.code for f in result.findings] == ["REP103"]
    finding = result.findings[0]
    assert finding.path == "src/repro/routing/prophet.py"
    assert "ProphetRouter._last_aged" in finding.message
