"""Make the ``tools/`` tree importable for reprolint's own tests.

The linter is tooling, not library code, so it lives outside ``src/`` and is
not installed; tests import it straight from the repo checkout.
"""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))
