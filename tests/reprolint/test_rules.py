"""Fixture-backed tests: every REP rule fires on its fixture and stays quiet
on clean code.

Fixtures live in ``lint_fixtures/`` (a directory name the runner always
skips, so the deliberate violations never fail the repo-wide lint); tests
read them from disk and lint them under *virtual* paths to exercise the
rules' path scoping.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from reprolint import lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def codes(violations) -> list[str]:
    return [v.code for v in violations]


# -- REP001: ambient RNG -----------------------------------------------------


def test_rep001_flags_all_ambient_rng_in_src():
    out = lint_source(
        fixture("rep001_ambient_rng.py"), "src/repro/policies/bad.py",
        codes=["REP001"],
    )
    assert codes(out) == ["REP001"] * 5
    messages = " ".join(v.message for v in out)
    assert "stdlib `random`" in messages
    assert "np.random.seed" in messages
    assert "default_rng" in messages
    assert "ambient global" in messages


def test_rep001_allows_seeded_default_rng_in_tests():
    out = lint_source(
        fixture("rep001_ambient_rng.py"), "tests/somewhere/test_bad.py",
        codes=["REP001"],
    )
    # The explicit default_rng(7) construction is fine in tests; the stdlib
    # imports and ambient draws are still banned.
    assert codes(out) == ["REP001"] * 4
    assert not any("default_rng" in v.message for v in out)


def test_rep001_quiet_on_generator_parameters():
    src = "def f(rng):\n    return rng.random()\n"
    assert lint_source(src, "src/repro/policies/x.py", codes=["REP001"]) == []


# -- REP002: wall clock ------------------------------------------------------


def test_rep002_flags_wall_clock_in_sim_code():
    out = lint_source(
        fixture("rep002_wall_clock.py"), "src/repro/engine/bad.py",
        codes=["REP002"],
    )
    assert codes(out) == ["REP002"] * 4
    assert not any("perf_counter" in v.message for v in out)


def test_rep002_scoped_to_src_repro():
    out = lint_source(
        fixture("rep002_wall_clock.py"), "benchmarks/bench_bad.py",
        codes=["REP002"],
    )
    assert out == []


# -- REP003: sim-time equality -----------------------------------------------


def test_rep003_flags_time_equality():
    out = lint_source(
        fixture("rep003_time_equality.py"), "src/repro/net/bad.py",
        codes=["REP003"],
    )
    assert codes(out) == ["REP003"] * 3


def test_rep003_scoped_to_src():
    out = lint_source(
        fixture("rep003_time_equality.py"), "tests/test_bad.py",
        codes=["REP003"],
    )
    assert out == []


def test_rep003_allows_none_and_ordering():
    src = (
        "def f(now, started_at):\n"
        "    if started_at == None:\n"
        "        return False\n"
        "    return now >= started_at\n"
    )
    assert lint_source(src, "src/repro/net/x.py", codes=["REP003"]) == []


# -- REP004: mutable defaults ------------------------------------------------


def test_rep004_flags_mutable_defaults():
    out = lint_source(
        fixture("rep004_mutable_default.py"), "src/repro/world/bad.py",
        codes=["REP004"],
    )
    assert codes(out) == ["REP004"] * 3
    assert all("mutable default" in v.message for v in out)


def test_rep004_applies_everywhere():
    src = "def f(xs=[]):\n    return xs\n"
    out = lint_source(src, "tests/test_x.py", codes=["REP004"])
    assert codes(out) == ["REP004"]


# -- REP005: policy registry / drop reasons ----------------------------------


def test_rep005_unregistered_policies_and_literal_reasons():
    out = lint_source(
        fixture("rep005_policy_registry.py"), "src/repro/policies/bad.py",
        codes=["REP005"],
    )
    assert codes(out) == ["REP005"] * 5
    unregistered = [v for v in out if "not registered" in v.message]
    literals = [v for v in out if "string literal" in v.message]
    assert {m for v in unregistered for m in v.message.split() if "Policy" in m or "Leaf" in m}
    assert len(unregistered) == 2
    assert len(literals) == 3
    names = " ".join(v.message for v in unregistered)
    assert "UnregisteredPolicy" in names
    assert "ConcreteLeaf" in names  # transitive subclass via AbstractMid
    assert "AbstractMid" not in names  # abstract classes are exempt
    assert "RegisteredPolicy" not in names


def test_rep005_scoped_to_src():
    out = lint_source(
        fixture("rep005_policy_registry.py"), "tests/test_bad.py",
        codes=["REP005"],
    )
    assert out == []


# -- REP006: swallowed exceptions --------------------------------------------


def test_rep006_flags_swallowed_exceptions():
    out = lint_source(
        fixture("rep006_swallowed.py"), "src/repro/engine/bad.py",
        codes=["REP006"],
    )
    assert codes(out) == ["REP006"] * 3
    messages = " ".join(v.message for v in out)
    assert "bare" in messages
    assert "swallowed" in messages


@pytest.mark.parametrize("path", [
    "src/repro/net/bad.py",
    "src/repro/parallel/bad.py",
])
def test_rep006_covers_net_and_parallel(path):
    out = lint_source(fixture("rep006_swallowed.py"), path, codes=["REP006"])
    assert len(out) == 3


def test_rep006_scoped_to_failure_critical_dirs():
    out = lint_source(
        fixture("rep006_swallowed.py"), "src/repro/reports/bad.py",
        codes=["REP006"],
    )
    assert out == []


# -- REP007: deprecated alias ------------------------------------------------


def test_rep007_flags_every_alias_reference():
    out = lint_source(
        fixture("rep007_deprecated_alias.py"), "src/repro/anywhere.py",
        codes=["REP007"],
    )
    assert codes(out) == ["REP007"] * 3
    assert all("ReproBufferError" in v.message for v in out)


def test_rep007_getattr_string_access_is_invisible():
    # The sanctioned way to exercise the deprecation path in tests.
    src = 'import repro.errors as e\nx = getattr(e, "BufferError_")\n'
    assert lint_source(src, "tests/test_errors.py", codes=["REP007"]) == []


# -- REP008: pickled simulator state -----------------------------------------


def test_rep008_flags_pickle_and_marshal_in_src():
    out = lint_source(
        fixture("rep008_pickle.py"), "src/repro/experiments/bad.py",
        codes=["REP008"],
    )
    # 3 import-form violations + 2 attribute-call violations.
    assert codes(out) == ["REP008"] * 5
    messages = " ".join(v.message for v in out)
    assert "repro.snapshot" in messages
    assert "pickle" in messages
    assert "marshal" in messages


def test_rep008_allows_snapshot_package_its_own_encoding():
    out = lint_source(
        fixture("rep008_pickle.py"), "src/repro/snapshot/codec.py",
        codes=["REP008"],
    )
    assert out == []


def test_rep008_scoped_to_src():
    out = lint_source(
        fixture("rep008_pickle.py"), "tests/test_bad.py", codes=["REP008"]
    )
    assert out == []


# -- REP009: swallowed InvariantViolation ------------------------------------


def test_rep009_flags_swallowing_and_rewrapping():
    out = lint_source(
        fixture("rep009_swallowed_invariant.py"), "src/repro/engine/bad.py",
        codes=["REP009"],
    )
    # 4 swallow forms (direct, broad, tuple, bare) + 1 re-wrap.
    assert codes(out) == ["REP009"] * 5
    messages = " ".join(v.message for v in out)
    assert "bare except" in messages
    assert "InvariantViolation" in messages


def test_rep009_flags_exactly_the_marked_handlers():
    # Every violation points at a line carrying a "# REP009" marker, and
    # every marker is hit — so the fine_* handlers (re-raise, narrow catch)
    # all pass.
    source_lines = fixture("rep009_swallowed_invariant.py").splitlines()
    marked = {
        i for i, text in enumerate(source_lines, start=1) if "# REP009" in text
    }
    out = lint_source(
        fixture("rep009_swallowed_invariant.py"), "src/repro/engine/bad.py",
        codes=["REP009"],
    )
    assert {v.line for v in out} == marked


@pytest.mark.parametrize("path", [
    "src/repro/chaos/runner.py",
    "src/repro/chaos/fuzzer.py",
    "src/repro/experiments/runner.py",
    "src/repro/experiments/sweep.py",
    "src/repro/parallel/pool.py",
])
def test_rep009_allows_designated_failure_boundaries(path):
    out = lint_source(
        fixture("rep009_swallowed_invariant.py"), path, codes=["REP009"]
    )
    assert out == []


def test_rep009_scoped_to_src_repro():
    for path in ("tests/chaos/test_x.py", "tools/somewhere.py"):
        out = lint_source(
            fixture("rep009_swallowed_invariant.py"), path, codes=["REP009"]
        )
        assert out == []


# -- REP010: ambient sleep ---------------------------------------------------


def test_rep010_flags_ambient_sleeps_in_library_code():
    out = lint_source(
        fixture("rep010_sleep.py"), "src/repro/experiments/runner.py",
        codes=["REP010"],
    )
    # Two time.sleep() calls + the `from time import sleep`; the bare
    # time.sleep *reference* (injectable default) is deliberately quiet.
    assert codes(out) == ["REP010"] * 3
    messages = " ".join(v.message for v in out)
    assert "injectable sleep" in messages


def test_rep010_marks_exactly_the_marked_lines():
    source_lines = fixture("rep010_sleep.py").splitlines()
    marked = {
        i for i, text in enumerate(source_lines, start=1) if "# REP010" in text
    }
    out = lint_source(
        fixture("rep010_sleep.py"), "src/repro/engine/bad.py",
        codes=["REP010"],
    )
    assert {v.line for v in out} == marked


@pytest.mark.parametrize("path", [
    "src/repro/service/api.py",
    "src/repro/service/supervisor.py",
    "src/repro/experiments/sweep.py",
])
def test_rep010_allows_the_sanctioned_pacing_sites(path):
    out = lint_source(fixture("rep010_sleep.py"), path, codes=["REP010"])
    assert out == []


def test_rep010_scoped_to_src_repro():
    for path in ("tests/service/test_x.py", "tools/smoke.py",
                 "benchmarks/bench_x.py"):
        out = lint_source(fixture("rep010_sleep.py"), path, codes=["REP010"])
        assert out == []


def test_rep009_allows_the_service_boundary():
    out = lint_source(
        fixture("rep009_swallowed_invariant.py"),
        "src/repro/service/supervisor.py",
        codes=["REP009"],
    )
    assert out == []


# -- the clean fixture passes everything -------------------------------------


def test_clean_fixture_has_no_violations():
    out = lint_source(fixture("clean_module.py"), "src/repro/policies/clean.py")
    assert out == []
