"""Runner/CLI behaviour: file collection, fixture skipping, exit codes."""

from __future__ import annotations

from pathlib import Path

from reprolint import ALL_RULES, Violation, lint_paths, main
from reprolint.runner import FIXTURE_DIR, collect_files

HERE = Path(__file__).parent


def test_collect_files_skips_lint_fixtures():
    collected = [name for name, _ in collect_files([HERE])]
    assert collected, "expected this test package to be collected"
    assert not any(FIXTURE_DIR in name for name in collected)


def test_collect_files_skips_explicit_fixture_file():
    fixture = HERE / FIXTURE_DIR / "rep004_mutable_default.py"
    assert collect_files([fixture]) == []


def test_lint_paths_reports_with_repo_relative_posix_paths(tmp_path):
    bad = tmp_path / "pkg" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(xs=[]):\n    return xs\n")
    out = lint_paths([tmp_path], root=tmp_path)
    assert [v.code for v in out] == ["REP004"]
    assert out[0].path == "pkg/bad.py"
    assert out[0].line == 1


def test_lint_paths_turns_syntax_errors_into_rep000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    out = lint_paths([broken], root=tmp_path)
    assert [v.code for v in out] == ["REP000"]
    assert "syntax error" in out[0].message


def test_violation_format_is_grep_friendly():
    v = Violation(code="REP004", path="a/b.py", line=3, col=7, message="boom")
    assert v.format() == "a/b.py:3:7 REP004 boom"


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert main([str(clean)]) == 0

    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    assert main([str(bad)]) == 1
    captured = capsys.readouterr()
    assert "REP004" in captured.out
    assert "1 violation(s)" in captured.err


def test_main_select_filters_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\n\ndef f(xs=[]):\n    return xs\n")
    # Both rules fire unfiltered; selecting REP001 hides the REP004 hit.
    assert main([str(bad)]) == 1
    assert main([str(bad), "--select", "REP004"]) == 1
    assert main([str(bad), "--select", "REP002"]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules", "src"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_RULES:
        assert cls.code in out
        assert cls.title in out


def test_every_rule_has_code_title_and_docstring():
    seen = set()
    for cls in ALL_RULES:
        assert cls.code.startswith("REP") and len(cls.code) == 6
        assert cls.code not in seen
        seen.add(cls.code)
        assert cls.title and cls.title != "abstract"
        assert cls.__doc__ and len(cls.__doc__.strip()) > 40


def test_repo_tree_is_lint_clean():
    """The final tree must satisfy its own linter (the PR's contract)."""
    repo = Path(__file__).resolve().parents[2]
    targets = [repo / "src", repo / "tests", repo / "benchmarks"]
    out = lint_paths([t for t in targets if t.exists()], root=repo)
    assert out == [], "\n".join(v.format() for v in out)
