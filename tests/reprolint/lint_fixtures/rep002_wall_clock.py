"""Fixture: wall-clock reads that REP002 must flag in src/repro code."""

import datetime
import time
from time import monotonic  # REP002: wall-clock import


def bad_time() -> float:
    return time.time()  # REP002


def bad_monotonic() -> float:
    return time.monotonic()  # REP002


def bad_datetime() -> object:
    return datetime.datetime.now()  # REP002


def allowed_diagnostic() -> float:
    # perf_counter feeds diagnostic wall_seconds only; explicitly allowed.
    return time.perf_counter()


def use_import() -> float:
    return monotonic()
