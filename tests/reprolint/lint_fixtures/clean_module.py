"""Fixture: idiomatic repo code that must pass every REP rule."""

from __future__ import annotations

import numpy as np

DROP_OVERFLOW = "overflow"


def tick(rng: np.random.Generator, now: float, deadline: float) -> bool:
    """Seeded draws, ordering comparisons, immutable defaults only."""
    jitter = float(rng.random())
    return now + jitter >= deadline


def drop(router: object, message: object) -> None:
    router.drop_message(message, DROP_OVERFLOW)


def safe(payload: dict | None = None) -> dict:
    out = {} if payload is None else dict(payload)
    try:
        out["ok"] = True
    except TypeError as exc:
        raise ValueError("payload must be dict-like") from exc
    return out
