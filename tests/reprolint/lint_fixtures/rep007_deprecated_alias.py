"""Fixture: references to the deprecated BufferError_ alias."""

from repro.errors import BufferError_  # REP007

from repro import errors


def bad_raise() -> None:
    raise BufferError_("full")  # REP007 (Name reference)


def bad_attribute() -> object:
    return errors.BufferError_  # REP007 (Attribute reference)
