"""Fixture: ambient sleeps that REP010 must flag outside the pacing sites."""

import time
from time import sleep  # REP010: ambient sleep import


def bad_wait() -> None:
    time.sleep(0.5)  # REP010


def bad_poll(ready) -> None:
    while not ready():
        time.sleep(0.01)  # REP010


def use_import() -> None:
    sleep(1.0)


def allowed_reference(fallback=None):
    # Referencing time.sleep as an injectable default is fine: the call
    # site receives it as a parameter and tests can substitute a fake.
    return fallback if fallback is not None else time.sleep
