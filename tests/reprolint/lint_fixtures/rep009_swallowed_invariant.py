"""Fixture: handlers that swallow or re-wrap InvariantViolation (REP009)."""

from repro.errors import InvariantViolation, ReproError


def bad_direct_swallow() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except InvariantViolation:  # REP009: caught and dropped
        print("never mind")


def bad_broad_swallow() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except Exception as exc:  # REP009: superclass catch, no re-raise
        print(exc)


def bad_tuple_swallow() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except (ValueError, ReproError):  # REP009: tuple hides a superclass
        pass


def bad_bare_swallow() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except:  # noqa: E722  # REP009: bare except
        print("caught")


def bad_rewrap() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except InvariantViolation as exc:  # REP009: re-wrapped, identity lost
        raise RuntimeError("run failed") from exc


def fine_bare_reraise() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except Exception:
        print("cleanup")
        raise


def fine_named_reraise() -> None:
    try:
        raise InvariantViolation("pin-hygiene", "leaked pin")
    except InvariantViolation as exc:
        print(exc.invariant)
        raise exc


def fine_narrow_catch() -> None:
    try:
        raise ValueError("boom")
    except ValueError:
        pass
