"""Fixture: mutable default arguments that REP004 must flag."""


def bad_list(xs=[]) -> list:  # REP004
    return xs


def bad_dict_kwonly(*, table={}) -> dict:  # REP004
    return table


def bad_call_default(items=list()) -> list:  # REP004
    return items


def fine(xs=None) -> list:
    return [] if xs is None else xs


def fine_immutable(tag=(), n=0, name="x") -> tuple:
    return (tag, n, name)
