"""Fixture: an unregistered policy subclass and literal drop reasons."""

from abc import abstractmethod


class BufferPolicy:  # stand-in root; matches REP005's hierarchy roots
    pass


class RegisteredPolicy(BufferPolicy):
    name = "registered"


class UnregisteredPolicy(BufferPolicy):  # REP005: never registered
    name = "unregistered"


class AbstractMid(BufferPolicy):
    @abstractmethod
    def rank(self) -> float:  # abstract subclasses are exempt
        ...


class ConcreteLeaf(AbstractMid):  # REP005: transitive subclass, unregistered
    name = "leaf"


def register_policy(name: str, factory: object) -> None:
    pass


register_policy("registered", RegisteredPolicy)


def drop_sites(router, message, sim, node) -> None:
    router.drop_message(message, "overflow")  # REP005: literal reason
    sim.listeners.emit("message.dropped", message, node, "ttl")  # REP005
    router.drop_message(message, reason="no_room")  # REP005: literal kwarg
