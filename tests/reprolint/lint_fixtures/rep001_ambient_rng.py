"""Fixture: every flavor of ambient RNG that REP001 must flag."""

import random  # REP001: stdlib random import
from random import shuffle  # REP001: stdlib random import-from

import numpy as np


def bad_seed() -> None:
    np.random.seed(42)  # REP001: global seeding


def bad_draw() -> float:
    return np.random.random()  # REP001: ambient draw


def bad_factory() -> object:
    # REP001 at a src/ path only (tests may build seeded generators).
    return np.random.default_rng(7)


def fine(rng: np.random.Generator) -> float:
    # Passing a Generator in is the sanctioned pattern.
    return float(rng.random())


def also_fine() -> object:
    # Type references are not draws.
    gen: np.random.Generator | None = None
    return gen


def use_imports() -> None:
    shuffle([])
    random.random()
