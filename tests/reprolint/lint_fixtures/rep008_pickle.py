"""REP008 fixture: pickle/marshal of simulator state outside repro.snapshot.

Deliberate violations — linted only from tests, under virtual paths.
"""

import marshal
import pickle  # noqa: the import itself is the violation
from pickle import dumps


def checkpoint(sim, path):
    blob = pickle.dumps(sim)  # call violation (memory-layout serialization)
    with open(path, "wb") as fh:
        fh.write(blob)


def checkpoint_marshal(state):
    return marshal.dumps(state)  # call violation


def indirect(state):
    return dumps(state)  # bare name from `from pickle import dumps`: the
    # ImportFrom line is flagged; the call itself is invisible by design.
