"""Fixture: exact sim-time comparisons that REP003 must flag."""


def bad_name_eq(now: float, deadline: float) -> bool:
    return now == deadline  # REP003: `now` is time-valued


def bad_attr_ne(transfer: object, t: float) -> bool:
    return transfer.eta != t  # REP003: `.eta` is time-valued


def bad_call_eq(message: object, now: float) -> bool:
    return message.elapsed(now) == 0.0  # REP003: time-valued call


def fine_ordering(now: float, deadline: float) -> bool:
    # Ordering comparisons are robust to float error.
    return now >= deadline


def fine_none_check(started_at: float | None) -> bool:
    # Comparing against None is a different (allowed) shape.
    return started_at == None  # noqa: E711
