"""Fixture: swallowed exceptions that REP006 must flag in engine/net code."""


def bad_bare() -> None:
    try:
        raise ValueError("boom")
    except:  # noqa: E722  # REP006: bare except
        print("caught")


def bad_swallow() -> None:
    try:
        raise ValueError("boom")
    except ValueError:  # REP006: body is only pass
        pass


def bad_ellipsis() -> None:
    try:
        raise ValueError("boom")
    except (KeyError, ValueError):  # REP006: body is only ...
        ...


def fine_handled() -> int:
    try:
        raise ValueError("boom")
    except ValueError as exc:
        return len(str(exc))
