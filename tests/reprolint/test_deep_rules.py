"""Deep-rule behaviour pinned against the fixture mini-packages.

Each fixture root under ``fixtures/deep/`` is a miniature repo (``src/repro``
layout) holding, per rule family, a true positive, a compliant twin of the
same shape (true negative) and an inline-suppressed site.  Tests pin the
*exact* finding sets so a precision or recall regression in any rule fails
loudly with the offending function name in the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from reprolint.deep import analyze, main
from reprolint.deep.baseline import load_baseline, apply_baseline
from reprolint.deep.cli import DEFAULT_BASELINE

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures" / "deep"
REPO_ROOT = HERE.parents[1]


def run_fixture(name: str, code: str):
    return analyze(FIXTURES / name, codes=[code])


def messages(findings) -> str:
    return "\n".join(f.message for f in findings)


# -- REP101: RNG provenance ---------------------------------------------------


def test_rep101_flags_exactly_the_bad_rng_sites():
    result = run_fixture("rep101", "REP101")
    assert not result.broken
    active = messages(result.findings)
    for bad in (
        "bad_literal_factory",
        "bad_ambient",
        "bad_untraceable",
        "bad_shared_loop",
        "run_underived",
    ):
        assert active.count(bad) == 1, f"expected one finding for {bad}"
    assert len(result.findings) == 5
    assert "good_" not in active and "GoodRouter" not in active


def test_rep101_suppression_is_matched_and_counted():
    result = run_fixture("rep101", "REP101")
    assert len(result.suppressed) == 1
    assert "suppressed_literal" in result.suppressed[0].message
    assert not result.unused


# -- REP102: order-sensitivity taint -----------------------------------------


def test_rep102_flags_exactly_the_order_sinks():
    result = run_fixture("rep102", "REP102")
    active = messages(result.findings)
    for bad in ("bad_teardown", "bad_materialize", "bad_listing"):
        assert active.count(bad) == 1, f"expected one finding for {bad}"
    assert len(result.findings) == 3
    assert "good_" not in active


def test_rep102_sorted_and_set_accumulation_are_sanitizers():
    result = run_fixture("rep102", "REP102")
    active = messages(result.findings)
    assert "good_teardown" not in active
    assert "good_unordered_accumulation" not in active
    assert "good_listing" not in active


def test_rep102_suppression():
    result = run_fixture("rep102", "REP102")
    assert [f.message for f in result.suppressed if "suppressed_teardown" in f.message]
    assert not result.unused


# -- REP103: snapshot coverage drift -----------------------------------------


def test_rep103_reports_only_the_uncaptured_attribute():
    result = run_fixture("rep103", "REP103")
    assert len(result.findings) == 1
    assert "Counter.missed" in result.findings[0].message
    # `count` is read directly, `_total` through the `total` property: the
    # property-expansion fixpoint must cover both.
    assert "count" not in result.findings[0].message.split("Counter.missed")[0]


def test_rep103_property_expansion_covers_indirect_reads():
    result = run_fixture("rep103", "REP103")
    assert "_total" not in messages(result.findings)


def test_rep103_suppression_at_the_mutation_site():
    result = run_fixture("rep103", "REP103")
    assert len(result.suppressed) == 1
    assert "transient" in result.suppressed[0].message
    assert not result.unused


# -- REP104: observer purity --------------------------------------------------


def test_rep104_flags_foreign_writes_and_mutator_calls():
    result = run_fixture("rep104", "REP104")
    active = messages(result.findings)
    assert len(result.findings) == 2
    assert "sim.tag" in active
    assert "sim.queue.pop" in active
    assert "GoodProbe" not in active


def test_rep104_suppression():
    result = run_fixture("rep104", "REP104")
    assert len(result.suppressed) == 1
    assert "suppressed_touch" in result.suppressed[0].message
    assert not result.unused


# -- suppressions: unused detection ------------------------------------------


def _mini_project(tmp_path: Path, body: str) -> Path:
    mod = tmp_path / "src" / "repro" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(body, encoding="utf-8")
    return tmp_path


def test_unused_suppression_reported_as_rep100(tmp_path):
    root = _mini_project(tmp_path, "X = 1  # reprolint: disable=REP102\n")
    result = analyze(root)
    assert not result.findings
    assert [f.code for f in result.unused] == ["REP100"]
    assert "REP102" in result.unused[0].message


def test_fail_on_unused_suppressions_flag(tmp_path, capsys):
    _mini_project(tmp_path, "X = 1  # reprolint: disable=REP102\n")
    argv = ["--root", str(tmp_path), "--no-baseline"]
    assert main(argv) == 0
    assert main(argv + ["--fail-on-unused-suppressions"]) == 1


# -- REP000: broken files ------------------------------------------------------


def test_deep_broken_files_become_rep000(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad_syntax.py").write_text("def broken(:\n", encoding="utf-8")
    (pkg / "bad_bytes.py").write_bytes(b"x = '\xff\xfe'\n")
    result = analyze(tmp_path)
    assert sorted(f.code for f in result.broken) == ["REP000", "REP000"]
    texts = messages(result.broken)
    assert "syntax error" in texts
    assert "not valid UTF-8" in texts


def test_deep_cli_fails_on_broken_files(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("def broken(:\n", encoding="utf-8")
    assert main(["--root", str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP000" in out


# -- fingerprints and reports --------------------------------------------------


def test_fingerprints_survive_line_drift(tmp_path):
    import shutil

    root = tmp_path / "rep102"
    shutil.copytree(FIXTURES / "rep102", root)
    before = {f.fingerprint for f in analyze(root, codes=["REP102"]).findings}
    world = root / "src" / "repro" / "world" / "world.py"
    world.write_text(
        "# a new leading comment shifts every line\n" + world.read_text(),
        encoding="utf-8",
    )
    after = {f.fingerprint for f in analyze(root, codes=["REP102"]).findings}
    assert before == after


def test_sarif_report_shape(tmp_path):
    out = tmp_path / "deep.sarif"
    code = main([
        "--root", str(FIXTURES / "rep104"), "--select", "REP104",
        "--no-baseline", "--sarif", str(out),
    ])
    assert code == 1
    sarif = json.loads(out.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint-deep"
    results = run["results"]
    assert len(results) == 2
    for entry in results:
        assert entry["ruleId"] == "REP104"
        assert entry["partialFingerprints"]["reprolintDeep/v1"]


def test_json_report_shape(tmp_path):
    out = tmp_path / "deep.json"
    main([
        "--root", str(FIXTURES / "rep103"), "--select", "REP103",
        "--no-baseline", "--json", str(out),
    ])
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert len(payload["findings"]) == 1
    assert payload["findings"][0]["code"] == "REP103"
    assert len(payload["suppressed"]) == 1


def test_explain_prints_rule_documentation(capsys):
    assert main(["--explain", "rep102"]) == 0
    out = capsys.readouterr().out
    assert "REP102" in out and "sorted" in out
    assert main(["--explain", "REP999"]) == 2


# -- the repo's own source must satisfy the committed (empty) baseline --------


def test_src_self_check_against_committed_baseline():
    result = analyze(REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    new, _baselined, stale = apply_baseline(result.findings, baseline)
    assert not result.broken, messages(result.broken)
    assert not new, "src/ must lint deep-clean:\n" + messages(new)
    assert not result.unused, "stale disable comments:\n" + messages(result.unused)
    assert not stale, f"stale baseline entries: {stale}"


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    assert baseline == {}
