"""Classic-runner result cache and broken-file robustness."""

from __future__ import annotations

import os
from pathlib import Path

from reprolint.runner import (
    LintStats,
    ResultCache,
    lint_paths,
    tool_fingerprint,
)


def _write_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text("def f(x):\n    return x\n", encoding="utf-8")
    (pkg / "bad.py").write_text("def g(xs=[]):\n    return xs\n", encoding="utf-8")
    return pkg


def test_warm_run_hits_the_cache_and_replays_violations(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"

    cold_stats = LintStats()
    cold = lint_paths([pkg], root=tmp_path, cache_dir=cache_dir, stats=cold_stats)
    assert cold_stats.cache_hits == 0 and cold_stats.cache_misses == 2

    warm_stats = LintStats()
    warm = lint_paths([pkg], root=tmp_path, cache_dir=cache_dir, stats=warm_stats)
    assert warm_stats.cache_hits == 2 and warm_stats.cache_misses == 0
    assert [(v.code, v.path, v.line) for v in warm] == [
        (v.code, v.path, v.line) for v in cold
    ]


def test_mtime_touch_with_same_content_still_hits_via_sha(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"
    lint_paths([pkg], root=tmp_path, cache_dir=cache_dir)

    clean = pkg / "clean.py"
    st = clean.stat()
    os.utime(clean, ns=(st.st_atime_ns, st.st_mtime_ns + 10_000_000))

    stats = LintStats()
    lint_paths([pkg], root=tmp_path, cache_dir=cache_dir, stats=stats)
    assert stats.cache_hits == 2 and stats.cache_misses == 0


def test_content_change_invalidates_only_that_file(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"
    lint_paths([pkg], root=tmp_path, cache_dir=cache_dir)

    (pkg / "bad.py").write_text("def g(xs=None):\n    return xs\n", encoding="utf-8")
    stats = LintStats()
    out = lint_paths([pkg], root=tmp_path, cache_dir=cache_dir, stats=stats)
    assert stats.cache_hits == 1 and stats.cache_misses == 1
    assert not [v for v in out if v.code == "REP004"]


def test_tool_fingerprint_change_drops_the_whole_cache(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"
    lint_paths([pkg], root=tmp_path, cache_dir=cache_dir)

    stale = ResultCache(cache_dir, fingerprint="different-tool-version")
    assert stale.lookup("pkg/clean.py", pkg / "clean.py") is None
    fresh = ResultCache(cache_dir, fingerprint=tool_fingerprint())
    assert fresh.lookup("pkg/clean.py", pkg / "clean.py") is not None


def test_select_disables_the_cache(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"
    lint_paths([pkg], root=tmp_path, codes=["REP004"], cache_dir=cache_dir)
    assert not cache_dir.exists(), "narrowed runs must never write the cache"


def test_non_utf8_file_becomes_rep000_and_does_not_hide_others(tmp_path):
    pkg = _write_tree(tmp_path)
    (pkg / "binary.py").write_bytes(b"x = '\xff\xfe'\n")
    out = lint_paths([pkg], root=tmp_path)
    codes = sorted(v.code for v in out)
    assert "REP000" in codes and "REP004" in codes
    broken = [v for v in out if v.code == "REP000"]
    assert "not valid UTF-8" in broken[0].message


def test_broken_files_are_never_cached_as_clean(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_dir = tmp_path / ".cache"
    (pkg / "binary.py").write_bytes(b"x = '\xff\xfe'\n")
    lint_paths([pkg], root=tmp_path, cache_dir=cache_dir)

    stats = LintStats()
    out = lint_paths([pkg], root=tmp_path, cache_dir=cache_dir, stats=stats)
    assert [v.code for v in out if v.code == "REP000"], (
        "REP000 must persist on warm runs"
    )
    assert stats.broken_files == 1
