"""Transfer manager: timing, delivery, spray token protocol, aborts."""

from __future__ import annotations

import pytest

from repro.errors import TransferError
from repro.routing.base import MODE_DELIVERY, MODE_SPLIT
from repro.units import kbps, megabytes
from tests.helpers import (
    build_micro_world,
    make_message,
    scripted_mobility,
    total_copies_in_network,
)

#: 0.5 MiB at 250 kbit/s.
HALF_MB = megabytes(0.5)
EXPECTED_SECONDS = HALF_MB / kbps(250)  # ~16.78 s


def two_nodes_in_range(**kw):
    return build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)], **kw)


class TestTiming:
    def test_transfer_takes_size_over_bandwidth(self):
        mw = two_nodes_in_range()
        msg = make_message(source=0, destination=1, size=HALF_MB)
        mw.router(0).create_message(msg)
        mw.sim.run(until=1.0)  # world tick brings the link up at t=0... 1
        assert mw.transfer_manager.active_count == 1
        start = mw.sim.now
        mw.sim.run(until=start + EXPECTED_SECONDS + 1.0)
        assert mw.metrics.delivered == 1
        assert mw.metrics.latencies[0] == pytest.approx(EXPECTED_SECONDS, abs=1.0)

    def test_sender_busy_during_transfer(self):
        mw = two_nodes_in_range()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run(until=5.0)
        assert mw.nodes[0].sending
        assert mw.nodes[0].buffer.is_pinned("M1")
        mw.sim.run()
        assert not mw.nodes[0].sending


class TestDelivery:
    def test_direct_delivery_removes_sender_copy(self):
        mw = two_nodes_in_range()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run(until=30.0)
        assert mw.metrics.delivered == 1
        assert "M1" not in mw.nodes[0].buffer  # spent on delivery
        assert "M1" not in mw.nodes[1].buffer  # destination absorbs
        assert "M1" in mw.router(1).delivered_ids

    def test_duplicate_delivery_not_counted(self):
        # Three nodes in range; 0 and 2 both hold M1 destined for 1.
        mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)])
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run(until=1.0)
        # Plant an identical copy at node 2 mid-flight.
        copy = make_message(source=0, destination=1, hop_count=1)
        mw.nodes[2].buffer.add(copy)
        mw.router(2).try_send()
        mw.sim.run()
        assert mw.metrics.delivered == 1

    def test_hopcount_recorded_for_delivering_copy(self):
        mw = two_nodes_in_range()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()
        assert mw.metrics.hop_counts == [1]


class TestSprayTokens:
    def test_binary_split_on_relay(self):
        # Node 2 (destination) is far away; 0 sprays to 1.
        mw = build_micro_world(
            points=[(0.0, 0.0), (50.0, 0.0), (5000.0, 5000.0)],
            area=(6000.0, 6000.0),
        )
        msg = make_message(source=0, destination=2, copies=16, initial_copies=16)
        mw.router(0).create_message(msg)
        mw.sim.run(until=EXPECTED_SECONDS + 2.0)
        assert mw.nodes[0].buffer.get("M1").copies == 8
        assert mw.nodes[1].buffer.get("M1").copies == 8
        assert total_copies_in_network(mw, "M1") == 16
        assert mw.metrics.relayed == 1

    def test_spray_times_recorded_both_sides(self):
        mw = build_micro_world(
            points=[(0.0, 0.0), (50.0, 0.0), (5000.0, 5000.0)],
            area=(6000.0, 6000.0),
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=16, initial_copies=16)
        )
        mw.sim.run(until=EXPECTED_SECONDS + 2.0)
        sender_copy = mw.nodes[0].buffer.get("M1")
        receiver_copy = mw.nodes[1].buffer.get("M1")
        assert len(sender_copy.spray_times) == 1
        assert sender_copy.spray_times == receiver_copy.spray_times

    def test_wait_phase_copy_not_relayed(self):
        mw = build_micro_world(
            points=[(0.0, 0.0), (50.0, 0.0), (5000.0, 5000.0)],
            area=(6000.0, 6000.0),
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=1, initial_copies=16)
        )
        mw.sim.run(until=200.0)
        assert mw.metrics.relayed == 0
        assert "M1" not in mw.nodes[1].buffer

    def test_no_reinfection_of_current_holder(self):
        mw = build_micro_world(
            points=[(0.0, 0.0), (50.0, 0.0), (5000.0, 5000.0)],
            area=(6000.0, 6000.0),
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=16, initial_copies=16)
        )
        mw.sim.run(until=500.0)
        # After the single possible relay, both hold it; no further relays.
        assert mw.metrics.relayed == 1


class TestAborts:
    def test_link_down_aborts_transfer(self):
        # Nodes together for 5 s (transfer needs ~17 s), then apart.
        mobility = scripted_mobility(
            [0.0, 5.0, 6.0, 100.0],
            [
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (900.0, 900.0)],
                [(0.0, 0.0), (900.0, 900.0)],
            ],
        )
        mw = build_micro_world(mobility=mobility, sim_time=100.0)
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()
        assert mw.metrics.delivered == 0
        assert mw.metrics.aborted >= 1
        assert "M1" in mw.nodes[0].buffer  # sender keeps its copy
        assert not mw.nodes[0].buffer.is_pinned("M1")
        assert not mw.nodes[0].sending

    def test_abort_preserves_tokens(self):
        mobility = scripted_mobility(
            [0.0, 5.0, 6.0, 100.0],
            [
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (900.0, 900.0)],
                [(0.0, 0.0), (900.0, 900.0)],
            ],
        )
        mw = build_micro_world(mobility=mobility, sim_time=100.0)
        mw.router(0).create_message(
            make_message(source=0, destination=1, copies=16, initial_copies=16)
        )
        mw.sim.run()
        assert total_copies_in_network(mw, "M1") == 16
        assert mw.nodes[0].buffer.get("M1").spray_times == []


class TestStartValidation:
    def test_cannot_start_without_link(self):
        mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
        msg = make_message(source=0, destination=1)
        mw.nodes[0].buffer.add(msg)
        mw.sim.run(until=1.0)
        with pytest.raises(TransferError):
            mw.transfer_manager.start(mw.nodes[0], mw.nodes[1], msg, MODE_DELIVERY)

    def test_cannot_start_when_already_sending(self):
        mw = two_nodes_in_range()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run(until=2.0)
        other = make_message(msg_id="M2", source=0, destination=1)
        mw.nodes[0].buffer.add(other)
        with pytest.raises(TransferError):
            mw.transfer_manager.start(mw.nodes[0], mw.nodes[1], other, MODE_DELIVERY)

    def test_cannot_start_message_not_in_buffer(self):
        mw = two_nodes_in_range()
        mw.sim.run(until=1.0)
        ghost = make_message(msg_id="ghost", source=0, destination=1)
        with pytest.raises(TransferError):
            mw.transfer_manager.start(mw.nodes[0], mw.nodes[1], ghost, MODE_SPLIT)

    def test_unknown_mode_rejected(self):
        mw = two_nodes_in_range()
        msg = make_message(source=0, destination=1)
        mw.nodes[0].buffer.add(msg)
        mw.sim.run(until=1.0)
        with pytest.raises(TransferError):
            mw.transfer_manager.start(mw.nodes[0], mw.nodes[1], msg, "teleport")


class TestExpiryMidFlight:
    def test_message_expiring_on_air_is_not_delivered(self):
        mw = two_nodes_in_range()
        # Expires 5 s into a ~17 s transfer.
        mw.router(0).create_message(
            make_message(source=0, destination=1, ttl=5.0)
        )
        mw.sim.run(until=40.0)
        assert mw.metrics.delivered == 0
        assert "M1" not in mw.nodes[0].buffer
        assert mw.metrics.drops_by_reason.get("ttl", 0) >= 1
