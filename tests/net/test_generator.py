"""Traffic generation: cadence, endpoints, spec validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.generator import MessageGenerator, TrafficSpec
from repro.units import megabytes
from tests.helpers import build_micro_world


def far_apart_world(n: int = 4, sim_time: float = 2000.0):
    # Nodes out of radio range: generated messages just sit in buffers.
    points = [(i * 1000.0, 0.0) for i in range(n)]
    return build_micro_world(
        points=points, sim_time=sim_time, area=(10000.0, 1000.0)
    )


def spec(**kw):
    defaults = dict(
        interval_range=(25.0, 35.0),
        message_size=megabytes(0.5),
        ttl=18000.0,
        initial_copies=8,
    )
    defaults.update(kw)
    return TrafficSpec(**defaults)


class TestSpecValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            spec(interval_range=(0.0, 10.0))
        with pytest.raises(ConfigurationError):
            spec(interval_range=(20.0, 10.0))

    def test_rejects_bad_size_ttl_copies(self):
        with pytest.raises(ConfigurationError):
            spec(message_size=0)
        with pytest.raises(ConfigurationError):
            spec(ttl=0.0)
        with pytest.raises(ConfigurationError):
            spec(initial_copies=0)


class TestGeneration:
    def test_message_count_matches_interval(self):
        mw = far_apart_world(sim_time=3000.0)
        gen = MessageGenerator(
            mw.sim, mw.nodes, spec(interval_range=(30.0, 30.0)),
            np.random.default_rng(1),
        )
        gen.start()
        mw.sim.run()
        # One message exactly every 30 s starting at t=30.
        assert gen.created == 100
        assert mw.metrics.created == 100

    def test_random_interval_within_bounds(self):
        mw = far_apart_world(sim_time=3000.0)
        gen = MessageGenerator(
            mw.sim, mw.nodes, spec(interval_range=(25.0, 35.0)),
            np.random.default_rng(2),
        )
        gen.start()
        mw.sim.run()
        assert 3000 / 35 - 1 <= gen.created <= 3000 / 25 + 1

    def test_source_and_destination_differ(self):
        mw = far_apart_world(sim_time=3000.0)
        seen = []
        mw.sim.listeners.subscribe(
            "message.created", lambda m: seen.append((m.source, m.destination))
        )
        gen = MessageGenerator(
            mw.sim, mw.nodes, spec(), np.random.default_rng(3)
        )
        gen.start()
        mw.sim.run()
        assert seen
        assert all(src != dst for src, dst in seen)

    def test_messages_carry_spec_parameters(self):
        mw = far_apart_world(sim_time=500.0)
        seen = []
        mw.sim.listeners.subscribe("message.created", seen.append)
        gen = MessageGenerator(
            mw.sim, mw.nodes,
            spec(initial_copies=16, ttl=1234.0, message_size=1000),
            np.random.default_rng(4),
        )
        gen.start()
        mw.sim.run()
        m = seen[0]
        assert m.initial_copies == m.copies == 16
        assert m.ttl == 1234.0
        assert m.size == 1000
        assert m.created_at > 0

    def test_ids_are_unique_and_prefixed(self):
        mw = far_apart_world(sim_time=1000.0)
        seen = []
        mw.sim.listeners.subscribe("message.created", seen.append)
        gen = MessageGenerator(
            mw.sim, mw.nodes, spec(), np.random.default_rng(5), id_prefix="T"
        )
        gen.start()
        mw.sim.run()
        ids = [m.msg_id for m in seen]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith("T") for i in ids)

    def test_requires_two_nodes(self):
        mw = far_apart_world()
        with pytest.raises(ConfigurationError):
            MessageGenerator(mw.sim, mw.nodes[:1], spec(), np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        def run(seed):
            mw = far_apart_world(sim_time=1000.0)
            seen = []
            mw.sim.listeners.subscribe(
                "message.created",
                lambda m: seen.append((m.msg_id, m.source, m.destination, m.created_at)),
            )
            gen = MessageGenerator(
                mw.sim, mw.nodes, spec(), np.random.default_rng(seed)
            )
            gen.start()
            mw.sim.run()
            return seen

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestMixedSizes:
    def test_size_range_draws_within_bounds(self):
        mw = far_apart_world(sim_time=2000.0)
        seen = []
        mw.sim.listeners.subscribe("message.created", seen.append)
        gen = MessageGenerator(
            mw.sim, mw.nodes,
            spec(size_range=(1000, 5000)),
            np.random.default_rng(6),
        )
        gen.start()
        mw.sim.run()
        sizes = {m.size for m in seen}
        assert all(1000 <= s <= 5000 for s in sizes)
        assert len(sizes) > 1  # actually varied

    def test_fixed_size_without_range(self):
        assert spec().draw_size(np.random.default_rng(0)) == megabytes(0.5)

    def test_bad_size_range(self):
        with pytest.raises(ConfigurationError):
            spec(size_range=(0, 100))
        with pytest.raises(ConfigurationError):
            spec(size_range=(200, 100))
