"""Message copy semantics: TTL accounting, binary splits, clones."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from tests.helpers import make_message


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            make_message(size=0)

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ConfigurationError):
            make_message(ttl=0)

    def test_rejects_copies_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_message(copies=0)
        with pytest.raises(ConfigurationError):
            make_message(copies=17, initial_copies=16)

    def test_rejects_self_addressed(self):
        with pytest.raises(ConfigurationError):
            make_message(source=3, destination=3)


class TestTtl:
    def test_elapsed_and_remaining(self):
        msg = make_message(created_at=100.0, ttl=50.0)
        assert msg.elapsed(120.0) == 20.0
        assert msg.remaining_ttl(120.0) == 30.0
        assert msg.expires_at() == 150.0

    def test_elapsed_clamped_before_creation(self):
        msg = make_message(created_at=100.0, ttl=50.0)
        assert msg.elapsed(90.0) == 0.0
        assert msg.remaining_ttl(90.0) == 50.0

    def test_expiry_boundary(self):
        msg = make_message(created_at=0.0, ttl=50.0)
        assert not msg.is_expired(49.999)
        assert msg.is_expired(50.0)

    def test_remaining_goes_negative_after_expiry(self):
        msg = make_message(created_at=0.0, ttl=50.0)
        assert msg.remaining_ttl(60.0) == -10.0


class TestBinarySplit:
    def test_split_counts_binary(self):
        assert make_message(copies=16).split_counts() == (8, 8)
        assert make_message(copies=5, initial_copies=16).split_counts() == (3, 2)
        assert make_message(copies=2, initial_copies=16).split_counts() == (1, 1)

    def test_cannot_split_single_copy(self):
        msg = make_message(copies=1, initial_copies=16)
        assert not msg.can_spray
        with pytest.raises(ConfigurationError):
            msg.split_counts()

    def test_split_child_is_pure(self):
        msg = make_message(copies=16)
        child = msg.split_child(now=10.0)
        assert msg.copies == 16  # sender untouched until apply_split
        assert msg.spray_times == []
        assert child.copies == 8
        assert child.hop_count == 1
        assert child.spray_times == [10.0]

    def test_apply_split_commits_sender_side(self):
        msg = make_message(copies=16)
        msg.split_child(now=10.0)
        msg.apply_split(now=10.0)
        assert msg.copies == 8
        assert msg.spray_times == [10.0]

    def test_split_convenience_combines_both(self):
        msg = make_message(copies=7, initial_copies=16)
        child = msg.split(now=3.0)
        assert (msg.copies, child.copies) == (4, 3)
        assert msg.spray_times == [3.0]
        assert child.spray_times == [3.0]

    def test_child_inherits_lineage(self):
        msg = make_message(copies=8, spray_times=[1.0, 2.0])
        child = msg.split_child(now=5.0)
        assert child.spray_times == [1.0, 2.0, 5.0]

    @given(st.integers(min_value=2, max_value=1 << 20))
    def test_split_conserves_tokens(self, copies):
        msg = make_message(copies=copies, initial_copies=1 << 20)
        keep, give = msg.split_counts()
        assert keep + give == copies
        assert keep >= give >= 1  # binary mode: sender keeps the ceil

    @given(st.integers(min_value=2, max_value=4096))
    def test_repeated_splitting_terminates_at_one(self, copies):
        msg = make_message(copies=copies, initial_copies=4096)
        rounds = 0
        while msg.can_spray:
            msg.split(now=float(rounds))
            rounds += 1
        assert msg.copies == 1
        # Binary splitting halves each time: ceil(log2(copies)) rounds.
        assert rounds == (copies - 1).bit_length()


class TestForwardClone:
    def test_clone_preserves_tokens_and_increments_hops(self):
        msg = make_message(copies=5, initial_copies=16, hop_count=2)
        clone = msg.forward_clone(now=9.0)
        assert clone.copies == 5
        assert clone.hop_count == 3
        assert clone.spray_times == msg.spray_times
        assert clone.spray_times is not msg.spray_times  # independent list
