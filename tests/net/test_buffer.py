"""Buffer accounting, pinning, and the capacity invariant (property)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    ReproBufferError,
    DuplicateMessageError,
    MessageNotFoundError,
)
from repro.net.buffer import MessageBuffer
from tests.helpers import make_message


def msg(i: int, size: int = 100) -> object:
    return make_message(msg_id=f"M{i}", size=size)


class TestAccounting:
    def test_add_and_remove_track_bytes(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1, 300))
        buf.add(msg(2, 200))
        assert (buf.used, buf.free, len(buf)) == (500, 500, 2)
        buf.remove("M1")
        assert (buf.used, buf.free, len(buf)) == (200, 800, 1)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ReproBufferError):
            MessageBuffer(0)

    def test_add_overflow_is_an_error(self):
        buf = MessageBuffer(100)
        with pytest.raises(ReproBufferError):
            buf.add(msg(1, 101))

    def test_duplicate_id_rejected(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1))
        with pytest.raises(DuplicateMessageError):
            buf.add(msg(1))

    def test_remove_unknown_raises(self):
        with pytest.raises(MessageNotFoundError):
            MessageBuffer(100).remove("nope")

    def test_get_unknown_raises(self):
        with pytest.raises(MessageNotFoundError):
            MessageBuffer(100).get("nope")

    def test_fits_and_could_ever_fit(self):
        buf = MessageBuffer(500)
        buf.add(msg(1, 400))
        small, big = msg(2, 100), msg(3, 600)
        assert buf.fits(small)
        assert not buf.fits(msg(4, 101))
        assert buf.could_ever_fit(msg(4, 500))
        assert not buf.could_ever_fit(big)

    def test_insertion_order_preserved(self):
        buf = MessageBuffer(1000)
        for i in (3, 1, 2):
            buf.add(msg(i))
        assert buf.ids() == ["M3", "M1", "M2"]
        assert [m.msg_id for m in buf.messages()] == ["M3", "M1", "M2"]

    def test_occupancy(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1, 250))
        assert buf.occupancy() == 0.25


class TestPinning:
    def test_pinned_message_cannot_be_removed(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1))
        buf.pin("M1")
        with pytest.raises(ReproBufferError):
            buf.remove("M1")
        buf.unpin("M1")
        buf.remove("M1")

    def test_pins_are_counted(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1))
        buf.pin("M1")
        buf.pin("M1")
        buf.unpin("M1")
        assert buf.is_pinned("M1")
        buf.unpin("M1")
        assert not buf.is_pinned("M1")

    def test_unpin_unknown_is_noop(self):
        MessageBuffer(100).unpin("ghost")

    def test_pin_unknown_raises(self):
        with pytest.raises(MessageNotFoundError):
            MessageBuffer(100).pin("ghost")

    def test_droppable_excludes_pinned(self):
        buf = MessageBuffer(1000)
        buf.add(msg(1))
        buf.add(msg(2))
        buf.pin("M1")
        assert [m.msg_id for m in buf.droppable()] == ["M2"]


class TestExpiry:
    def test_expired_lists_past_ttl(self):
        buf = MessageBuffer(10_000)
        buf.add(make_message(msg_id="old", size=10, created_at=0.0, ttl=50.0))
        buf.add(make_message(msg_id="new", size=10, created_at=40.0, ttl=50.0))
        assert [m.msg_id for m in buf.expired(60.0)] == ["old"]


class TestCapacityInvariant:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=1, max_value=400),
            ),
            max_size=60,
        )
    )
    def test_used_never_exceeds_capacity_and_matches_contents(self, ops):
        """Arbitrary legal add/remove sequences keep accounting exact."""
        buf = MessageBuffer(1000)
        for op, ident, size in ops:
            mid = f"M{ident}"
            if op == "add" and mid not in buf and size <= buf.free:
                buf.add(make_message(msg_id=mid, size=size))
            elif op == "remove" and mid in buf:
                buf.remove(mid)
            assert 0 <= buf.used <= buf.capacity
            assert buf.used == sum(m.size for m in buf)
            assert buf.free == buf.capacity - buf.used
