"""Intermeeting estimators: Def. 1 / Def. 2 sampling and Eq. 3 scaling."""

from __future__ import annotations

import pytest

from repro.core.intermeeting import (
    MinIntermeetingEstimator,
    PairIntermeetingEstimator,
    StaticIntermeetingEstimator,
    pair_key,
)
from repro.errors import ConfigurationError


def test_pair_key_canonical():
    assert pair_key(3, 7) == (3, 7)
    assert pair_key(7, 3) == (3, 7)


class TestStatic:
    def test_derived_quantities(self):
        est = StaticIntermeetingEstimator(mean=1000.0)
        assert est.mean_intermeeting() == 1000.0
        assert est.rate() == pytest.approx(1e-3)
        assert est.mean_min_intermeeting(101) == pytest.approx(10.0)
        assert est.min_rate(101) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticIntermeetingEstimator(0.0)
        with pytest.raises(ConfigurationError):
            StaticIntermeetingEstimator(100.0).mean_min_intermeeting(1)


class TestPairEstimator:
    def test_prior_used_before_samples(self):
        est = PairIntermeetingEstimator(prior_mean=500.0, min_samples=10)
        assert est.mean_intermeeting() == 500.0

    def test_samples_pull_mean_toward_data(self):
        est = PairIntermeetingEstimator(prior_mean=500.0, min_samples=2)
        est.observe_link_down(0, 1, 0.0)
        est.observe_link_up(0, 1, 100.0)  # sample: 100
        assert est.sample_count == 1
        # (100 + 2*500) / 3
        assert est.mean_intermeeting() == pytest.approx(1100 / 3)

    def test_first_contact_yields_no_sample(self):
        est = PairIntermeetingEstimator(prior_mean=500.0)
        est.observe_link_up(0, 1, 50.0)
        assert est.sample_count == 0

    def test_duplicate_endpoint_reports_counted_once(self):
        est = PairIntermeetingEstimator(prior_mean=500.0)
        est.observe_link_down(0, 1, 0.0)
        est.observe_link_down(1, 0, 0.0)  # other endpoint, same event
        est.observe_link_up(0, 1, 100.0)
        est.observe_link_up(1, 0, 100.0)
        assert est.sample_count == 1

    def test_pairs_tracked_independently(self):
        est = PairIntermeetingEstimator(prior_mean=100.0, min_samples=1)
        est.observe_link_down(0, 1, 0.0)
        est.observe_link_down(2, 3, 0.0)
        est.observe_link_up(0, 1, 10.0)
        est.observe_link_up(2, 3, 30.0)
        assert est.sample_count == 2


class TestMinEstimator:
    def test_prior_is_pairwise_scaled(self):
        est = MinIntermeetingEstimator(prior_mean=990.0, n_nodes=100)
        assert est.mean_min_intermeeting() == pytest.approx(10.0)
        assert est.mean_intermeeting() == pytest.approx(990.0)

    def test_node_level_gap_sampling(self):
        est = MinIntermeetingEstimator(prior_mean=99.0, n_nodes=100,
                                       min_samples=1)
        est.observe_link_up(5, 9, 0.0)
        est.observe_link_down(5, 9, 10.0)  # node 5 idle from t=10
        est.observe_link_up(5, 2, 30.0)  # gap 20 for node 5
        assert est.sample_count == 1
        # (20 + 1*1.0) / 2 ... prior_min = 99/99 = 1
        assert est.mean_min_intermeeting() == pytest.approx(10.5)
        assert est.mean_intermeeting() == pytest.approx(10.5 * 99)

    def test_overlapping_contacts_do_not_sample(self):
        est = MinIntermeetingEstimator(prior_mean=99.0, n_nodes=100,
                                       min_samples=1)
        est.observe_link_up(5, 1, 0.0)
        est.observe_link_up(5, 2, 5.0)  # still busy: no gap started
        est.observe_link_down(5, 1, 10.0)  # one contact remains
        est.observe_link_up(5, 3, 15.0)  # no sample: node never went idle
        assert est.sample_count == 0
        est.observe_link_down(5, 2, 20.0)
        est.observe_link_down(5, 3, 20.0)
        est.observe_link_up(5, 4, 50.0)  # idle 20 -> 50: sample 30
        assert est.sample_count == 1

    def test_both_endpoints_sample_independently(self):
        est = MinIntermeetingEstimator(prior_mean=99.0, n_nodes=100,
                                       min_samples=1)
        est.observe_link_up(0, 1, 0.0)
        est.observe_link_up(1, 0, 0.0)
        est.observe_link_down(0, 1, 10.0)
        est.observe_link_down(1, 0, 10.0)
        est.observe_link_up(0, 2, 30.0)
        est.observe_link_up(1, 3, 40.0)
        assert est.sample_count == 2  # one gap per node

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MinIntermeetingEstimator(prior_mean=100.0, n_nodes=1)
        with pytest.raises(ConfigurationError):
            MinIntermeetingEstimator(prior_mean=0.0, n_nodes=10)
        with pytest.raises(ConfigurationError):
            MinIntermeetingEstimator(prior_mean=10.0, n_nodes=10, min_samples=0)
