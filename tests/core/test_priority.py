"""The paper's equations (4-13): values, equivalences, monotonicity, peak."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.priority import (
    PEAK_P_R,
    delivery_probability,
    exponent_coefficient,
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_from_probabilities,
    priority_taylor,
)
from repro.errors import ConfigurationError

N = 100
LAM = 1e-4

# Strategy producing sensible (C, R, m, n) operating points.
points = st.tuples(
    st.sampled_from([1, 2, 4, 8, 16, 32, 64]),  # C_i
    st.floats(min_value=1.0, max_value=20_000.0),  # R_i
    st.integers(min_value=0, max_value=N - 1),  # m_i
    st.integers(min_value=1, max_value=N - 1),  # n_i
)


class TestExponentCoefficient:
    def test_single_copy_reduces_to_remaining_ttl(self):
        # C=1: log2(C)=0, so A = R exactly.
        assert exponent_coefficient(1, 1234.0, LAM, N) == pytest.approx(1234.0)

    def test_hand_computed_value(self):
        # C=4: A = 3R - 2*3/(2*99*lam)
        expected = 3 * 1000.0 - 6 / (2 * 99 * LAM)
        assert exponent_coefficient(4, 1000.0, LAM, N) == pytest.approx(expected)

    def test_negative_for_tiny_ttl_and_many_copies(self):
        assert exponent_coefficient(64, 0.1, LAM, N) < 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exponent_coefficient(1, 100.0, 0.0, N)
        with pytest.raises(ConfigurationError):
            exponent_coefficient(0.5, 100.0, LAM, N)
        with pytest.raises(ConfigurationError):
            exponent_coefficient(1, 100.0, LAM, 1)

    def test_vectorized(self):
        out = exponent_coefficient(np.array([1, 4]), np.array([100.0, 100.0]),
                                   LAM, N)
        assert out.shape == (2,)


class TestEq5:
    def test_fraction_of_seen(self):
        assert p_delivered(0, N) == 0.0
        assert p_delivered(99, N) == 1.0
        assert p_delivered(33, N) == pytest.approx(33 / 99)

    def test_clipped_against_overestimates(self):
        assert p_delivered(500, N) == 1.0


class TestEq6:
    def test_in_unit_interval_for_positive_coefficient(self):
        pr = p_remaining(8, 10_000.0, 5, LAM, N)
        assert 0.0 < float(pr) < 1.0

    def test_more_holders_increase_p_remaining(self):
        lo = p_remaining(8, 5_000.0, 1, LAM, N)
        hi = p_remaining(8, 5_000.0, 20, LAM, N)
        assert float(hi) > float(lo)

    def test_longer_ttl_increases_p_remaining(self):
        lo = p_remaining(8, 1_000.0, 5, LAM, N)
        hi = p_remaining(8, 10_000.0, 5, LAM, N)
        assert float(hi) > float(lo)

    def test_negative_when_expired(self):
        # R < 0 gives a (meaningless but finite) negative probability that
        # still ranks expired messages at the bottom.
        assert float(p_remaining(1, -100.0, 1, LAM, N)) < 0.0


class TestEq7:
    def test_combines_both_terms(self):
        pt = float(p_delivered(33, N))
        pr = float(p_remaining(8, 5_000.0, 4, LAM, N))
        expected = pt + (1 - pt) * pr
        got = float(delivery_probability(8, 5_000.0, 33, 4, LAM, N))
        assert got == pytest.approx(expected)

    def test_already_delivered_dominates(self):
        assert float(delivery_probability(1, 100.0, 99, 1, LAM, N)) == 1.0


class TestEq10And11Equivalence:
    @given(points)
    def test_closed_form_equals_probability_form(self, point):
        c, r, m, n = point
        u10 = float(priority_closed_form(c, r, m, n, LAM, N))
        pt = float(p_delivered(m, N))
        pr = float(p_remaining(c, r, n, LAM, N))
        u11 = float(priority_from_probabilities(pt, pr, n))
        # Eq. 11 carries a 1/n_i factor; Eq. 10's λA e^{-λnA} equals
        # (P(R)-1) ln(1-P(R)) / n — same quantity.  Tolerance is loose
        # because 1-P(R) suffers catastrophic cancellation near saturation.
        assert u10 == pytest.approx(u11, rel=1e-5, abs=1e-12)

    def test_hand_computed_point(self):
        # C=1, R s.t. lam*n*A = 1 -> P(R) = 1 - 1/e (the peak, Eq. 12).
        n = 2
        r = 1.0 / (LAM * n)
        u = float(priority_closed_form(1, r, 0, n, LAM, N))
        # At the peak: U = lam * A * e^{-1} = (1/n) e^{-1}
        assert u == pytest.approx(np.exp(-1.0) / n)


class TestMonotonicity:
    @given(points)
    def test_priority_decreases_with_p_delivered(self, point):
        c, r, m, n = point
        if m + 5 > N - 1:
            m = N - 6
        lo = float(priority_closed_form(c, r, m, n, LAM, N))
        hi = float(priority_closed_form(c, r, m + 5, n, LAM, N))
        # "higher delivered probability leads to lower priority"
        if lo > 0:
            assert hi <= lo + 1e-12

    @given(points)
    def test_more_holders_lower_priority_for_positive_coeff(self, point):
        c, r, m, n = point
        coeff = float(exponent_coefficient(c, r, LAM, N))
        if coeff <= 0 or n + 5 > N - 1:
            return
        lo = float(priority_closed_form(c, r, m, n + 5, LAM, N))
        hi = float(priority_closed_form(c, r, m, n, LAM, N))
        assert lo <= hi + 1e-12


class TestPeak:
    def test_peak_of_eq11_at_1_minus_1_over_e(self):
        p_r = np.linspace(0.0, 0.9999, 20001)
        u = priority_from_probabilities(0.0, p_r, 1.0)
        peak = p_r[int(np.argmax(u))]
        assert peak == pytest.approx(PEAK_P_R, abs=1e-3)

    def test_rising_then_falling(self):
        u_low = float(priority_from_probabilities(0.0, 0.2, 1.0))
        u_peak = float(priority_from_probabilities(0.0, PEAK_P_R, 1.0))
        u_high = float(priority_from_probabilities(0.0, 0.95, 1.0))
        assert u_peak > u_low and u_peak > u_high

    def test_limit_at_certainty_is_zero(self):
        assert float(priority_from_probabilities(0.0, 1.0, 1.0)) == 0.0


class TestEq13Taylor:
    @given(
        st.floats(min_value=0.0, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=1, max_value=20),
    )
    def test_converges_to_eq11_from_below(self, p_r, p_t, terms):
        exact = float(priority_from_probabilities(p_t, p_r, 1.0))
        approx = float(priority_taylor(p_t, p_r, 1.0, terms=terms))
        better = float(priority_taylor(p_t, p_r, 1.0, terms=terms + 10))
        assert approx <= exact + 1e-12  # truncation underestimates
        assert abs(better - exact) <= abs(approx - exact) + 1e-12

    def test_high_term_count_matches_closely(self):
        p_r = np.linspace(0.0, 0.9, 50)
        exact = priority_from_probabilities(0.1, p_r, 2.0)
        approx = priority_taylor(0.1, p_r, 2.0, terms=200)
        assert np.allclose(exact, approx, atol=1e-8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            priority_taylor(0.0, 0.5, 1.0, terms=0)


class TestNumericalRobustness:
    def test_huge_exponents_do_not_overflow(self):
        u = priority_closed_form(64, 1e9, 0, 99, 1e-3, N)
        assert np.isfinite(u)
        u = priority_closed_form(64, -1e9, 0, 99, 1e-3, N)
        assert np.isfinite(u)

    def test_vectorized_batch_matches_scalars(self):
        c = np.array([1, 4, 16, 64])
        r = np.array([100.0, 5_000.0, 10_000.0, 30.0])
        m = np.array([0, 10, 50, 98])
        n = np.array([1, 3, 9, 2])
        batch = priority_closed_form(c, r, m, n, LAM, N)
        for i in range(4):
            single = float(
                priority_closed_form(int(c[i]), float(r[i]), int(m[i]),
                                     int(n[i]), LAM, N)
            )
            assert batch[i] == pytest.approx(single)


class TestEq12PeakCondition:
    """Eq. 12: messages whose expected destination-encounter time equals the
    spray-adjusted TTL budget sit exactly at the P(R) = 1 - 1/e peak."""

    @pytest.mark.parametrize("c_i", [1, 2, 8, 32])
    @pytest.mark.parametrize("n_i", [1, 3, 10])
    def test_solving_eq12_lands_on_the_peak(self, c_i, n_i):
        k = np.log2(c_i)
        e_min = 1.0 / ((N - 1) * LAM)
        # Eq. 12: 1/(lam n) = (k+1) R - E(I_min) k(k+1)/2  ->  solve for R.
        r = (1.0 / (LAM * n_i) + e_min * k * (k + 1) / 2.0) / (k + 1.0)
        pr = float(p_remaining(c_i, r, n_i, LAM, N))
        assert pr == pytest.approx(PEAK_P_R, rel=1e-9)
        # And the priority there beats nearby R on both sides.
        u_peak = float(priority_closed_form(c_i, r, 0, n_i, LAM, N))
        u_lo = float(priority_closed_form(c_i, r * 0.5, 0, n_i, LAM, N))
        u_hi = float(priority_closed_form(c_i, r * 2.0, 0, n_i, LAM, N))
        assert u_peak > u_lo and u_peak > u_hi
