"""Dropped-list gossip (Fig. 5): LWW merge semantics and properties."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.dropped_list import DroppedListStore


def store_with_drops(node_id: int, drops: list[tuple[str, float]]) -> DroppedListStore:
    s = DroppedListStore(node_id)
    for msg_id, t in drops:
        s.record_drop(msg_id, now=t, expires_at=t + 1000.0)
    return s


class TestLocalRecord:
    def test_record_and_query(self):
        s = store_with_drops(0, [("M1", 5.0)])
        assert s.has_dropped("M1")
        assert not s.has_dropped("M2")
        assert s.count_drops("M1") == 1

    def test_record_time_tracks_latest_drop(self):
        s = DroppedListStore(0)
        s.record_drop("M1", now=5.0, expires_at=100.0)
        s.record_drop("M2", now=9.0, expires_at=100.0)
        assert s.known_records()[0].record_time == 9.0


class TestMerge:
    def test_merge_adopts_unknown_records(self):
        a = store_with_drops(0, [("M1", 5.0)])
        b = store_with_drops(1, [("M1", 3.0), ("M2", 4.0)])
        a.merge_from(b)
        assert a.count_drops("M1") == 2
        assert a.count_drops("M2") == 1
        assert a.seen_by_any("M2")
        assert not a.has_dropped("M2")  # own record untouched

    def test_merge_keeps_newer_record(self):
        a = DroppedListStore(0)
        b = store_with_drops(1, [("M1", 3.0)])
        a.merge_from(b)
        # b drops another message later; re-merge must refresh.
        b.record_drop("M2", now=10.0, expires_at=100.0)
        a.merge_from(b)
        assert a.count_drops("M2") == 1

    def test_merge_does_not_regress_to_older_record(self):
        a = DroppedListStore(0)
        b_new = store_with_drops(1, [("M1", 3.0), ("M2", 8.0)])
        b_old = store_with_drops(1, [("M1", 3.0)])
        a.merge_from(b_new)
        a.merge_from(b_old)  # stale copy of node 1's record
        assert a.count_drops("M2") == 1

    def test_own_record_is_authoritative(self):
        a = store_with_drops(0, [("M1", 5.0)])
        fake = DroppedListStore(1)
        fake._records[0] = store_with_drops(0, [("BAD", 99.0)])._own
        a.merge_from(fake)
        assert not a.has_dropped("BAD")

    def test_transitive_propagation(self):
        a = store_with_drops(0, [("M1", 1.0)])
        b = DroppedListStore(1)
        c = DroppedListStore(2)
        b.merge_from(a)
        c.merge_from(b)  # c never met a
        assert c.count_drops("M1") == 1


class TestMergeProperties:
    drops = st.lists(
        st.tuples(st.sampled_from(["M1", "M2", "M3"]),
                  st.floats(min_value=0, max_value=100)),
        max_size=5,
    )

    @given(drops, drops)
    def test_merge_commutative(self, da, db):
        msg_ids = {"M1", "M2", "M3"}
        a1, b1 = store_with_drops(0, da), store_with_drops(1, db)
        a2, b2 = store_with_drops(0, da), store_with_drops(1, db)
        a1.merge_from(b1)
        b2.merge_from(a2)
        for mid in msg_ids:
            assert a1.count_drops(mid) == b2.count_drops(mid)

    @given(drops, drops)
    def test_merge_idempotent(self, da, db):
        a, b = store_with_drops(0, da), store_with_drops(1, db)
        a.merge_from(b)
        counts = {m: a.count_drops(m) for m in ("M1", "M2", "M3")}
        a.merge_from(b)
        assert counts == {m: a.count_drops(m) for m in ("M1", "M2", "M3")}

    @given(drops, drops, drops)
    def test_merge_associative_effect(self, da, db, dc):
        """(a<-b)<-c equals a<-(b<-c) in observable drop counts."""
        a1, b1, c1 = (store_with_drops(i, d) for i, d in enumerate((da, db, dc)))
        a1.merge_from(b1)
        a1.merge_from(c1)
        a2, b2, c2 = (store_with_drops(i, d) for i, d in enumerate((da, db, dc)))
        b2.merge_from(c2)
        a2.merge_from(b2)
        for mid in ("M1", "M2", "M3"):
            assert a1.count_drops(mid) == a2.count_drops(mid)


class TestPrune:
    def test_prune_removes_expired_entries(self):
        s = DroppedListStore(0)
        s.record_drop("old", now=0.0, expires_at=10.0)
        s.record_drop("new", now=0.0, expires_at=1000.0)
        assert s.prune(now=50.0) == 1
        assert not s.has_dropped("old")
        assert s.has_dropped("new")

    def test_prune_applies_to_merged_records(self):
        a = DroppedListStore(0)
        b = DroppedListStore(1)
        b.record_drop("old", now=0.0, expires_at=10.0)
        a.merge_from(b)
        assert a.count_drops("old") == 1
        a.prune(now=50.0)
        assert a.count_drops("old") == 0

    def test_len_counts_all_entries(self):
        a = store_with_drops(0, [("M1", 1.0), ("M2", 2.0)])
        b = store_with_drops(1, [("M1", 3.0)])
        a.merge_from(b)
        assert len(a) == 3
