"""Eq. 15 infection-scope estimation (Fig. 6)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.spray_tree import estimate_infected
from repro.errors import ConfigurationError

E_MIN = 100.0  # E(I_min)
N = 100


class TestPaperFormula:
    def test_source_without_sprays_knows_nothing(self):
        assert estimate_infected([], now=500.0, mean_min_intermeeting=E_MIN,
                                 n_nodes=N) == 0

    def test_single_fresh_spray_counts_one(self):
        # Evaluated at the spray instant: exponent 0 -> one infected node.
        assert estimate_infected([100.0], now=100.0,
                                 mean_min_intermeeting=E_MIN, n_nodes=N) == 1

    def test_fig6_example(self):
        """Fig. 6: sprays at t0..t3, evaluated at t3.

        m = 2^((t3-t0)/E) + 2^((t3-t1)/E) + 2^((t3-t2)/E) + 1.
        With t = 0, 100, 200, 300 and E = 100: 8 + 4 + 2 + 1 = 15.
        """
        sprays = [0.0, 100.0, 200.0, 300.0]
        assert estimate_infected(sprays, now=300.0,
                                 mean_min_intermeeting=E_MIN, n_nodes=N) == 15

    def test_reference_is_latest_spray_not_now(self):
        """The estimate freezes between sprays (the paper's t_n reference)."""
        sprays = [0.0, 100.0]
        at_spray = estimate_infected(sprays, now=100.0,
                                     mean_min_intermeeting=E_MIN, n_nodes=N)
        much_later = estimate_infected(sprays, now=10_000.0,
                                       mean_min_intermeeting=E_MIN, n_nodes=N)
        assert at_spray == much_later == 3  # 2^1 + 2^0

    def test_extrapolate_mode_grows_with_time(self):
        sprays = [0.0, 100.0]
        later = estimate_infected(sprays, now=500.0,
                                  mean_min_intermeeting=E_MIN, n_nodes=N,
                                  extrapolate=True)
        assert later > 3

    def test_floor_semantics(self):
        # t_n - t_k = 250 with E = 100 -> floor 2 -> 2^2 = 4, plus 2^0.
        assert estimate_infected([0.0, 250.0], now=250.0,
                                 mean_min_intermeeting=E_MIN, n_nodes=N) == 5


class TestClamping:
    def test_saturates_at_fleet_size(self):
        sprays = [0.0, 10_000.0]  # huge gap -> astronomically many branches
        assert estimate_infected(sprays, now=10_000.0,
                                 mean_min_intermeeting=E_MIN, n_nodes=N) == N - 1

    def test_at_least_one_node_per_spray(self):
        # Many sprays in a burst: exponentially each contributes 1, and the
        # floor guarantees >= number of spray events.
        sprays = [100.0] * 5
        assert estimate_infected(sprays, now=100.0,
                                 mean_min_intermeeting=E_MIN, n_nodes=N) == 5

    def test_no_overflow_for_ancient_sprays(self):
        est = estimate_infected([0.0, 1e15], now=1e15,
                                mean_min_intermeeting=1e-3, n_nodes=N,
                                extrapolate=True)
        assert est == N - 1


class TestValidation:
    def test_bad_e_min(self):
        with pytest.raises(ConfigurationError):
            estimate_infected([0.0], now=1.0, mean_min_intermeeting=0.0,
                              n_nodes=N)

    def test_bad_n(self):
        with pytest.raises(ConfigurationError):
            estimate_infected([0.0], now=1.0, mean_min_intermeeting=1.0,
                              n_nodes=1)

    def test_future_spray_time(self):
        with pytest.raises(ConfigurationError):
            estimate_infected([100.0], now=50.0, mean_min_intermeeting=1.0,
                              n_nodes=N)


class TestProperties:
    spray_lists = st.lists(
        st.floats(min_value=0, max_value=10_000), min_size=1, max_size=12
    )

    @given(spray_lists)
    def test_bounds(self, sprays):
        now = max(sprays)
        m = estimate_infected(sprays, now=now, mean_min_intermeeting=E_MIN,
                              n_nodes=N)
        assert len(sprays) <= m <= N - 1

    @given(spray_lists, st.floats(min_value=10.0, max_value=1e4))
    def test_monotone_in_e_min(self, sprays, e_min):
        """A slower spray cadence (larger E(I_min)) means fewer estimated nodes."""
        now = max(sprays)
        fast = estimate_infected(sprays, now=now,
                                 mean_min_intermeeting=e_min, n_nodes=N)
        slow = estimate_infected(sprays, now=now,
                                 mean_min_intermeeting=e_min * 2, n_nodes=N)
        assert slow <= fast
