"""SdsrpParams validation."""

import pytest

from repro.core.params import SdsrpParams
from repro.errors import ConfigurationError


def test_defaults_are_paper_faithful():
    p = SdsrpParams()
    assert p.estimator == "distributed"
    assert p.priority_form == "closed"
    assert p.intermeeting_mode == "min"
    assert p.reject_rule == "own"
    assert p.gossip_drops is True
    assert p.extrapolate_spray_tree is False


@pytest.mark.parametrize(
    "kwargs",
    [
        {"estimator": "psychic"},
        {"priority_form": "cubic"},
        {"taylor_terms": 0},
        {"prior_intermeeting": 0.0},
        {"prior_weight": 0},
        {"reject_rule": "sometimes"},
        {"intermeeting_mode": "vibes"},
    ],
)
def test_rejects_bad_values(kwargs):
    with pytest.raises(ConfigurationError):
        SdsrpParams(**kwargs)


def test_frozen():
    p = SdsrpParams()
    with pytest.raises(AttributeError):
        p.taylor_terms = 3  # type: ignore[misc]
