"""Knapsack-based drop selection (the authors' EWSN companion strategy)."""

from __future__ import annotations

from repro.core.knapsack import KnapsackSdsrpPolicy
from repro.core.sdsrp import SdsrpShared
from repro.net.outcomes import ReceiveOutcome
from repro.units import megabytes
from tests.helpers import build_micro_world, make_message

ISOLATED = [(i * 900.0, 0.0) for i in range(10)]


def knapsack_world(buffer_bytes=megabytes(1.0)):
    shared = SdsrpShared.for_fleet(len(ISOLATED))

    def factory():
        return KnapsackSdsrpPolicy(shared=shared)

    return build_micro_world(
        points=ISOLATED, policy_factory=factory,
        buffer_bytes=buffer_bytes, area=(10_000.0, 1_000.0),
    )


class TestSelectVictims:
    def test_keeps_highest_density_subset(self):
        mw = knapsack_world()
        policy = mw.router(0).policy
        # Two small strong messages + one big weak one; capacity forces a
        # choice.  Sizes differ, which is where knapsack beats ranking.
        strong_a = make_message(msg_id="a", size=300_000, copies=8,
                                initial_copies=16, created_at=0.0)
        strong_b = make_message(msg_id="b", size=300_000, copies=8,
                                initial_copies=16, created_at=0.0)
        weak_big = make_message(msg_id="w", size=700_000, copies=1,
                                initial_copies=16, created_at=-4000.0,
                                ttl=6000.0,
                                spray_times=[-4000.0, -3500.0, -3000.0,
                                             -2500.0])
        accept, victims = policy.select_victims(
            [strong_a, weak_big], strong_b, capacity=800_000, now=10.0
        )
        # Keeping both strong smalls beats keeping the weak big one.
        assert accept is True
        assert [v.msg_id for v in victims] == ["w"]

    def test_rejects_weak_newcomer(self):
        mw = knapsack_world()
        policy = mw.router(0).policy
        strong = make_message(msg_id="s", size=900_000, copies=8,
                              initial_copies=16, created_at=0.0)
        weak = make_message(msg_id="nw", size=900_000, copies=1,
                            initial_copies=16, created_at=-4000.0,
                            ttl=6000.0,
                            spray_times=[-4000.0, -3000.0, -2000.0])
        accept, victims = policy.select_victims(
            [strong], weak, capacity=1_000_000, now=10.0
        )
        assert accept is False
        assert victims == []


class TestRouterIntegration:
    def test_overflow_uses_knapsack_path(self):
        mw = knapsack_world(buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        # Fill with a big stale message, then offer two fresh small ones.
        stale = make_message(msg_id="stale", source=1, destination=9,
                             size=megabytes(0.9), copies=1, initial_copies=16,
                             created_at=-4000.0, ttl=6000.0,
                             spray_times=[-4000.0, -3000.0, -2500.0])
        assert r.receive(stale, mw.nodes[1]) == ReceiveOutcome.ACCEPTED
        fresh = make_message(msg_id="fresh", source=1, destination=9,
                             size=megabytes(0.4), copies=8, initial_copies=16,
                             created_at=0.9)
        assert r.receive(fresh, mw.nodes[1]) == ReceiveOutcome.ACCEPTED
        assert "stale" not in mw.nodes[0].buffer
        assert "fresh" in mw.nodes[0].buffer

    def test_full_simulation_runs(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import random_waypoint_scenario, scale_scenario

        cfg = scale_scenario(
            random_waypoint_scenario(policy="sdsrp-knapsack", seed=2),
            node_factor=0.1, time_factor=0.05,
        )
        summary = run_scenario(cfg)
        assert summary.created > 0
