"""Global infection oracle: exact m/n/d from simulator events."""

from __future__ import annotations

from repro.core.oracle import GlobalInfectionOracle
from tests.helpers import build_micro_world, make_message


def chain_with_oracle():
    mw = build_micro_world(
        points=[(0.0, 0.0), (80.0, 0.0), (900.0, 900.0)],
    )
    oracle = GlobalInfectionOracle()
    oracle.subscribe(mw.sim)
    return mw, oracle


def test_created_message_has_source_holder_only():
    mw, oracle = chain_with_oracle()
    mw.sim.run(until=1.0)
    mw.router(0).create_message(
        make_message(source=0, destination=2, copies=8)
    )
    assert oracle.m_seen("M1") == 0
    assert oracle.n_holders("M1") == 1
    assert oracle.drop_count("M1") == 0


def test_relay_updates_seen_and_holders():
    mw, oracle = chain_with_oracle()
    mw.router(0).create_message(
        make_message(source=0, destination=2, copies=8)
    )
    mw.sim.run(until=30.0)  # one spray 0 -> 1 completes
    assert oracle.m_seen("M1") == 1
    assert oracle.n_holders("M1") == 2


def test_drop_decrements_holders():
    mw, oracle = chain_with_oracle()
    mw.sim.run(until=1.0)
    mw.router(0).create_message(
        make_message(source=0, destination=2, copies=8, ttl=5.0)
    )
    # The copy is pinned by the in-flight transfer past its expiry; the
    # drop lands when the transfer completes (~18 s in).
    mw.sim.run(until=25.0)
    assert oracle.drop_count("M1") >= 1
    # n floors at 1 for ranking purposes even when nobody holds it.
    assert oracle.n_holders("M1") == 1


def test_delivery_spends_sender_copy():
    mw, oracle = chain_with_oracle()
    mw.router(0).create_message(make_message(source=0, destination=1))
    mw.sim.run(until=30.0)
    assert oracle.m_seen("M1") == 1  # the destination saw it
    assert oracle.n_holders("M1") == 1  # floor; sender's copy was spent


def test_unknown_message_defaults():
    oracle = GlobalInfectionOracle()
    assert oracle.m_seen("ghost") == 0
    assert oracle.n_holders("ghost") == 1
    assert oracle.drop_count("ghost") == 0
