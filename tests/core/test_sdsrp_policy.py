"""SDSRP policy behaviour (Algorithm 1 glued to the estimators)."""

from __future__ import annotations

import pytest

from repro.core.params import SdsrpParams
from repro.core.sdsrp import SdsrpPolicy, SdsrpShared
from repro.errors import ConfigurationError
from repro.net.outcomes import ReceiveOutcome
from repro.units import megabytes
from tests.helpers import build_micro_world, make_message


def sdsrp_world(points, params: SdsrpParams | None = None, **kw):
    shared = SdsrpShared.for_fleet(len(points), params=params)

    def factory():
        return SdsrpPolicy(shared=shared)

    kw.setdefault("area", (10_000.0, 1_000.0))
    mw = build_micro_world(points=points, policy_factory=factory, **kw)
    return mw, shared


#: Two isolated nodes, but in a 10-node fleet context (N matters: the
#: Eq. 10 spray penalty scales with 1/(N-1), and N=2 with L=16 is
#: degenerate).  Nodes are 900 m apart: no links ever form.
ISOLATED = [(i * 900.0, 0.0) for i in range(10)]
ISOLATED_AREA = (10_000.0, 1_000.0)


class TestAttach:
    def test_policy_requires_attach_for_estimator(self):
        policy = SdsrpPolicy()
        with pytest.raises(ConfigurationError):
            _ = policy.estimator

    def test_oracle_mode_requires_oracle(self):
        params = SdsrpParams(estimator="oracle")
        with pytest.raises(ConfigurationError):
            sdsrp_world(ISOLATED, params=params)

    def test_params_via_shared_and_direct_conflict(self):
        shared = SdsrpShared.for_fleet(4)
        with pytest.raises(ConfigurationError):
            SdsrpPolicy(params=SdsrpParams(taylor_terms=3), shared=shared)


class TestPriorityRanking:
    def test_widely_seen_message_ranks_below_fresh(self):
        mw, _ = sdsrp_world(ISOLATED)
        policy = mw.router(0).policy
        now = 10.0
        fresh = make_message(msg_id="fresh", created_at=10.0, copies=16,
                             spray_times=[])
        # A message whose lineage sprayed long ago over many branches.
        seen = make_message(
            msg_id="seen", created_at=-9000.0, ttl=18000.0, copies=2,
            initial_copies=16, spray_times=[-9000.0, -6000.0, -3000.0],
        )
        # The fresh source copy: m=0 -> P(T)=0, positive utility.
        assert policy.drop_priority(fresh, now) > policy.drop_priority(seen, now)

    def test_expired_message_has_nonpositive_priority(self):
        mw, _ = sdsrp_world(ISOLATED)
        policy = mw.router(0).policy
        dead = make_message(msg_id="dead", created_at=0.0, ttl=10.0, copies=1,
                            initial_copies=16)
        assert policy.drop_priority(dead, 100.0) <= 0.0

    def test_taylor_form_ranks_like_closed_form(self):
        mw_c, _ = sdsrp_world(ISOLATED)
        mw_t, _ = sdsrp_world(
            ISOLATED, params=SdsrpParams(priority_form="taylor",
                                         taylor_terms=32),
        )
        closed = mw_c.router(0).policy
        taylor = mw_t.router(0).policy
        msgs = [
            make_message(msg_id="a", copies=16, created_at=0.0),
            make_message(msg_id="b", copies=2, initial_copies=16,
                         created_at=0.0, spray_times=[0.0, 100.0, 200.0]),
            make_message(msg_id="c", copies=1, initial_copies=16,
                         created_at=0.0, spray_times=[0.0, 50.0, 99.0, 150.0]),
        ]
        now = 300.0
        order_c = sorted(msgs, key=lambda m: closed.priority(m, now))
        order_t = sorted(msgs, key=lambda m: taylor.priority(m, now))
        assert [m.msg_id for m in order_c] == [m.msg_id for m in order_t]


class TestDroppedListIntegration:
    def test_overflow_drop_recorded_and_rejected_on_return(self):
        mw, _ = sdsrp_world(ISOLATED, buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        policy = r.policy
        victim = make_message(msg_id="victim", source=1, destination=9,
                              copies=1, initial_copies=16,
                              created_at=-5000.0, ttl=18000.0,
                              spray_times=[-5000.0, -4000.0, -3000.0, -2000.0])
        assert r.receive(victim, mw.nodes[1]) == ReceiveOutcome.ACCEPTED
        # Fill with two strong newcomers; the stale one gets evicted.
        for i in (1, 2):
            out = r.receive(
                make_message(msg_id=f"fresh{i}", source=1, destination=9,
                             copies=8, initial_copies=16, created_at=0.9),
                mw.nodes[1],
            )
            assert out == ReceiveOutcome.ACCEPTED
        assert policy.dropped.has_dropped("victim")
        # The node now refuses to take "victim" again (Fig. 5 reject rule).
        again = make_message(msg_id="victim", source=1, destination=9,
                             copies=1, initial_copies=16,
                             created_at=-5000.0, ttl=18000.0,
                             spray_times=[-5000.0])
        assert r.receive(again, mw.nodes[1]) == ReceiveOutcome.REJECTED_POLICY

    def test_ttl_drops_not_gossiped(self):
        mw, _ = sdsrp_world(ISOLATED)
        mw.sim.run(until=1.0)
        r = mw.router(0)
        r.create_message(make_message(source=0, destination=1, ttl=5.0))
        mw.sim.run(until=10.0)
        assert not r.policy.dropped.has_dropped("M1")

    def test_reject_rule_off_accepts_previously_dropped(self):
        mw, _ = sdsrp_world(
            ISOLATED, params=SdsrpParams(reject_rule="off"),
            buffer_bytes=megabytes(1.0),
        )
        mw.sim.run(until=1.0)
        r = mw.router(0)
        r.policy.dropped.record_drop("M9", now=0.5, expires_at=1e5)
        msg = make_message(msg_id="M9", source=1, destination=9)
        assert r.receive(msg, mw.nodes[1]) == ReceiveOutcome.ACCEPTED


class TestGossipOnContact:
    def test_records_merge_when_nodes_meet(self):
        mw, _ = sdsrp_world([(0.0, 0.0), (80.0, 0.0)])
        p0 = mw.router(0).policy
        p1 = mw.router(1).policy
        p0.dropped.record_drop("Mx", now=0.0, expires_at=1e6)
        mw.sim.run(until=2.0)  # link comes up -> gossip fires
        assert p1.dropped.count_drops("Mx") == 1

    def test_estimator_fed_by_contacts(self):
        mw, shared = sdsrp_world([(0.0, 0.0), (80.0, 0.0)])
        mw.sim.run(until=2.0)
        # One contact started; Def. 2 estimator has armed state but the mean
        # still equals the prior (no complete gap yet).
        assert shared.estimator.mean_intermeeting() > 0


class TestOracleMode:
    def test_oracle_mode_uses_exact_counts(self):
        from repro.core.oracle import GlobalInfectionOracle

        params = SdsrpParams(estimator="oracle")
        oracle = GlobalInfectionOracle()
        shared = SdsrpShared.for_fleet(2, params=params, oracle=oracle)

        def factory():
            return SdsrpPolicy(shared=shared)

        mw = build_micro_world(points=ISOLATED, policy_factory=factory)
        oracle.subscribe(mw.sim)
        mw.sim.run(until=1.0)
        r = mw.router(0)
        r.create_message(make_message(source=0, destination=1, copies=8))
        m, n = r.policy._infection(mw.nodes[0].buffer.get("M1"), mw.sim.now)
        assert (m, n) == (0, 1)


class TestSharedFactory:
    def test_for_fleet_builds_min_estimator_by_default(self):
        from repro.core.intermeeting import MinIntermeetingEstimator

        shared = SdsrpShared.for_fleet(20)
        assert isinstance(shared.estimator, MinIntermeetingEstimator)

    def test_for_fleet_pair_mode(self):
        from repro.core.intermeeting import PairIntermeetingEstimator

        shared = SdsrpShared.for_fleet(
            20, params=SdsrpParams(intermeeting_mode="pair")
        )
        assert isinstance(shared.estimator, PairIntermeetingEstimator)

    def test_policies_without_shared_build_private_estimators(self):
        mw1, _ = sdsrp_world(ISOLATED)
        p_shared_a = mw1.router(0).policy
        p_shared_b = mw1.router(1).policy
        assert p_shared_a.estimator is p_shared_b.estimator

        def solo_factory():
            return SdsrpPolicy()

        mw2 = build_micro_world(points=ISOLATED, policy_factory=solo_factory,
                                area=(10_000.0, 1_000.0))
        assert (mw2.router(0).policy.estimator
                is not mw2.router(1).policy.estimator)
