"""ShardSupervisor failure policy, driven without real processes.

Clock, sleep and spawn are all injected, so heartbeat deadlines, seeded
backoff pacing and quarantine writes are exercised deterministically — the
same idiom as the service supervisor tests.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import backoff_delays
from repro.rng import derive_seed
from tests.obs.conftest import tiny_config


class FakeProcess:
    def __init__(self):
        self.pid = None  # discard() must not try to SIGKILL a fake pid
        self.joined = False

    def is_alive(self):
        return False

    def join(self, timeout=None):
        self.joined = True


class FakeConn:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


def make_supervisor(tmp_path, config=None, **kwargs):
    from repro.shard.supervisor import ShardSupervisor

    spawned = []

    def spawn_fn(cfg, shard_id, incarnation, snapshot_path, kill_at):
        spawned.append((shard_id, incarnation, snapshot_path, kill_at))
        return FakeProcess(), FakeConn()

    kwargs.setdefault("spawn_fn", spawn_fn)
    kwargs.setdefault("sleep", lambda _d: None)
    sup = ShardSupervisor(
        config if config is not None else tiny_config(shard_count=2),
        snapshot_dir=tmp_path,
        **kwargs,
    )
    return sup, spawned


class TestLifecycle:
    def test_spawn_tracks_incarnations_and_stats(self, tmp_path):
        sup, spawned = make_supervisor(tmp_path)
        h0 = sup.spawn(0, (0,))
        h1 = sup.spawn(1, (1,))
        assert (h0.incarnation, h1.incarnation) == (0, 0)
        sup.discard(0)
        h0b = sup.spawn(0, (0,))
        assert h0b.incarnation == 1
        assert sup.stats.spawns == 3 and sup.stats.respawns == 1
        assert [s[:2] for s in spawned] == [(0, 0), (1, 0), (0, 1)]
        assert sup.live_ids() == [0, 1]

    def test_discard_closes_conn_and_is_idempotent(self, tmp_path):
        sup, _ = make_supervisor(tmp_path)
        handle = sup.spawn(0, (0,))
        assert sup.discard(0) is handle
        assert handle.conn.closed and handle.process.joined
        assert sup.discard(0) is None

    def test_shutdown_discards_everything(self, tmp_path):
        sup, _ = make_supervisor(tmp_path)
        sup.spawn(0, (0,))
        sup.spawn(1, (1,))
        sup.shutdown()
        assert sup.live_ids() == []

    def test_validation(self, tmp_path):
        from repro.shard.supervisor import ShardSupervisor

        with pytest.raises(ConfigurationError):
            ShardSupervisor(tiny_config(), snapshot_dir=tmp_path,
                            barrier_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(tiny_config(), snapshot_dir=tmp_path,
                            max_respawns=-1)


class TestDeadlines:
    def test_overdue_is_pure_clock_arithmetic(self, tmp_path):
        clock = FakeClock()
        sup, _ = make_supervisor(tmp_path, clock=clock, barrier_timeout=30.0)
        sup.spawn(0, (0,))
        assert not sup.overdue(0)
        clock.now += 30.0
        assert not sup.overdue(0), "deadline is strict: exactly 30s is alive"
        clock.now += 0.1
        assert sup.overdue(0)

    def test_heartbeats_refresh_the_deadline(self, tmp_path):
        clock = FakeClock()
        sup, _ = make_supervisor(tmp_path, clock=clock, barrier_timeout=30.0)
        sup.spawn(0, (0,))
        clock.now += 29.0
        sup.note(0)  # slow-but-alive worker heartbeats just in time
        clock.now += 29.0
        assert not sup.overdue(0)
        clock.now += 2.0
        assert sup.overdue(0)

    def test_unknown_shard_is_never_overdue(self, tmp_path):
        sup, _ = make_supervisor(tmp_path)
        assert not sup.overdue(5)
        sup.note(5)  # no-op, not a KeyError


class TestRespawnBudget:
    def test_backoff_schedule_is_the_seeded_sweep_schedule(self, tmp_path):
        config = tiny_config(shard_count=2)
        sup, _ = make_supervisor(
            tmp_path, config=config, max_respawns=3,
            backoff_base=0.05, backoff_cap=1.0,
        )
        for shard_id in (0, 1):
            expected = backoff_delays(
                derive_seed(config.seed, "shard", shard_id), 3,
                base=0.05, cap=1.0,
            )
            assert sup.backoff_schedule(shard_id) == expected
        assert sup.backoff_schedule(0) != sup.backoff_schedule(1)

    def test_consume_walks_the_schedule_then_raises(self, tmp_path):
        sup, _ = make_supervisor(tmp_path, max_respawns=2)
        schedule = sup.backoff_schedule(0)
        assert sup.respawns_left(0) == 2
        assert sup.consume_respawn(0) == schedule[0]
        assert sup.consume_respawn(0) == schedule[1]
        assert sup.respawns_left(0) == 0
        with pytest.raises(ConfigurationError):
            sup.consume_respawn(0)
        assert sup.respawns_left(1) == 2, "budgets are per-shard"

    def test_pace_uses_the_injected_sleep(self, tmp_path):
        slept = []
        sup, _ = make_supervisor(tmp_path, sleep=slept.append)
        sup.pace(0.25)
        sup.pace(0.0)
        assert slept == [0.25]


class TestChaosKillSwitch:
    def test_kill_at_targets_first_incarnation_of_one_shard(self, tmp_path):
        config = tiny_config(shard_count=2, shard_kill=(1, 5))
        sup, spawned = make_supervisor(tmp_path, config=config)
        sup.spawn(0, (0,))
        sup.spawn(1, (1,))
        sup.discard(1)
        sup.spawn(1, (1,))  # the replacement must not inherit the bomb
        assert [(s[0], s[1], s[3]) for s in spawned] == [
            (0, 0, None), (1, 0, 5), (1, 1, None),
        ]


class TestQuarantine:
    def test_writes_a_chaos_corpus_reproducer(self, tmp_path):
        from repro.chaos.oracles import ORACLE_CRASH

        qdir = tmp_path / "corpus"
        config = tiny_config(shard_count=2)
        sup, _ = make_supervisor(tmp_path, config=config, quarantine_dir=qdir)
        sup.consume_respawn(0)
        path = sup.quarantine(0, "worker died mid-barrier")
        assert sup.stats.quarantined == 1
        entry = json.loads((qdir / path.split("/")[-1]).read_text())
        assert entry["failure"]["oracle"] == ORACLE_CRASH
        assert entry["failure"]["invariant"] == "ShardWorkerDeath"
        assert "1 respawns" in entry["failure"]["detail"]
        assert entry["config"]["shard_count"] == 2

    def test_without_a_dir_it_only_counts(self, tmp_path):
        sup, _ = make_supervisor(tmp_path)
        assert sup.quarantine(0, "x") == ""
        assert sup.stats.quarantined == 1
