"""StripePlan geometry and pair-ownership invariants.

The byte-identity of sharded runs rests on three properties pinned here:
stripe spans tile the map exactly, every pair is owned by exactly one
stripe, and the union of owned pairs over *any* grouping of stripes equals
the full detector output (so folds and degradation cannot change results).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.shard.partition import StripePlan
from repro.world.contacts import make_detector

AREA = (1000.0, 600.0)
RADIUS = 45.0


def positions_for(seed: int, n: int = 60) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pos = rng.uniform((0.0, 0.0), AREA, size=(n, 2))
    # Park some nodes exactly on stripe edges to exercise half-open
    # boundaries, and some just outside the map (clamped ownership).
    pos[0] = (250.0, 10.0)
    pos[1] = (500.0, 10.0)
    pos[2] = (-5.0, 10.0)
    pos[3] = (AREA[0] + 5.0, 10.0)
    return pos


def full_pairs(positions: np.ndarray) -> set[tuple[int, int]]:
    return make_detector(len(positions), "brute").pairs(positions, RADIUS)


class TestGeometry:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7])
    def test_spans_tile_the_width(self, count):
        plan = StripePlan.for_area(AREA, count)
        assert len(plan.spans) == count
        assert plan.spans[0][0] == 0.0
        assert plan.spans[-1][1] == AREA[0]
        for (_, hi), (lo, _) in zip(plan.spans, plan.spans[1:]):
            assert hi == lo, "spans must be contiguous with no float gap"

    def test_owners_clamp_outside_the_map(self):
        plan = StripePlan.for_area(AREA, 4)
        owners = plan.owners(np.asarray([-10.0, 0.0, 999.9, 1000.0, 1010.0]))
        assert owners.tolist() == [0, 0, 3, 3, 3]

    def test_every_midpoint_owns_exactly_one_stripe(self):
        plan = StripePlan.for_area(AREA, 3)
        # An internal edge belongs to the span it opens (half-open spans).
        edge = plan.spans[1][0]
        assert plan.owners(np.asarray([edge])).tolist() == [1]
        assert plan.owners(np.asarray([np.nextafter(edge, 0.0)])).tolist() == [0]

    def test_candidate_indices_validate(self):
        plan = StripePlan.for_area(AREA, 2)
        pos = positions_for(0)
        with pytest.raises(ConfigurationError):
            plan.candidate_indices(pos, (0,), 0.0)
        with pytest.raises(ConfigurationError):
            plan.candidate_indices(pos, (2,), RADIUS)


class TestOwnership:
    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_singleton_stripes_partition_the_full_pair_set(self, count, seed):
        plan = StripePlan.for_area(AREA, count)
        pos = positions_for(seed)
        detector = make_detector(len(pos), "brute")
        per_stripe = [
            set(plan.owned_pairs(pos, RADIUS, detector, (s,)))
            for s in range(count)
        ]
        union: set[tuple[int, int]] = set()
        for owned in per_stripe:
            assert union.isdisjoint(owned), "a pair has two owners"
            union |= owned
        assert union == full_pairs(pos)

    def test_grouped_stripes_equal_their_singleton_union(self):
        """Folding stripes into one computer changes nothing — the exact
        property degradation relies on."""
        plan = StripePlan.for_area(AREA, 4)
        pos = positions_for(7)
        detector = make_detector(len(pos), "brute")
        grouped = set(plan.owned_pairs(pos, RADIUS, detector, (0, 2, 3)))
        singles = (
            set(plan.owned_pairs(pos, RADIUS, detector, (0,)))
            | set(plan.owned_pairs(pos, RADIUS, detector, (2,)))
            | set(plan.owned_pairs(pos, RADIUS, detector, (3,)))
        )
        assert grouped == singles

    @pytest.mark.parametrize("kind", ["brute", "grid", "kdtree"])
    def test_detector_kinds_agree_on_owned_pairs(self, kind):
        plan = StripePlan.for_area(AREA, 3)
        pos = positions_for(11)
        detector = make_detector(len(pos), kind)
        union: set[tuple[int, int]] = set()
        for s in range(3):
            union |= set(plan.owned_pairs(pos, RADIUS, detector, (s,)))
        assert union == full_pairs(pos)

    def test_candidate_window_is_a_superset_of_owned_endpoints(self):
        plan = StripePlan.for_area(AREA, 4)
        pos = positions_for(13)
        detector = make_detector(len(pos), "brute")
        for s in range(4):
            candidates = set(plan.candidate_indices(pos, (s,), RADIUS).tolist())
            for i, j in plan.owned_pairs(pos, RADIUS, detector, (s,)):
                assert i in candidates and j in candidates

    def test_empty_assignment_owns_nothing(self):
        plan = StripePlan.for_area(AREA, 2)
        pos = positions_for(17)
        assert plan.owned_pairs(pos, RADIUS, make_detector(len(pos)), ()) == []

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 6))
    def test_partition_property_holds_for_random_fleets(self, seed, count):
        plan = StripePlan.for_area(AREA, count)
        pos = positions_for(seed, n=30)
        detector = make_detector(len(pos), "brute")
        union: set[tuple[int, int]] = set()
        total = 0
        for s in range(count):
            owned = plan.owned_pairs(pos, RADIUS, detector, (s,))
            total += len(owned)
            union |= set(owned)
        assert union == full_pairs(pos)
        assert total == len(union), "a pair has two owners"
