"""Differential byte-identity: sharded runs replay the single-process bytes.

The shard engine exists under the same contract as the vector backend:
``shard_count ∈ {1, 2, 4}`` must produce identical event traces, metric
time series and summaries (modulo wall-clock fields) for the same seeded
scenario.  Cells are shortened to 300 simulated seconds because every
sharded run pays ~2s of spawn-context worker startup; the barrier protocol
itself is exercised once per tick regardless of horizon.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ROUTER_KINDS, ScenarioConfig
from repro.errors import ConfigurationError
from repro.policies.registry import available_policies
from repro.shard.world import ShardedWorld
from tests.obs.conftest import tiny_config
from tests.obs.test_determinism import assert_identical
from tests.vector.test_equivalence import stable_summary


def observed(**overrides) -> ScenarioConfig:
    return tiny_config(
        obs_interval=60.0, trace_capacity=500_000, sim_time=300.0, **overrides
    )


def shard_run(config: ScenarioConfig, shard_count: int) -> tuple[str, str, str]:
    """(trace JSONL, time-series JSON, stable summary) for one shard count."""
    built = build_scenario(config.replace(shard_count=shard_count))
    summary = run_built(built)
    assert built.trace is not None and built.timeseries is not None
    if shard_count > 1:
        assert isinstance(built.world, ShardedWorld)
        stats = built.world.coordinator.stats
        # Anti-vacuity: the workers really ran the whole horizon — no cell
        # may silently pass by degrading to the inline fallback.
        assert stats["spawns"] == shard_count
        assert stats["folds"] == 0 and stats["quarantined"] == 0
        assert stats["digest_checks"] > 0
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
        stable_summary(summary),
    )


def assert_shards_agree(
    name: str, config: ScenarioConfig, counts: tuple[int, ...] = (2,)
) -> None:
    single = shard_run(config, 1)
    assert single[0], f"{name}: empty trace; the cell is vacuous"
    for count in counts:
        sharded = shard_run(config, count)
        assert_identical(
            f"{name}-shard{count}-trace-timeseries", [single[:2], sharded[:2]]
        )
        assert sharded[2] == single[2], f"{name}: summary differs at {count}"


class TestRouterAxis:
    @pytest.mark.parametrize("router", ROUTER_KINDS)
    def test_sharded_matches_single_process(self, router):
        assert_shards_agree(
            f"router-{router}", observed(router=router, policy="sdsrp")
        )


class TestPolicyAxis:
    @pytest.mark.parametrize("policy", available_policies())
    def test_sharded_matches_single_process(self, policy):
        assert_shards_agree(
            f"policy-{policy}", observed(router="snw", policy=policy)
        )


class TestMobilityAxis:
    @pytest.mark.parametrize(
        "mobility", ["rwp", "random-walk", "random-direction", "stationary"]
    )
    def test_sharded_matches_single_process(self, mobility):
        assert_shards_agree(
            f"mobility-{mobility}", observed(mobility=mobility, policy="gbsd")
        )


class TestShardCountAxis:
    def test_four_shards_match(self):
        """The acceptance triple {1, 2, 4} on the default cell."""
        assert_shards_agree("default", observed(), counts=(2, 4))

    def test_grid_contact_backend_matches(self):
        """Workers inherit the configured detector kind, not a fixed one."""
        assert_shards_agree("grid", observed(contact_backend="grid"))

    def test_seeds_differ(self):
        """Anti-vacuity: different seeds produce different sharded traces."""
        a = shard_run(observed(seed=1), 2)
        b = shard_run(observed(seed=2), 2)
        assert a[0] != b[0]


class TestConfigValidation:
    def test_shard_count_requires_scalar_engine(self):
        with pytest.raises(ConfigurationError):
            tiny_config(shard_count=2, engine_backend="vector")

    def test_shard_kill_requires_sharding(self):
        with pytest.raises(ConfigurationError):
            tiny_config(shard_kill=(0, 5))
        with pytest.raises(ConfigurationError):
            tiny_config(shard_count=2, shard_kill=(2, 5))
        with pytest.raises(ConfigurationError):
            tiny_config(shard_count=2, shard_kill=(0, 0))
