"""Crash recovery and graceful degradation stay byte-identical.

Every scenario here kills (or refuses to respawn) shard workers mid-run and
asserts the surviving run still reproduces the uninterrupted single-process
bytes — the core robustness claim of docs/sharding.md.  The deterministic
``shard_kill`` config fault drives both recovery flavours (snapshot +
replay after a rolling snapshot exists, full state push before one does);
an OS-level SIGKILL from a helper thread covers the nondeterministic
arrival case; injected always-failing spawns force quarantine + fold.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ScenarioConfig
from repro.shard.coordinator import ShardCoordinator
from repro.shard.supervisor import _spawn_worker
from tests.obs.conftest import tiny_config
from tests.obs.test_determinism import assert_identical
from tests.vector.test_equivalence import stable_summary

#: Barriers between rolling snapshots in these runs (kept small so a kill
#: after the first snapshot still happens early in the 300s horizon).
SNAP_EVERY = 40


def observed(**overrides) -> ScenarioConfig:
    return tiny_config(
        obs_interval=60.0, trace_capacity=500_000, sim_time=300.0, **overrides
    )


def run_observed(config, *, coordinator_kwargs=None, mid_run=None):
    """Run one scenario; returns ((trace, timeseries, summary), stats).

    ``coordinator_kwargs`` swaps in a custom-configured coordinator (the
    runner builds one with defaults); ``mid_run`` starts a thread given the
    coordinator, for OS-level fault injection while the run is in flight.
    """
    built = build_scenario(config)
    coord = getattr(built.world, "coordinator", None)
    if coordinator_kwargs:
        replacement = ShardCoordinator(config, **coordinator_kwargs)
        replacement.attach(coord._mobility, coord._stream)
        coord.close()
        built.world.coordinator = coord = replacement
    thread = None
    if mid_run is not None:
        thread = threading.Thread(target=mid_run, args=(coord,), daemon=True)
        thread.start()
    summary = run_built(built)
    if thread is not None:
        thread.join(timeout=30.0)
    stats = coord.stats if coord is not None else None
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
        stable_summary(summary),
    ), stats


def assert_matches_single_process(name, outputs, reference=None):
    if reference is None:
        reference, _ = run_observed(observed())
    assert_identical(f"{name}-trace-timeseries", [reference[:2], outputs[:2]])
    assert outputs[2] == reference[2], f"{name}: summary differs"
    return reference


def refuse_respawns(config, shard_id, incarnation, snapshot_path, kill_at):
    """Spawn that works once per shard and then permanently fails."""
    if incarnation > 0:
        raise OSError("no process slots left")
    return _spawn_worker(config, shard_id, incarnation, snapshot_path, kill_at)


def refuse_all_spawns(config, shard_id, incarnation, snapshot_path, kill_at):
    raise OSError("fork bomb protection engaged")


class TestScriptedCrashes:
    def test_kill_after_snapshot_recovers_from_snapshot(self):
        """Death at barrier 100 with snapshots every 40: the replacement
        restores barrier-80 state and replays exact recorded times."""
        outputs, stats = run_observed(
            observed(shard_count=2, shard_kill=(0, 100)),
            coordinator_kwargs={"snap_every": SNAP_EVERY},
        )
        assert stats["worker_deaths"] == 1
        assert stats["snapshot_recoveries"] == 1
        assert stats["push_recoveries"] == 0
        assert stats["folds"] == 0
        assert_matches_single_process("snapshot-recovery", outputs)

    def test_kill_before_first_snapshot_recovers_from_push(self):
        """Death at barrier 5, before any snapshot: the coordinator pushes
        its own live replica state instead."""
        outputs, stats = run_observed(
            observed(shard_count=2, shard_kill=(0, 5)),
            coordinator_kwargs={"snap_every": SNAP_EVERY},
        )
        assert stats["worker_deaths"] == 1
        assert stats["push_recoveries"] == 1
        assert stats["snapshot_recoveries"] == 0
        assert_matches_single_process("push-recovery", outputs)

    def test_both_recovery_runs_replay_each_other(self):
        """Anti-flake determinism: the same scripted crash twice produces
        the same recovery path and the same bytes."""
        a, _ = run_observed(observed(shard_count=2, shard_kill=(1, 50)))
        b, _ = run_observed(observed(shard_count=2, shard_kill=(1, 50)))
        assert a == b


class TestExternalKill:
    def test_sigkilled_worker_recovers_byte_identically(self):
        """An OS-level SIGKILL at an arbitrary point mid-run (the ISSUE's
        smoke scenario) — whichever recovery flavour fires, bytes match."""

        def sigkill_shard_zero(coord):
            for _ in range(1000):
                handle = coord.supervisor.handles.get(0)
                if handle is not None and getattr(handle.process, "pid", None):
                    time.sleep(0.3)  # land mid-run, past the init handshake
                    try:
                        os.kill(handle.process.pid, signal.SIGKILL)
                    except (ProcessLookupError, PermissionError):
                        pass
                    return
                time.sleep(0.01)

        outputs, stats = run_observed(
            observed(shard_count=2), mid_run=sigkill_shard_zero
        )
        assert stats["respawns"] >= 1
        assert stats["snapshot_recoveries"] + stats["push_recoveries"] >= 1
        assert_matches_single_process("sigkill-recovery", outputs)


class TestDegradation:
    def test_exhausted_budget_folds_into_survivor(self, tmp_path):
        """Shard 0 dies and can never come back: its stripes fold into the
        survivor, the poison region is quarantined as a chaos reproducer,
        and the bytes still match."""
        qdir = tmp_path / "corpus"
        outputs, stats = run_observed(
            observed(shard_count=2, shard_kill=(0, 60)),
            coordinator_kwargs={
                "max_respawns": 2,
                "quarantine_dir": qdir,
                "spawn_fn": refuse_respawns,
                "sleep": lambda _d: None,  # skip real backoff waits
            },
        )
        assert stats["folds"] == 1 and stats["quarantined"] == 1
        entries = list(qdir.glob("*.json"))
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["failure"]["invariant"] == "ShardWorkerDeath"
        assert entry["config"]["shard_kill"] == [0, 60]
        assert_matches_single_process("fold-degradation", outputs)

    def test_no_workers_at_all_degrades_to_inline(self):
        """Every spawn fails from the start: all stripes fold into the
        coordinator's inline path — a de facto single-process run."""
        outputs, stats = run_observed(
            observed(shard_count=2),
            coordinator_kwargs={
                "max_respawns": 1,
                "spawn_fn": refuse_all_spawns,
                "sleep": lambda _d: None,
            },
        )
        assert stats["folds"] == 2 and stats["quarantined"] == 2
        assert stats["spawns"] == 0
        assert_matches_single_process("inline-degradation", outputs)
