"""Clock monotonicity."""

import pytest

from repro.engine.clock import Clock
from repro.errors import SimulationError


def test_starts_at_given_time():
    assert Clock().now == 0.0
    assert Clock(5.5).now == 5.5


def test_advances_forward():
    clock = Clock()
    clock.advance_to(10.0)
    assert clock.now == 10.0
    clock.advance_to(10.0)  # same time is allowed
    assert clock.now == 10.0


def test_rejects_backwards_motion():
    clock = Clock(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(4.999)
