"""Listener registry semantics."""

import pytest

from repro.engine.hooks import ListenerRegistry


def test_emit_calls_listeners_in_order():
    reg = ListenerRegistry()
    calls = []
    reg.subscribe("topic", lambda: calls.append("a"))
    reg.subscribe("topic", lambda: calls.append("b"))
    reg.emit("topic")
    assert calls == ["a", "b"]


def test_emit_passes_args():
    reg = ListenerRegistry()
    got = []
    reg.subscribe("t", lambda *a: got.append(a))
    reg.emit("t", 1, "x")
    assert got == [(1, "x")]


def test_emit_unknown_topic_is_noop():
    ListenerRegistry().emit("nothing", 1, 2)


def test_unsubscribe_removes_listener():
    reg = ListenerRegistry()
    calls = []
    listener = lambda: calls.append(1)  # noqa: E731
    reg.subscribe("t", listener)
    reg.unsubscribe("t", listener)
    reg.emit("t")
    assert calls == []
    assert not reg.has_listeners("t")


def test_unsubscribe_unknown_listener_raises():
    reg = ListenerRegistry()
    with pytest.raises(ValueError):
        reg.unsubscribe("t", lambda: None)


def test_duplicate_subscription_fires_twice():
    reg = ListenerRegistry()
    calls = []
    listener = lambda: calls.append(1)  # noqa: E731
    reg.subscribe("t", listener)
    reg.subscribe("t", listener)
    reg.emit("t")
    assert calls == [1, 1]


def test_listener_exception_propagates():
    reg = ListenerRegistry()

    def boom():
        raise RuntimeError("broken listener")

    reg.subscribe("t", boom)
    with pytest.raises(RuntimeError, match="broken listener"):
        reg.emit("t")
