"""Simulator loop: scheduling APIs, horizon, slicing, stop."""

from __future__ import annotations

import pytest

from repro.engine.simulator import Simulator
from repro.errors import SchedulingError


class TestScheduling:
    def test_schedule_at_and_run(self):
        sim = Simulator(end_time=100.0)
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.schedule_at(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0, 5.0]
        assert sim.now == 100.0

    def test_schedule_in_uses_relative_delay(self):
        sim = Simulator(end_time=100.0)
        fired = []
        sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [15.0]

    def test_rejects_past_scheduling(self):
        sim = Simulator(end_time=100.0)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule_in(-1.0, lambda: None)

    def test_rejects_nonpositive_end_time(self):
        with pytest.raises(SchedulingError):
            Simulator(end_time=0.0)

    def test_events_past_horizon_do_not_fire(self):
        sim = Simulator(end_time=10.0)
        fired = []
        sim.schedule_at(20.0, lambda: fired.append("late"))
        sim.run()
        assert fired == []
        assert sim.now == 10.0


class TestRecurring:
    def test_schedule_every_fires_until_horizon(self):
        sim = Simulator(end_time=10.0)
        fired = []
        sim.schedule_every(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_schedule_every_with_start_offset(self):
        sim = Simulator(end_time=10.0)
        fired = []
        sim.schedule_every(3.0, lambda: fired.append(sim.now), start=1.0)
        sim.run()
        assert fired == [1.0, 4.0, 7.0, 10.0]

    def test_rejects_nonpositive_interval(self):
        sim = Simulator(end_time=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule_every(0.0, lambda: None)


class TestRunControl:
    def test_run_in_slices(self):
        sim = Simulator(end_time=100.0)
        fired = []
        for t in (10.0, 30.0, 60.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run(until=20.0)
        assert fired == [10.0]
        assert sim.now == 20.0
        sim.run(until=70.0)
        assert fired == [10.0, 30.0, 60.0]

    def test_stop_halts_after_current_event(self):
        sim = Simulator(end_time=100.0)
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        # A subsequent run() resumes.
        sim.run()
        assert fired == [1, 2]

    def test_stop_freezes_clock_mid_run(self):
        # stop() must leave the clock at the stopping event's time, not
        # advance it to the horizon — crash-safe sweeps rely on sim.now
        # reflecting how far a halted run actually got.
        sim = Simulator(end_time=100.0)
        sim.schedule_at(7.0, sim.stop)
        sim.schedule_at(50.0, lambda: None)
        sim.run()
        assert sim.now == 7.0
        sim.run()
        assert sim.now == 100.0

    def test_events_processed_counter(self):
        sim = Simulator(end_time=10.0)
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_cancelled_event_not_processed(self):
        sim = Simulator(end_time=10.0)
        event = sim.schedule_at(5.0, lambda: None)
        sim.queue.cancel(event)
        sim.run()
        assert sim.events_processed == 0

    def test_events_scheduled_during_run_fire_same_run(self):
        sim = Simulator(end_time=10.0)
        fired = []
        sim.schedule_at(1.0, lambda: sim.schedule_at(1.0, lambda: fired.append("nested")))
        sim.run()
        assert fired == ["nested"]


class TestRecurringFailure:
    def test_raising_callback_stops_its_recurrence(self):
        sim = Simulator(end_time=10.0)
        fired = []

        def boom():
            fired.append(sim.now)
            raise RuntimeError("tick exploded")

        sim.schedule_every(2.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        # The failure propagated out of run(); the event was not re-armed.
        assert fired == [0.0]
        sim.run()  # resumable; nothing further fires
        assert fired == [0.0]
