"""Event queue ordering, cancellation and edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.events import (
    PRIORITY_NORMAL,
    PRIORITY_REPORT,
    PRIORITY_WORLD,
    EventQueue,
)
from repro.errors import SchedulingError


def drain(queue: EventQueue) -> list:
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append(event)


class TestScheduling:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        for t in (5.0, 1.0, 3.0):
            q.schedule(t, fired.append, t)
        for event in drain(q):
            event.callback(*event.args)
        assert fired == [1.0, 3.0, 5.0]

    def test_equal_time_fifo_order(self):
        q = EventQueue()
        for label in "abc":
            q.schedule(7.0, lambda: None)
        events = drain(q)
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None, priority=PRIORITY_REPORT)
        q.schedule(1.0, lambda: None, priority=PRIORITY_WORLD)
        q.schedule(1.0, lambda: None, priority=PRIORITY_NORMAL)
        priorities = [e.priority for e in drain(q)]
        assert priorities == [PRIORITY_WORLD, PRIORITY_NORMAL, PRIORITY_REPORT]

    def test_rejects_nan_and_inf_times(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.schedule(float("nan"), lambda: None)
        with pytest.raises(SchedulingError):
            q.schedule(float("inf"), lambda: None)

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0
        assert not q

    def test_args_are_passed(self):
        q = EventQueue()
        got = []
        q.schedule(1.0, lambda *a: got.extend(a), 1, "x")
        event = q.pop()
        event.callback(*event.args)
        assert got == [1, "x"]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        keep = q.schedule(1.0, lambda: None)
        kill = q.schedule(0.5, lambda: None)
        q.cancel(kill)
        events = drain(q)
        assert events == [keep]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        head = q.schedule(0.5, lambda: None)
        q.schedule(2.0, lambda: None)
        q.cancel(head)
        assert q.peek_time() == 2.0

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None


class TestPropertyOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_order_is_sorted_by_time(self, times):
        q = EventQueue()
        for t in times:
            q.schedule(t, lambda: None)
        popped = [e.time for e in drain(q)]
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.integers(min_value=-10, max_value=10),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_pop_order_respects_time_then_priority(self, items):
        q = EventQueue()
        for t, p in items:
            q.schedule(t, lambda: None, priority=p)
        popped = [(e.time, e.priority, e.seq) for e in drain(q)]
        assert popped == sorted(popped)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=40),
        st.data(),
    )
    def test_cancellation_removes_exactly_the_cancelled(self, times, data):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in times]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(events) - 1))
        )
        for idx in to_cancel:
            q.cancel(events[idx])
        survivors = drain(q)
        expected = {id(e) for i, e in enumerate(events) if i not in to_cancel}
        assert {id(e) for e in survivors} == expected
