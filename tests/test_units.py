"""Unit conversion helpers."""

import pytest

from repro import units


def test_time():
    assert units.minutes(300) == 18000.0
    assert units.hours(2) == 7200.0


def test_sizes():
    assert units.megabytes(1) == 1024 * 1024
    assert units.megabytes(2.5) == int(2.5 * 1024 * 1024)
    assert units.kilobytes(4) == 4096


def test_bandwidth():
    assert units.kbps(250) == pytest.approx(31250.0)
    assert units.mbps(1) == pytest.approx(125000.0)
    assert units.kBps(10) == pytest.approx(10_000.0)


def test_formatting():
    assert units.fmt_bytes(units.megabytes(2.5)) == "2.50MB"
    assert units.fmt_bytes(2048) == "2.00KB"
    assert units.fmt_bytes(10) == "10B"
    assert units.fmt_duration(9000) == "2h30m"
    assert units.fmt_duration(90) == "1m30s"
    assert units.fmt_duration(5.5) == "5.5s"
