"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in ("ConfigurationError", "SimulationError", "ReproBufferError",
                 "MessageNotFoundError", "DuplicateMessageError",
                 "TransferError", "TraceFormatError", "SchedulingError",
                 "FaultInjectionError", "SweepInterrupted",
                 "InvariantViolation"):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError), name


def test_deprecated_buffer_error_alias_warns():
    # The old trailing-underscore name remains reachable but warns.  Accessed
    # via getattr-with-a-string: reprolint REP007 bans direct references.
    with pytest.warns(DeprecationWarning, match="ReproBufferError"):
        alias = getattr(errors, "BufferError_")
    assert alias is errors.ReproBufferError


def test_deprecated_alias_forwarded_from_package():
    import repro

    with pytest.warns(DeprecationWarning):
        alias = getattr(repro, "BufferError_")
    assert alias is errors.ReproBufferError


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        errors.NoSuchName  # noqa: B018


def test_invariant_violation_structure():
    exc = errors.InvariantViolation(
        "buffer-accounting", "used=12 expected=10",
        node_id=3, msg_id="M7", time=42.0,
    )
    assert exc.invariant == "buffer-accounting"
    assert exc.node_id == 3 and exc.msg_id == "M7" and exc.time == 42.0
    assert "node=3" in str(exc) and "msg=M7" in str(exc)


def test_message_not_found_is_key_error():
    # Callers using dict-style access patterns can catch KeyError.
    assert issubclass(errors.MessageNotFoundError, KeyError)


def test_trace_format_is_value_error():
    assert issubclass(errors.TraceFormatError, ValueError)


def test_catch_all():
    with pytest.raises(errors.ReproError):
        raise errors.TransferError("x")
