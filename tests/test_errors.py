"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in ("ConfigurationError", "SimulationError", "ReproBufferError",
                 "MessageNotFoundError", "DuplicateMessageError",
                 "TransferError", "TraceFormatError", "SchedulingError",
                 "FaultInjectionError", "SweepInterrupted"):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError), name


def test_deprecated_buffer_error_alias():
    # The old trailing-underscore name remains importable and identical.
    assert errors.BufferError_ is errors.ReproBufferError


def test_message_not_found_is_key_error():
    # Callers using dict-style access patterns can catch KeyError.
    assert issubclass(errors.MessageNotFoundError, KeyError)


def test_trace_format_is_value_error():
    assert issubclass(errors.TraceFormatError, ValueError)


def test_catch_all():
    with pytest.raises(errors.ReproError):
        raise errors.TransferError("x")
