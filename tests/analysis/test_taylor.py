"""Fig. 4 curve analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.taylor import (
    PEAK_P_R,
    peak_location,
    priority_curve,
    taylor_convergence,
)
from repro.errors import ConfigurationError


def test_priority_curve_contains_requested_series():
    curves = priority_curve(taylor_term_counts=(1, 3))
    assert set(curves) == {"p_r", "ideal", "taylor_k1", "taylor_k3"}
    assert curves["ideal"].shape == curves["p_r"].shape


def test_ideal_peak_at_1_minus_1_over_e():
    curves = priority_curve(p_r=np.linspace(0, 0.999, 5001))
    peak = peak_location(curves["p_r"], curves["ideal"])
    assert peak == pytest.approx(PEAK_P_R, abs=1e-3)


def test_truncations_below_ideal():
    curves = priority_curve()
    for key in ("taylor_k1", "taylor_k2", "taylor_k4", "taylor_k8"):
        if key in curves:
            assert np.all(curves[key] <= curves["ideal"] + 1e-12)


def test_convergence_errors_decrease():
    errors = taylor_convergence(max_terms=24)
    vals = [errors[k] for k in sorted(errors)]
    assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))
    # Convergence is slow near p_r -> 1 (the grid tops out at 0.99), so a
    # modest reduction is all 24 terms buy on the max-norm.
    assert vals[-1] < 0.1 * vals[0]


def test_peak_location_validation():
    with pytest.raises(ConfigurationError):
        peak_location(np.array([1.0]), np.array([1.0, 2.0]))


def test_convergence_validation():
    with pytest.raises(ConfigurationError):
        taylor_convergence(max_terms=0)
