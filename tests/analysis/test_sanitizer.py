"""Runtime invariant sanitizer: seeded bugs must be caught, clean runs pass.

Each seeded-bug test corrupts a live simulation mid-run the way a real
regression would (bad accounting, leaked pin, protocol double-commit) and
asserts the sanitizer kills the run with a structured
:class:`~repro.errors.InvariantViolation` naming the culprit.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.errors import InvariantViolation
from repro.experiments.runner import build_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario


def small(policy: str = "sdsrp", seed: int = 3, **overrides):
    return scale_scenario(
        random_waypoint_scenario(policy=policy, seed=seed),
        node_factor=0.15,
        time_factor=0.08,
    ).replace(sanitize=True, **overrides)


def build_and_warm(config, until: float = 120.0):
    """Build a sanitized scenario and run it past the first messages."""
    built = build_scenario(config)
    assert built.sanitizer is not None
    built.sim.run(until=until)
    return built


# -- wiring ------------------------------------------------------------------


def test_sanitizer_installed_only_when_requested():
    clean = small().replace(sanitize=False)
    assert build_scenario(clean).sanitizer is None
    assert build_scenario(small()).sanitizer is not None


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    built = build_scenario(small().replace(sanitize=False))
    assert built.sanitizer is not None


def test_check_copies_gated_by_router():
    assert build_scenario(small()).sanitizer.check_copies  # snw
    epidemic = small(policy="fifo").replace(router="epidemic")
    assert not build_scenario(epidemic).sanitizer.check_copies


# -- seeded bug 1: corrupted buffer accounting --------------------------------


def test_corrupt_buffer_accounting_is_caught():
    built = build_and_warm(small())
    node = built.nodes[0]
    node.buffer._used += 1  # the seeded bug: accounting drifts off by a byte

    with pytest.raises(InvariantViolation) as exc:
        built.sim.run()
    assert exc.value.invariant == "buffer-accounting"
    assert exc.value.node_id == node.id
    assert exc.value.time is not None


def test_overfull_buffer_is_caught():
    built = build_and_warm(small())
    node = built.nodes[1]
    # Force used past capacity without touching the stored messages.
    node.buffer._used = node.buffer.capacity + 1

    with pytest.raises(InvariantViolation) as exc:
        built.sim.run()
    # Recomputation trips first (stored sizes no longer match), which is
    # still the right diagnosis: the accounting is corrupt.
    assert exc.value.invariant in ("buffer-accounting", "buffer-capacity")
    assert exc.value.node_id == node.id


# -- seeded bug 2: leaked pin -------------------------------------------------


def test_leaked_pin_is_caught():
    built = build_and_warm(small())
    node = built.nodes[2]
    # The seeded bug: a transfer teardown that forgot to unpin a message
    # which has since been dropped — the pin now references nothing.
    node.buffer._pins["M999"] = 1

    with pytest.raises(InvariantViolation) as exc:
        built.sim.run()
    assert exc.value.invariant == "pin-hygiene"
    assert exc.value.node_id == node.id
    assert exc.value.msg_id == "M999"


# -- seeded bug 3: double-committed transfer ----------------------------------


def test_double_commit_is_caught():
    built = build_and_warm(small(), until=600.0)
    commits: list = []
    built.sim.listeners.subscribe("transfer.commit", commits.append)
    built.sim.run(until=1200.0)
    assert commits, "expected at least one spray commit in the warm-up window"

    # The seeded bug: replay an already-committed transfer (a broken retry
    # path would do exactly this through the same emit).
    with pytest.raises(InvariantViolation) as exc:
        built.sim.listeners.emit("transfer.commit", commits[-1])
    assert exc.value.invariant == "single-commit"
    assert exc.value.msg_id == commits[-1].message.msg_id


def test_double_commit_unit():
    sanitizer = Sanitizer(nodes=[])
    transfer = SimpleNamespace(
        seq=7,
        sender=SimpleNamespace(id=1),
        receiver=SimpleNamespace(id=2),
        message=SimpleNamespace(msg_id="M1"),
    )
    sanitizer.on_commit(transfer)
    with pytest.raises(InvariantViolation, match="single-commit"):
        sanitizer.on_commit(transfer)


# -- seeded corruption of message state ---------------------------------------


def test_copy_inflation_is_caught():
    built = build_and_warm(small())
    # Find any buffered copy and counterfeit spray tokens onto it.
    victim = next(
        (m for node in built.nodes for m in node.buffer), None
    )
    assert victim is not None
    victim.copies = victim.initial_copies + 5

    with pytest.raises(InvariantViolation) as exc:
        built.sim.run()
    assert exc.value.invariant == "copy-conservation"
    assert exc.value.msg_id == victim.msg_id


def test_ttl_rewind_is_caught():
    built = build_and_warm(small())
    victim = next(
        (m for node in built.nodes for m in node.buffer), None
    )
    assert victim is not None
    victim.created_at += 3600.0  # rejuvenates the copy: remaining TTL jumps up

    with pytest.raises(InvariantViolation) as exc:
        built.sim.run()
    assert exc.value.invariant == "ttl-monotonic"
    assert exc.value.msg_id == victim.msg_id


# -- clean runs ---------------------------------------------------------------


@pytest.mark.parametrize("policy,router", [
    ("sdsrp", "snw"),
    ("fifo", "snw"),
    ("fifo", "epidemic"),
])
def test_clean_sanitized_run_has_no_violations(policy, router):
    built = build_scenario(small(policy=policy).replace(router=router))
    built.sim.run()
    assert built.sanitizer.ticks_checked > 0
    assert built.sim.now == built.config.sim_time


def test_violation_message_names_everything():
    err = InvariantViolation(
        "pin-hygiene", "leaked", node_id=4, msg_id="M7", time=12.5
    )
    text = str(err)
    assert "pin-hygiene" in text
    assert "node=4" in text
    assert "msg=M7" in text
    assert "t=12.5" in text
