"""Exponential fitting (Fig. 3 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import fit_exponential, histogram_pdf
from repro.errors import ConfigurationError


def test_recovers_known_rate():
    rng = np.random.default_rng(0)
    samples = rng.exponential(scale=500.0, size=5000)
    fit = fit_exponential(samples)
    assert fit.mean == pytest.approx(500.0, rel=0.05)
    assert fit.rate == pytest.approx(1 / 500.0, rel=0.05)
    assert fit.n_samples == 5000
    # Exponential data must not be rejected by its own fit.
    assert fit.ks_pvalue > 0.01


def test_detects_non_exponential():
    rng = np.random.default_rng(1)
    samples = rng.uniform(100.0, 200.0, size=5000)
    fit = fit_exponential(samples)
    assert fit.ks_pvalue < 0.001


def test_pdf_and_survival():
    fit = fit_exponential(np.random.default_rng(2).exponential(100.0, 1000))
    x = np.array([0.0, fit.mean])
    assert fit.pdf(x)[0] == pytest.approx(fit.rate)
    assert fit.survival(x)[1] == pytest.approx(np.exp(-1.0), rel=1e-6)


def test_validation():
    with pytest.raises(ConfigurationError):
        fit_exponential(np.array([1.0]))
    with pytest.raises(ConfigurationError):
        fit_exponential(np.array([1.0, -2.0]))


def test_histogram_pdf_normalized():
    rng = np.random.default_rng(3)
    samples = rng.exponential(100.0, 20_000)
    centers, density = histogram_pdf(samples, bins=40)
    width = centers[1] - centers[0]
    assert (density * width).sum() == pytest.approx(1.0, rel=0.01)


def test_histogram_empty():
    with pytest.raises(ConfigurationError):
        histogram_pdf(np.array([]))
