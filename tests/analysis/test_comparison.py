"""Shape-comparison utilities."""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import (
    crossovers,
    dominates,
    policy_ranking,
    trend_direction,
)
from repro.errors import ConfigurationError


class TestPolicyRanking:
    def test_orders_by_mean(self):
        series = {"a": [0.5, 0.5], "b": [0.9, 0.1], "c": [0.6, 0.6]}
        assert policy_ranking(series) == ["c", "b", "a"] or \
            policy_ranking(series)[0] == "c"

    def test_prefer_min(self):
        series = {"a": [10.0], "b": [5.0]}
        assert policy_ranking(series, prefer="min") == ["b", "a"]

    def test_nan_ignored(self):
        series = {"a": [math.nan, 0.4], "b": [0.3, 0.3]}
        assert policy_ranking(series)[0] == "a"

    def test_all_nan_ranks_last(self):
        series = {"a": [math.nan], "b": [0.1]}
        assert policy_ranking(series) == ["b", "a"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            policy_ranking({"a": [1.0]}, prefer="median")


class TestTrendDirection:
    def test_rising(self):
        assert trend_direction([1.0, 2.0, 3.0]) == "rising"

    def test_falling(self):
        assert trend_direction([3.0, 2.5, 1.0]) == "falling"

    def test_flat_with_tolerance(self):
        assert trend_direction([1.0, 1.02, 1.01], tolerance=0.05) == "flat"

    def test_mixed(self):
        assert trend_direction([1.0, 5.0, 1.1]) == "mixed"

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            trend_direction([1.0])


class TestCrossovers:
    def test_single_crossing_interpolated(self):
        x = [0.0, 1.0, 2.0]
        a = [0.0, 0.0, 2.0]
        b = [1.0, 1.0, 1.0]
        (cross,) = crossovers(x, a, b)
        assert cross == pytest.approx(1.5)

    def test_no_crossing(self):
        assert crossovers([0, 1], [1.0, 2.0], [3.0, 4.0]) == []

    def test_touch_point_reported_once(self):
        x = [0.0, 1.0, 2.0]
        a = [0.0, 1.0, 0.0]
        b = [1.0, 1.0, 1.0]
        assert crossovers(x, a, b) == [1.0]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            crossovers([0, 1], [1.0], [2.0, 3.0])


class TestDominates:
    def test_pointwise_domination(self):
        assert dominates([3.0, 4.0], [2.0, 4.0])
        assert not dominates([3.0, 1.0], [2.0, 4.0])

    def test_prefer_min(self):
        assert dominates([1.0, 2.0], [1.5, 2.0], prefer="min")

    def test_nan_points_skipped(self):
        assert dominates([math.nan, 5.0], [9.0, 4.0])

    def test_real_bench_data_shape(self):
        """SDSRP's overhead dominance from the recorded benchmark run."""
        import json
        from pathlib import Path

        path = Path("benchmarks/results/bench_results.json")
        if not path.exists():
            pytest.skip("bench results not generated yet")
        data = json.loads(path.read_text())
        if "fig8_copies" not in data:
            pytest.skip("fig8 not in bench results")
        series = data["fig8_copies"]["series"]
        for rival in ("fifo", "snw-o", "snw-c"):
            assert dominates(
                series["sdsrp"]["overhead_ratio"],
                series[rival]["overhead_ratio"],
                prefer="min",
            ), rival
