"""Fault injector and the world-level fault hooks it drives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.engine.simulator import Simulator
from repro.errors import FaultInjectionError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.faults.injector import (
    KIND_LINK_FLAP,
    KIND_NODE_DOWN,
    KIND_NODE_UP,
    KIND_TRANSFER_FAULT,
)
from repro.net.transfer import TransferManager
from repro.policies.fifo import FifoPolicy
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.units import kbps, megabytes
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.trace_world import TraceWorld
from tests.helpers import build_micro_world, make_message, total_copies_in_network

LINKED = [(0.0, 0.0), (50.0, 0.0)]       # inside the 100 m default range
APART = [(0.0, 0.0), (500.0, 0.0)]       # never in range


class TestWorldFaultHooks:
    def test_node_down_drops_links_and_blocks_reforming(self):
        mw = build_micro_world(points=LINKED, sim_time=30.0)
        mw.sim.run(until=2.0)
        assert (0, 1) in mw.world.links

        mw.world.set_node_down(0)
        assert mw.world.links == set()
        assert not mw.nodes[0].neighbors and not mw.nodes[1].neighbors
        mw.sim.run(until=5.0)  # ticks pass; the link must stay down
        assert mw.world.links == set()

        mw.world.set_node_up(0)
        mw.sim.run(until=7.0)  # re-forms at the next world tick
        assert (0, 1) in mw.world.links

    def test_force_link_down_reports_existence(self):
        mw = build_micro_world(points=LINKED, sim_time=30.0)
        mw.sim.run(until=2.0)
        assert mw.world.force_link_down(1, 0) is True  # order-insensitive
        assert (0, 1) not in mw.world.links
        assert mw.world.force_link_down(0, 1) is False
        mw.sim.run(until=4.0)  # both endpoints healthy: re-forms next tick
        assert (0, 1) in mw.world.links


class TestTraceWorldFaultHooks:
    def build(self, trace: ContactTrace, sim_time: float = 30.0):
        sim = Simulator(end_time=sim_time)
        radio = Radio(100.0, kbps(250))
        nodes = [Node(i, radio, megabytes(2.5)) for i in range(2)]
        tm = TransferManager(sim)
        for node in nodes:
            SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, 2)
        world = TraceWorld(sim, nodes, tm, trace)
        world.start()
        return sim, world

    def test_down_node_discards_recorded_contacts(self):
        trace = ContactTrace([
            ContactEvent(1.0, 0, 1, True),
            ContactEvent(5.0, 0, 1, False),
            ContactEvent(10.0, 0, 1, True),
        ])
        sim, world = self.build(trace)
        ups = []
        sim.listeners.subscribe("link.up", lambda a, b: ups.append(sim.now))
        world.set_node_down(0)
        sim.schedule_at(7.0, world.set_node_up, 0)
        sim.run()
        # The 1.0 contact never happens; rejoining at 7.0 resumes at the
        # next recorded contact (10.0).
        assert ups == [10.0]

    def test_set_node_down_tears_down_live_links(self):
        trace = ContactTrace([ContactEvent(1.0, 0, 1, True)])
        sim, world = self.build(trace)
        downs = []
        sim.listeners.subscribe("link.down", lambda a, b: downs.append(sim.now))
        sim.schedule_at(3.0, world.set_node_down, 1)
        sim.run()
        assert downs == [3.0]
        assert world.links == set()

    def test_force_link_down_reforms_at_next_trace_up(self):
        trace = ContactTrace([
            ContactEvent(1.0, 0, 1, True),
            ContactEvent(10.0, 0, 1, True),  # duplicate while up; re-up after flap
            ContactEvent(15.0, 0, 1, False),
        ])
        sim, world = self.build(trace)
        ups = []
        sim.listeners.subscribe("link.up", lambda a, b: ups.append(sim.now))
        sim.schedule_at(2.0, world.force_link_down, 0, 1)
        sim.run()
        assert ups == [1.0, 10.0]


class TestChurnInjection:
    def test_churn_cycles_and_wipes_buffers(self):
        # Nodes out of range: buffered messages sit still until churned away.
        mw = build_micro_world(points=APART, sim_time=50.0)
        mw.router(0).create_message(make_message(source=0, destination=1))
        plan = FaultPlan(
            churn_fraction=1.0, churn_off_time=10.0, churn_on_time=10.0
        )
        injector = FaultInjector(mw.world, plan, np.random.default_rng(3))
        injector.start()
        mw.sim.run()

        assert injector.churned_nodes == (0, 1)
        assert injector.counts[KIND_NODE_DOWN] >= 2
        assert injector.counts[KIND_NODE_UP] >= 1
        # The reboot lost node 0's buffered copy, under the fault reason.
        assert mw.metrics.drops_by_reason.get("fault", 0) >= 1
        assert len(mw.nodes[0].buffer) == 0
        # Counters flowed through the fault.injected topic into metrics.
        assert mw.metrics.faults_by_kind == injector.counts

    def test_wipe_can_be_disabled(self):
        mw = build_micro_world(points=APART, sim_time=50.0)
        mw.router(0).create_message(make_message(source=0, destination=1))
        plan = FaultPlan(
            churn_fraction=1.0, churn_off_time=10.0, churn_on_time=10.0,
            churn_wipe_buffer=False,
        )
        injector = FaultInjector(mw.world, plan, np.random.default_rng(3))
        injector.start()
        mw.sim.run()
        assert "fault" not in mw.metrics.drops_by_reason
        assert "M1" in mw.nodes[0].buffer

    def test_zero_fraction_rounds_to_no_churn(self):
        mw = build_micro_world(points=APART, sim_time=20.0)
        plan = FaultPlan(churn_fraction=0.1, churn_off_time=5.0,
                         churn_on_time=5.0)  # round(0.1 * 2) == 0 nodes
        injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
        injector.start()
        mw.sim.run()
        assert injector.churned_nodes == ()
        assert injector.counts == {}


class TestLinkFlaps:
    def test_flaps_are_counted_and_links_recover(self):
        mw = build_micro_world(points=LINKED, sim_time=100.0)
        plan = FaultPlan(link_flap_rate=0.2)
        injector = FaultInjector(mw.world, plan, np.random.default_rng(7))
        injector.start()
        mw.sim.run()
        assert injector.counts[KIND_LINK_FLAP] >= 1
        # Both endpoints stayed healthy, so the final tick re-formed the link.
        assert (0, 1) in mw.world.links


class TestTransferFaults:
    def test_certain_fault_blocks_all_deliveries(self):
        mw = build_micro_world(points=LINKED, sim_time=100.0)
        plan = FaultPlan(transfer_fault_prob=1.0)
        injector = FaultInjector(mw.world, plan, np.random.default_rng(1))
        injector.start()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()

        assert injector.counts[KIND_TRANSFER_FAULT] >= 1
        assert mw.metrics.delivered == 0
        assert mw.metrics.relayed == 0
        assert "M1" not in mw.nodes[1].buffer
        # Two-phase split: no spray tokens were committed by failed sends.
        assert total_copies_in_network(mw, "M1") == 16
        # The sender kept retrying (each completion failed and re-queued), so
        # at most its own in-flight retry remains at the horizon.
        assert mw.transfer_manager.active_count <= 1

    def test_zero_probability_never_consults_rng(self):
        mw = build_micro_world(points=LINKED, sim_time=60.0)
        plan = FaultPlan(churn_fraction=0.0, transfer_fault_prob=0.0)
        injector = FaultInjector(mw.world, plan, np.random.default_rng(1))
        injector.start()
        assert mw.transfer_manager.fault_model is None


class TestScriptedEvents:
    def test_node_events_fire_at_their_exact_times(self):
        mw = build_micro_world(points=LINKED, sim_time=30.0)
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind="node_down", node=0),
            FaultEvent(time=12.0, kind="node_up", node=0),
        ))
        injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
        injector.start()
        downs, ups = [], []
        mw.sim.listeners.subscribe(
            "fault.injected",
            lambda kind, t: (downs if kind == "node_down" else ups).append(t),
        )
        mw.sim.run(until=10.0)
        assert downs == [5.0] and ups == []
        assert mw.world.links == set()
        mw.sim.run()
        assert ups == [12.0]
        assert (0, 1) in mw.world.links  # re-formed after the up event

    def test_scripted_down_wipes_per_plan_flag(self):
        for wipe, expected in ((True, 0), (False, 1)):
            mw = build_micro_world(points=APART, sim_time=20.0)
            mw.router(0).create_message(make_message(source=0, destination=1))
            plan = FaultPlan(
                churn_wipe_buffer=wipe,
                events=(FaultEvent(time=5.0, kind="node_down", node=0),),
            )
            injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
            injector.start()
            mw.sim.run()
            assert len(mw.nodes[0].buffer) == expected

    def test_scripted_flap_picks_a_link_deterministically(self):
        mw = build_micro_world(points=LINKED, sim_time=30.0)
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind="link_flap", node=7),
        ))
        injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
        injector.start()
        flaps = []
        mw.sim.listeners.subscribe(
            "fault.injected", lambda kind, t: flaps.append((kind, t))
        )
        mw.sim.run()
        # One link, any index selects it modulo the link-set size.
        assert flaps == [(KIND_LINK_FLAP, 5.0)]
        assert (0, 1) in mw.world.links  # healthy endpoints re-form

    def test_scripted_transfer_fault_truncates_the_next_completion(self):
        mw = build_micro_world(points=LINKED, sim_time=100.0)
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind="transfer_fault"),
        ))
        injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
        injector.start()
        assert mw.transfer_manager.fault_model is injector
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()
        # Exactly the first completion was truncated; the retry succeeded.
        assert injector.counts[KIND_TRANSFER_FAULT] == 1
        assert injector._scripted_transfer_consumed == 1
        assert mw.metrics.delivered == 1

    def test_scripted_only_plan_never_touches_the_rng(self):
        mw = build_micro_world(points=LINKED, sim_time=60.0)
        plan = FaultPlan(events=(
            FaultEvent(time=2.0, kind="link_flap", node=0),
            FaultEvent(time=5.0, kind="node_down", node=0),
            FaultEvent(time=9.0, kind="node_up", node=0),
            FaultEvent(time=20.0, kind="transfer_fault"),
        ))
        rng = np.random.default_rng(123)
        injector = FaultInjector(mw.world, plan, rng)
        injector.start()
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()
        assert injector.counts  # the schedule did fire
        # Bit-exact RNG state: scripted events made no draw, so a shrunk
        # reproducer replays the surviving schedule identically.
        assert (
            rng.bit_generator.state
            == np.random.default_rng(123).bit_generator.state
        )


class TestWipeDuringTransfer:
    def test_wipe_mid_transfer_keeps_invariants(self):
        # Node 0 goes down (with a buffer wipe) while its transfer to node 1
        # is in flight.  The link teardown aborts the transfer and releases
        # the pin before the wipe runs; the armed sanitizer then proves no
        # pin leaked and no spray token was double-counted on any tick.
        mw = build_micro_world(points=LINKED, sim_time=40.0)
        sanitizer = Sanitizer(mw.nodes)
        sanitizer.subscribe(mw.sim)
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind="node_down", node=0),
            FaultEvent(time=10.0, kind="node_up", node=0),
        ))
        injector = FaultInjector(mw.world, plan, np.random.default_rng(0))
        injector.start()
        mw.router(0).create_message(make_message(source=0, destination=1))

        mw.sim.run(until=4.0)
        assert mw.transfer_manager.active_count == 1, (
            "no transfer in flight at the down event; test is vacuous"
        )
        mw.sim.run()

        assert sanitizer.ticks_checked > 0
        assert mw.metrics.drops_by_reason.get("fault", 0) >= 1
        for node in mw.nodes:
            assert not list(node.buffer.pinned_ids())
        assert total_copies_in_network(mw, "M1") <= 16


class TestLifecycle:
    def test_double_start_raises(self):
        mw = build_micro_world(points=LINKED, sim_time=10.0)
        injector = FaultInjector(
            mw.world, FaultPlan(link_flap_rate=0.1), np.random.default_rng(0)
        )
        injector.start()
        with pytest.raises(FaultInjectionError):
            injector.start()

    def test_conflicting_fault_model_raises(self):
        mw = build_micro_world(points=LINKED, sim_time=10.0)
        plan = FaultPlan(transfer_fault_prob=0.5)
        first = FaultInjector(mw.world, plan, np.random.default_rng(0))
        first.start()
        second = FaultInjector(mw.world, plan, np.random.default_rng(1))
        with pytest.raises(FaultInjectionError):
            second.start()
