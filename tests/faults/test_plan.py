"""FaultPlan: validation, enabled flag, dict round-trips."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import EVENT_KINDS, FaultEvent, FaultPlan


class TestValidation:
    def test_defaults_are_valid_and_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled

    @pytest.mark.parametrize("fraction", [-0.1, 1.01])
    def test_rejects_churn_fraction_out_of_range(self, fraction):
        with pytest.raises(ConfigurationError):
            FaultPlan(churn_fraction=fraction)

    @pytest.mark.parametrize(
        "kw", [{"churn_off_time": 0.0}, {"churn_on_time": -5.0}]
    )
    def test_rejects_nonpositive_churn_times(self, kw):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kw)

    def test_rejects_negative_flap_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(link_flap_rate=-1.0)

    @pytest.mark.parametrize("prob", [-0.5, 1.5])
    def test_rejects_transfer_prob_out_of_range(self, prob):
        with pytest.raises(ConfigurationError):
            FaultPlan(transfer_fault_prob=prob)

    @pytest.mark.parametrize(
        "field",
        [
            "churn_fraction", "churn_off_time", "churn_on_time",
            "link_flap_rate", "transfer_fault_prob",
        ],
    )
    @pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_rates(self, field, value):
        # NaN slips through ordering comparisons (nan < x is always False),
        # so the explicit finiteness gate must catch it.
        with pytest.raises(ConfigurationError, match="finite"):
            FaultPlan(**{field: value})

    def test_rejects_non_event_entries(self):
        with pytest.raises(ConfigurationError, match="FaultEvent"):
            FaultPlan(events=({"time": 1.0, "kind": "node_down"},))


class TestFaultEvent:
    @pytest.mark.parametrize("time", [-1.0, math.nan, math.inf])
    def test_rejects_bad_times(self, time):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=time, kind="node_down")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultEvent(time=1.0, kind="meteor_strike")

    def test_rejects_negative_node(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=1.0, kind="node_down", node=-1)

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_as_dict_from_dict(self, kind):
        event = FaultEvent(time=12.5, kind=kind, node=3)
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestValidateFor:
    def test_accepts_a_plan_that_fits(self):
        plan = FaultPlan(
            churn_fraction=0.5, churn_off_time=50.0, churn_on_time=50.0,
            events=(FaultEvent(time=80.0, kind="node_down", node=3),),
        )
        plan.validate_for(horizon=100.0, n_nodes=4)

    @pytest.mark.parametrize(
        "kw", [{"churn_off_time": 150.0}, {"churn_on_time": 150.0}]
    )
    def test_rejects_churn_duty_beyond_horizon(self, kw):
        plan = FaultPlan(
            churn_fraction=0.5, churn_off_time=50.0, churn_on_time=50.0
        ).replace(**kw)
        with pytest.raises(ConfigurationError, match="duty cycle"):
            plan.validate_for(horizon=100.0, n_nodes=4)

    def test_long_duty_is_fine_when_churn_is_off(self):
        FaultPlan(churn_off_time=9999.0).validate_for(
            horizon=100.0, n_nodes=4
        )

    def test_rejects_event_past_horizon(self):
        plan = FaultPlan(events=(FaultEvent(time=101.0, kind="link_flap"),))
        with pytest.raises(ConfigurationError, match="past the"):
            plan.validate_for(horizon=100.0, n_nodes=4)

    @pytest.mark.parametrize("kind", ["node_down", "node_up"])
    def test_rejects_node_event_outside_the_fleet(self, kind):
        plan = FaultPlan(events=(FaultEvent(time=1.0, kind=kind, node=4),))
        with pytest.raises(ConfigurationError, match="only 4 nodes"):
            plan.validate_for(horizon=100.0, n_nodes=4)

    def test_link_flap_index_is_not_a_node_id(self):
        # The flap event's ``node`` selects from the link set modulo its
        # size, so any non-negative value is valid regardless of fleet size.
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="link_flap", node=999),
            FaultEvent(time=2.0, kind="transfer_fault", node=999),
        ))
        plan.validate_for(horizon=100.0, n_nodes=2)


class TestEvents:
    def test_sequences_are_coerced_to_tuples(self):
        plan = FaultPlan(events=[FaultEvent(time=1.0, kind="node_down")])
        assert isinstance(plan.events, tuple)

    def test_events_alone_enable_the_plan(self):
        assert FaultPlan(
            events=(FaultEvent(time=1.0, kind="link_flap"),)
        ).enabled

    def test_event_plan_roundtrips_through_dicts(self):
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind="node_down", node=1),
            FaultEvent(time=9.0, kind="transfer_fault"),
        ))
        decoded = FaultPlan.from_dict(plan.as_dict())
        assert decoded == plan
        assert all(isinstance(e, FaultEvent) for e in decoded.events)


class TestEnabled:
    @pytest.mark.parametrize(
        "kw",
        [
            {"churn_fraction": 0.2},
            {"link_flap_rate": 0.01},
            {"transfer_fault_prob": 0.1},
        ],
    )
    def test_any_active_knob_enables(self, kw):
        assert FaultPlan(**kw).enabled

    def test_wipe_flag_alone_does_not_enable(self):
        # churn_wipe_buffer only matters once churn itself is on.
        assert not FaultPlan(churn_wipe_buffer=False).enabled


class TestRoundTrip:
    def test_as_dict_from_dict(self):
        plan = FaultPlan(
            churn_fraction=0.3,
            churn_off_time=600.0,
            churn_on_time=1200.0,
            churn_wipe_buffer=False,
            link_flap_rate=0.02,
            transfer_fault_prob=0.05,
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_replace_validates(self):
        plan = FaultPlan(churn_fraction=0.3)
        assert plan.replace(churn_fraction=0.5).churn_fraction == 0.5
        with pytest.raises(ConfigurationError):
            plan.replace(churn_fraction=2.0)
