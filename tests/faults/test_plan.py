"""FaultPlan: validation, enabled flag, dict round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_are_valid_and_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled

    @pytest.mark.parametrize("fraction", [-0.1, 1.01])
    def test_rejects_churn_fraction_out_of_range(self, fraction):
        with pytest.raises(ConfigurationError):
            FaultPlan(churn_fraction=fraction)

    @pytest.mark.parametrize(
        "kw", [{"churn_off_time": 0.0}, {"churn_on_time": -5.0}]
    )
    def test_rejects_nonpositive_churn_times(self, kw):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kw)

    def test_rejects_negative_flap_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(link_flap_rate=-1.0)

    @pytest.mark.parametrize("prob", [-0.5, 1.5])
    def test_rejects_transfer_prob_out_of_range(self, prob):
        with pytest.raises(ConfigurationError):
            FaultPlan(transfer_fault_prob=prob)


class TestEnabled:
    @pytest.mark.parametrize(
        "kw",
        [
            {"churn_fraction": 0.2},
            {"link_flap_rate": 0.01},
            {"transfer_fault_prob": 0.1},
        ],
    )
    def test_any_active_knob_enables(self, kw):
        assert FaultPlan(**kw).enabled

    def test_wipe_flag_alone_does_not_enable(self):
        # churn_wipe_buffer only matters once churn itself is on.
        assert not FaultPlan(churn_wipe_buffer=False).enabled


class TestRoundTrip:
    def test_as_dict_from_dict(self):
        plan = FaultPlan(
            churn_fraction=0.3,
            churn_off_time=600.0,
            churn_on_time=1200.0,
            churn_wipe_buffer=False,
            link_flap_rate=0.02,
            transfer_fault_prob=0.05,
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_replace_validates(self):
        plan = FaultPlan(churn_fraction=0.3)
        assert plan.replace(churn_fraction=0.5).churn_fraction == 0.5
        with pytest.raises(ConfigurationError):
            plan.replace(churn_fraction=2.0)
