"""Contact traces: recording, stats, file round-trip."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.traces.contact_trace import ContactEvent, ContactTrace, ContactTraceRecorder
from tests.helpers import build_micro_world, scripted_mobility


def sample_trace() -> ContactTrace:
    t = ContactTrace()
    t.append(ContactEvent(10.0, 0, 1, True))
    t.append(ContactEvent(20.0, 0, 1, False))
    t.append(ContactEvent(50.0, 1, 0, True))  # unordered pair ids
    t.append(ContactEvent(60.0, 1, 0, False))
    t.append(ContactEvent(15.0 + 50.0, 2, 3, True))
    return t


class TestStats:
    def test_intermeeting_samples(self):
        t = sample_trace()
        gaps = t.intermeeting_samples()
        assert list(gaps) == [30.0]  # 50 - 20 for pair (0,1)

    def test_contact_durations(self):
        t = sample_trace()
        assert sorted(t.contact_durations()) == [10.0, 10.0]

    def test_time_ordering_enforced(self):
        t = ContactTrace()
        t.append(ContactEvent(10.0, 0, 1, True))
        with pytest.raises(TraceFormatError):
            t.append(ContactEvent(5.0, 0, 1, False))


class TestIO:
    def test_round_trip(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "contacts.txt"
        t.save(path)
        loaded = ContactTrace.load(path)
        assert len(loaded) == len(t)
        assert loaded.events[0] == t.events[0]
        assert list(loaded.intermeeting_samples()) == [30.0]

    def test_load_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1.0 0 1 CONN sideways\n")
        with pytest.raises(TraceFormatError):
            ContactTrace.load(p)
        p.write_text("1.0 0 1 NOPE up\n")
        with pytest.raises(TraceFormatError):
            ContactTrace.load(p)


class TestRecorder:
    def test_records_world_link_events(self):
        mobility = scripted_mobility(
            [0.0, 10.0, 11.0, 30.0],
            [
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (800.0, 800.0)],
                [(0.0, 0.0), (800.0, 800.0)],
            ],
        )
        mw = build_micro_world(mobility=mobility, sim_time=30.0)
        rec = ContactTraceRecorder()
        rec.subscribe(mw.sim)
        mw.sim.run()
        kinds = [(e.up) for e in rec.trace.events]
        assert kinds == [True, False]
        assert rec.trace.contact_durations().size == 1
