"""EPFL cabspotting loader and the synthetic substitute."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.mobility.taxi import TaxiFleet
from repro.traces.epfl import (
    load_cabspotting_dir,
    parse_cabspotting_file,
    synthetic_epfl,
)


def write_cab(path, rows):
    path.write_text("\n".join(rows) + "\n")


class TestParse:
    def test_reverse_chronological_input_sorted(self, tmp_path):
        p = tmp_path / "new_abc.txt"
        write_cab(p, [
            "37.75200 -122.39400 0 1213084747",
            "37.75134 -122.39488 1 1213084687",
        ])
        times, coords = parse_cabspotting_file(p)
        assert times[0] < times[1]
        assert coords[0][0] == pytest.approx(37.75134)

    def test_rejects_bad_fields(self, tmp_path):
        p = tmp_path / "new_bad.txt"
        write_cab(p, ["37.75 -122.39 0"])
        with pytest.raises(TraceFormatError):
            parse_cabspotting_file(p)

    def test_rejects_empty(self, tmp_path):
        p = tmp_path / "new_empty.txt"
        p.write_text("")
        with pytest.raises(TraceFormatError):
            parse_cabspotting_file(p)


class TestLoadDir:
    def test_builds_playback_mobility(self, tmp_path):
        base = 1213084000
        for cab in ("aa", "bb", "cc"):
            rows = [
                f"37.7{i} -122.4{i} 0 {base + 600 * (5 - i)}" for i in range(5)
            ]
            write_cab(tmp_path / f"new_{cab}.txt", rows)
        mobility = load_cabspotting_dir(tmp_path, n_taxis=2, duration=3000.0,
                                        grid_step=60.0)
        assert mobility.n_nodes == 2
        mobility.initialize(np.random.default_rng(0))
        pos = mobility.advance(100.0)
        assert pos.shape == (2, 2)
        assert np.all(pos >= 0.0)  # shifted to non-negative coordinates

    def test_missing_dir_content(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_cabspotting_dir(tmp_path)


class TestSynthetic:
    def test_returns_taxi_fleet_with_paper_default_size(self):
        fleet = synthetic_epfl()
        assert isinstance(fleet, TaxiFleet)
        assert fleet.n_nodes == 200

    def test_kwargs_forwarded(self):
        fleet = synthetic_epfl(n_taxis=30, n_hotspots=3)
        assert fleet.n_nodes == 30
        assert fleet.n_hotspots == 3
