"""EPFL cabspotting loader and the synthetic substitute."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.mobility.taxi import TaxiFleet
from repro.traces.epfl import (
    load_cabspotting_dir,
    parse_cabspotting_file,
    synthetic_epfl,
)


def write_cab(path, rows):
    path.write_text("\n".join(rows) + "\n")


class TestParse:
    def test_reverse_chronological_input_sorted(self, tmp_path):
        p = tmp_path / "new_abc.txt"
        write_cab(p, [
            "37.75200 -122.39400 0 1213084747",
            "37.75134 -122.39488 1 1213084687",
        ])
        times, coords = parse_cabspotting_file(p)
        assert times[0] < times[1]
        assert coords[0][0] == pytest.approx(37.75134)

    def test_rejects_bad_fields(self, tmp_path):
        p = tmp_path / "new_bad.txt"
        write_cab(p, ["37.75 -122.39 0"])
        with pytest.raises(TraceFormatError):
            parse_cabspotting_file(p)

    def test_rejects_empty(self, tmp_path):
        p = tmp_path / "new_empty.txt"
        p.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            parse_cabspotting_file(p)

    def test_whitespace_only_counts_as_empty(self, tmp_path):
        p = tmp_path / "new_ws.txt"
        p.write_text("\n   \n\t\n")
        with pytest.raises(TraceFormatError, match="empty"):
            parse_cabspotting_file(p)

    def test_rejects_non_numeric_fields(self, tmp_path):
        p = tmp_path / "new_nan.txt"
        write_cab(p, ["north west 0 1213084747"])
        with pytest.raises(TraceFormatError, match=r"new_nan\.txt:1"):
            parse_cabspotting_file(p)

    def test_rejects_non_utf8_bytes(self, tmp_path):
        """A corrupted download raises a trace error, not UnicodeDecodeError."""
        p = tmp_path / "new_bin.txt"
        p.write_bytes(b"37.75 -122.39 0 1213084747\n\xff\xfe\x80 junk\n")
        with pytest.raises(TraceFormatError, match="not UTF-8"):
            parse_cabspotting_file(p)

    def test_out_of_order_timestamps_are_sorted(self, tmp_path):
        """Shuffled (not just reversed) fixes still come out chronological."""
        p = tmp_path / "new_shuf.txt"
        write_cab(p, [
            "37.753 -122.393 0 1213084700",
            "37.751 -122.391 0 1213084500",
            "37.754 -122.394 0 1213084800",
            "37.752 -122.392 1 1213084600",
        ])
        times, coords = parse_cabspotting_file(p)
        assert list(times) == sorted(times)
        # Coordinates follow their timestamps through the sort.
        assert coords[0][0] == pytest.approx(37.751)
        assert coords[-1][0] == pytest.approx(37.754)


class TestLoadDir:
    def test_builds_playback_mobility(self, tmp_path):
        base = 1213084000
        for cab in ("aa", "bb", "cc"):
            rows = [
                f"37.7{i} -122.4{i} 0 {base + 600 * (5 - i)}" for i in range(5)
            ]
            write_cab(tmp_path / f"new_{cab}.txt", rows)
        mobility = load_cabspotting_dir(tmp_path, n_taxis=2, duration=3000.0,
                                        grid_step=60.0)
        assert mobility.n_nodes == 2
        mobility.initialize(np.random.default_rng(0))
        pos = mobility.advance(100.0)
        assert pos.shape == (2, 2)
        assert np.all(pos >= 0.0)  # shifted to non-negative coordinates

    def test_missing_dir_content(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_cabspotting_dir(tmp_path)

    def test_single_cab_trace(self, tmp_path):
        """One cab file is a degenerate but valid fleet."""
        base = 1213084000
        rows = [f"37.7{i} -122.4{i} 0 {base + 600 * i}" for i in range(4)]
        write_cab(tmp_path / "new_solo.txt", rows)
        mobility = load_cabspotting_dir(tmp_path, n_taxis=5, duration=1800.0,
                                        grid_step=60.0)
        assert mobility.n_nodes == 1
        mobility.initialize(np.random.default_rng(0))
        pos = mobility.advance(0.0)
        assert pos.shape == (1, 2)
        assert np.all(np.isfinite(pos))

    def test_cab_silent_in_window_is_parked(self, tmp_path):
        """A cab with no fixes inside the clip window stays at its first fix."""
        base = 1213084000
        write_cab(tmp_path / "new_aa.txt", [
            f"37.70 -122.40 0 {base}",
            f"37.71 -122.41 0 {base + 300}",
        ])
        # Second cab only reports long after the 600 s window.
        write_cab(tmp_path / "new_bb.txt", [
            f"37.80 -122.50 0 {base + 5000}",
            f"37.81 -122.51 0 {base + 6000}",
        ])
        mobility = load_cabspotting_dir(tmp_path, duration=600.0,
                                        grid_step=60.0)
        assert mobility.n_nodes == 2
        mobility.initialize(np.random.default_rng(0))
        early = mobility.advance(0.0).copy()
        late = mobility.advance(600.0)
        assert np.allclose(early[1], late[1])  # parked cab never moves


class TestSynthetic:
    def test_returns_taxi_fleet_with_paper_default_size(self):
        fleet = synthetic_epfl()
        assert isinstance(fleet, TaxiFleet)
        assert fleet.n_nodes == 200

    def test_kwargs_forwarded(self):
        fleet = synthetic_epfl(n_taxis=30, n_hotspots=3)
        assert fleet.n_nodes == 30
        assert fleet.n_hotspots == 3
