"""Movement trace round-trip and error handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.format import read_movement_trace, write_movement_trace


def test_round_trip(tmp_path):
    times = np.array([0.0, 10.0, 20.0])
    positions = np.array(
        [
            [[0.0, 0.0], [5.0, 5.0]],
            [[1.0, 0.0], [5.0, 6.0]],
            [[2.0, 0.0], [5.0, 7.0]],
        ]
    )
    path = tmp_path / "trace.txt"
    write_movement_trace(path, times, positions)
    mobility = read_movement_trace(path)
    mobility.initialize(np.random.default_rng(0))
    assert mobility.n_nodes == 2
    assert np.allclose(mobility.advance(10.0), positions[1])
    assert np.allclose(mobility.advance(15.0), (positions[1] + positions[2]) / 2)


def test_write_shape_mismatch(tmp_path):
    with pytest.raises(TraceFormatError):
        write_movement_trace(tmp_path / "x.txt", np.array([0.0, 1.0]),
                             np.zeros((3, 2, 2)))


def test_read_missing_header(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("not a header\n")
    with pytest.raises(TraceFormatError):
        read_movement_trace(p)


def test_read_bad_line(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 10 0 10 0 10\n0.0 0 1.0\n")
    with pytest.raises(TraceFormatError):
        read_movement_trace(p)


def test_read_sparse_ids_rejected(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 10 0 10 0 10\n0.0 0 1.0 1.0\n0.0 5 2.0 2.0\n")
    with pytest.raises(TraceFormatError):
        read_movement_trace(p)


def test_read_skips_comments_and_blanks(tmp_path):
    p = tmp_path / "t.txt"
    p.write_text(
        "0 10 0 10 0 10\n"
        "# a comment\n"
        "\n"
        "0.0 0 1.0 1.0\n"
        "10.0 0 2.0 2.0\n"
    )
    mobility = read_movement_trace(p)
    assert mobility.n_nodes == 1


def test_node_missing_early_sample_rejected(tmp_path):
    p = tmp_path / "t.txt"
    # Node 1 first appears at t=10 with nothing at t=0.
    p.write_text(
        "0 10 0 10 0 10\n"
        "0.0 0 1.0 1.0\n"
        "10.0 0 2.0 2.0\n"
        "10.0 1 3.0 3.0\n"
    )
    with pytest.raises(TraceFormatError):
        read_movement_trace(p)
