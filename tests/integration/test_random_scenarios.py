"""Property-based whole-simulation fuzzing.

Hypothesis draws small random scenario configurations (policy, router,
mobility, copies, buffer, traffic, seed) and runs them end to end, checking
the invariants that must hold for *every* configuration.  This is the
broadest net against interaction bugs between subsystems.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import build_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.units import kbps, megabytes

scenario_configs = st.builds(
    ScenarioConfig,
    name=st.just("fuzz"),
    n_nodes=st.integers(min_value=3, max_value=10),
    sim_time=st.sampled_from([300.0, 600.0]),
    mobility=st.sampled_from(["rwp", "random-walk", "random-direction", "taxi"]),
    area=st.just((600.0, 500.0)),
    speed_range=st.sampled_from([(2.0, 2.0), (1.0, 6.0)]),
    radio_range=st.sampled_from([60.0, 120.0]),
    bandwidth=st.just(kbps(250)),
    buffer_bytes=st.sampled_from([megabytes(1.0), megabytes(2.5)]),
    message_size=st.sampled_from([megabytes(0.25), megabytes(0.5)]),
    interval_range=st.sampled_from([(20.0, 30.0), (60.0, 80.0)]),
    ttl=st.sampled_from([300.0, 600.0]),
    initial_copies=st.integers(min_value=1, max_value=8),
    router=st.sampled_from(["snw", "epidemic", "direct", "first-contact",
                            "snf", "prophet"]),
    policy=st.sampled_from(["fifo", "lifo", "random", "snw-o", "snw-c",
                            "mofo", "shli", "sdsrp", "sdsrp-knapsack",
                            "gbsd"]),
    deliverable_first=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
)


@given(scenario_configs)
@settings(max_examples=12, deadline=None)
def test_any_configuration_upholds_invariants(config):
    built = build_scenario(config)

    def check(_t):
        for node in built.nodes:
            buffer = node.buffer
            assert buffer.used <= buffer.capacity
            assert buffer.used == sum(m.size for m in buffer)
            for msg in buffer:
                assert 1 <= msg.copies <= msg.initial_copies
                assert msg.destination != node.id

    built.sim.listeners.subscribe("world.updated", check)
    built.sim.run()

    metrics = built.metrics
    assert 0 <= metrics.delivered <= metrics.created
    assert metrics.relayed >= metrics.delivered - metrics.created or True
    assert metrics.relayed_accepted <= metrics.relayed
    assert all(h >= 1 for h in metrics.hop_counts)
    assert all(lat >= 0 for lat in metrics.latencies)
    assert built.sim.now == config.sim_time
