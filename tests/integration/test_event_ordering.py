"""Cross-subsystem event-ordering guarantees.

The hybrid loop's contract: at any timestamp, world maintenance
(PRIORITY_WORLD) runs before message-level events, so connectivity is
current when routing logic fires; link teardown aborts in-flight transfers
before any completion at the same instant could fire.
"""

from __future__ import annotations

from repro.engine.events import PRIORITY_NORMAL, PRIORITY_WORLD
from repro.engine.simulator import Simulator
from tests.helpers import build_micro_world, make_message, scripted_mobility


def test_world_priority_runs_before_normal_events():
    sim = Simulator(end_time=10.0)
    order = []
    sim.schedule_at(5.0, lambda: order.append("normal"), priority=PRIORITY_NORMAL)
    sim.schedule_at(5.0, lambda: order.append("world"), priority=PRIORITY_WORLD)
    sim.run()
    assert order == ["world", "normal"]


def test_link_down_aborts_before_completion_at_same_tick():
    """A transfer whose completion coincides with the link-down tick dies.

    The link drops at t=18 (world update, priority -10) while the transfer
    would complete at t≈17.8; run the razor's edge: make the completion land
    exactly after the link-down by timing the contact window to less than
    the ~16.8 s transfer time.
    """
    mobility = scripted_mobility(
        [0.0, 14.0, 15.0, 60.0],
        [
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (900.0, 900.0)],
            [(0.0, 0.0), (900.0, 900.0)],
        ],
    )
    mw = build_micro_world(mobility=mobility, sim_time=60.0)
    mw.router(0).create_message(make_message(source=0, destination=1))
    mw.sim.run()
    # ~15 s of contact < 16.8 s transfer: never delivered, cleanly aborted.
    assert mw.metrics.delivered == 0
    assert mw.metrics.aborted == 1
    assert not mw.nodes[0].sending
    assert "M1" in mw.nodes[0].buffer


def test_messages_created_at_tick_see_current_links():
    """A message created by an event at the same instant as a world tick
    observes the post-tick neighbor set (world ran first)."""
    mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)], sim_time=50.0)
    outcome = {}

    def create():
        outcome["neighbors"] = dict(mw.nodes[0].neighbors)
        mw.router(0).create_message(make_message(source=0, destination=1))

    # t=3.0 coincides with a world tick; PRIORITY_NORMAL fires after it.
    mw.sim.schedule_at(3.0, create)
    mw.sim.run()
    assert 1 in outcome["neighbors"]
    assert mw.metrics.delivered == 1
