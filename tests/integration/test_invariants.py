"""System-level invariants checked during full (small) simulations.

These are the properties that must hold for *any* policy/router combination:

* buffers never exceed capacity;
* Spray-and-Wait tokens for a message never increase after creation;
* delivered + still-circulating + dropped accounting is consistent;
* same seed ⇒ bit-identical metrics.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_scenario, run_scenario
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario

POLICIES = ("fifo", "lifo", "random", "snw-o", "snw-c", "mofo", "shli",
            "sdsrp", "sdsrp-oracle")


def small(policy: str, seed: int = 3):
    return scale_scenario(
        random_waypoint_scenario(policy=policy, seed=seed),
        node_factor=0.15,
        time_factor=0.08,
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_buffers_never_over_capacity(policy):
    built = build_scenario(small(policy))

    def check(_t):
        for node in built.nodes:
            assert node.buffer.used <= node.buffer.capacity

    built.sim.listeners.subscribe("world.updated", check)
    built.sim.run()


@pytest.mark.parametrize("policy", ("fifo", "snw-o", "snw-c", "sdsrp"))
def test_spray_tokens_never_increase(policy):
    built = build_scenario(small(policy))
    high_water: dict[str, int] = {}
    initial: dict[str, int] = {}

    built.sim.listeners.subscribe(
        "message.created", lambda m: initial.setdefault(m.msg_id, m.copies)
    )

    def check(_t):
        totals: dict[str, int] = {}
        for node in built.nodes:
            for msg in node.buffer:
                totals[msg.msg_id] = totals.get(msg.msg_id, 0) + msg.copies
        for mid, total in totals.items():
            assert total <= initial.get(mid, total)
            # Tokens never grow between observations either.
            if mid in high_water:
                assert total <= high_water[mid]
            high_water[mid] = total

    built.sim.listeners.subscribe("world.updated", check)
    built.sim.run()


@pytest.mark.parametrize("policy", ("fifo", "sdsrp"))
def test_message_accounting_consistent(policy):
    summary = run_scenario(small(policy))
    assert summary.delivered <= summary.created
    assert summary.relayed >= summary.delivered
    assert summary.created > 0


def test_same_seed_identical_metrics():
    a = run_scenario(small("sdsrp", seed=9))
    b = run_scenario(small("sdsrp", seed=9))
    keys = ("created", "delivered", "relayed", "delivery_ratio",
            "average_hopcount", "overhead_ratio", "contacts")
    for key in keys:
        va, vb = getattr(a, key), getattr(b, key)
        assert va == vb or (va != va and vb != vb), key  # NaN-safe


def test_hopcounts_at_least_one():
    built = build_scenario(small("fifo"))
    hops: list[int] = []
    built.sim.listeners.subscribe(
        "message.delivered", lambda m, s, r: hops.append(m.hop_count)
    )
    built.sim.run()
    assert all(h >= 1 for h in hops)


def test_no_duplicate_copies_in_one_buffer():
    built = build_scenario(small("fifo"))

    def check(_t):
        for node in built.nodes:
            ids = node.buffer.ids()
            assert len(ids) == len(set(ids))

    built.sim.listeners.subscribe("world.updated", check)
    built.sim.run()


def test_destination_never_buffers_own_messages():
    built = build_scenario(small("sdsrp"))

    def check(_t):
        for node in built.nodes:
            for msg in node.buffer:
                assert msg.destination != node.id

    built.sim.listeners.subscribe("world.updated", check)
    built.sim.run()
