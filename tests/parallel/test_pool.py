"""Process-pool map: ordering, serial/parallel equivalence."""

from __future__ import annotations

from repro.parallel.pool import default_workers, parallel_map


def square(x: int) -> int:
    return x * x


def test_serial_path():
    assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]


def test_empty_input():
    assert parallel_map(square, [], workers=4) == []


def test_single_item_runs_inline():
    assert parallel_map(square, [7], workers=8) == [49]


def test_parallel_matches_serial_order():
    items = list(range(20))
    serial = parallel_map(square, items, workers=1)
    parallel = parallel_map(square, items, workers=2)
    assert serial == parallel


def test_default_workers_positive():
    assert default_workers() >= 1
