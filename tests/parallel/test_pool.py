"""Process-pool map: ordering, serial/parallel equivalence, resilience."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import SweepInterrupted
from repro.parallel.pool import _pool_context, default_workers, parallel_map


def square(x: int) -> int:
    return x * x


def flaky(x: int) -> int:
    """Raises on negative inputs (picklable, for spawn workers)."""
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x * x


def hang_or_square(x):
    if x == "hang":
        time.sleep(60.0)
    return x * x


def die_or_square(x):
    if x == "die":
        os._exit(1)  # hard worker death, not an exception
    return x * x


def test_serial_path():
    assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]


def test_empty_input():
    assert parallel_map(square, [], workers=4) == []


def test_single_item_runs_inline():
    assert parallel_map(square, [7], workers=8) == [49]


def test_parallel_matches_serial_order():
    items = list(range(20))
    serial = parallel_map(square, items, workers=1)
    parallel = parallel_map(square, items, workers=2)
    assert serial == parallel


def test_default_workers_positive():
    assert default_workers() >= 1


def test_pool_uses_spawn_start_method():
    # Workers must not inherit forked parent state (macOS/Windows parity).
    assert _pool_context().get_start_method() == "spawn"


class TestOnError:
    def test_serial_on_error_takes_the_slot(self):
        calls = []

        def absorb(item, exc):
            calls.append((item, type(exc)))
            return -1

        got = parallel_map(flaky, [2, -3, 4], workers=1, on_error=absorb)
        assert got == [4, -1, 16]
        assert calls == [(-3, ValueError)]

    def test_parallel_on_error_takes_the_slot(self):
        got = parallel_map(
            flaky, [2, -3, 4], workers=2, on_error=lambda item, exc: -1
        )
        assert got == [4, -1, 16]

    def test_without_on_error_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(flaky, [2, -3, 4], workers=1)
        with pytest.raises(ValueError):
            parallel_map(flaky, [2, -3, 4], workers=2)


class TestOnResult:
    def test_reports_in_input_order(self):
        seen = []
        parallel_map(
            square, [3, 1, 2], workers=2,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert seen == [(0, 9), (1, 1), (2, 4)]


class TestTimeout:
    def test_hung_item_becomes_error_and_rest_complete(self):
        got = parallel_map(
            hang_or_square, [2, "hang", 3], workers=2, timeout=1.0,
            on_error=lambda item, exc: "timed-out",
        )
        assert got == [4, "timed-out", 9]

    def test_timeout_without_on_error_raises(self):
        with pytest.raises(SweepInterrupted):
            parallel_map(hang_or_square, [2, "hang", 3], workers=2,
                         timeout=1.0)


class TestWorkerDeath:
    def test_dead_worker_becomes_error_and_rest_complete(self):
        got = parallel_map(
            die_or_square, [2, "die", 3, 4], workers=2, timeout=30.0,
            on_error=lambda item, exc: "crashed",
        )
        # A dying worker breaks the whole pool, so item 0 is "crashed" too
        # unless its future resolved before the break — both are valid.
        assert got[0] in (4, "crashed")
        assert got[1] == "crashed"
        # Items after the rebuild still completed.
        assert got[2:] == [9, 16]


def log_then_return(item):
    """Sleeps, optionally SIGKILLs its own worker, else logs one line.

    The log file counts executions — the harvest regression asserts an
    item that completed on a dying pool is *not* recomputed on the fresh
    one.  Module-level so spawn workers can unpickle it.
    """
    tag, delay, logdir = item
    time.sleep(delay)
    if tag == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    with open(
        os.path.join(logdir, f"{tag}.log"), "a", encoding="utf-8"
    ) as fh:
        fh.write(f"{os.getpid()}\n")
    return tag


class TestHarvestAfterWorkerDeath:
    def test_completed_items_harvested_not_recomputed(self, tmp_path):
        # Worker 2 sleeps 2s then SIGKILLs itself; worker 1 meanwhile
        # finishes a, b and c.  When the pool breaks, b and c have
        # completed futures — the rebuild must harvest them, not rerun
        # them (each log file counts executions).
        items = [
            ("a", 0.0, str(tmp_path)),
            ("kill", 2.0, str(tmp_path)),
            ("b", 0.0, str(tmp_path)),
            ("c", 0.0, str(tmp_path)),
        ]
        seen = []
        got = parallel_map(
            log_then_return, items, workers=2,
            on_error=lambda item, exc: "crashed",
            on_result=lambda i, r: seen.append(i),
        )
        assert got == ["a", "crashed", "b", "c"]
        assert seen == [0, 1, 2, 3]  # input order, despite the break
        for tag in ("a", "b", "c"):
            runs = (tmp_path / f"{tag}.log").read_text().splitlines()
            assert len(runs) == 1, f"item {tag} ran {len(runs)} times"

    def test_unfinished_item_is_retried_on_a_fresh_pool(self, tmp_path):
        # The SIGKILL lands while d is still running, so d's future is
        # broken with the pool: it must be resubmitted (exactly one
        # completed execution) and keep its slot.
        items = [("kill", 0.5, str(tmp_path)), ("d", 3.0, str(tmp_path))]
        got = parallel_map(
            log_then_return, items, workers=2, timeout=30.0,
            on_error=lambda item, exc: "crashed",
        )
        assert got == ["crashed", "d"]
        runs = (tmp_path / "d.log").read_text().splitlines()
        assert len(runs) == 1


def die_twice_or_square(item):
    """Dies on its first execution for "die-*" items, succeeds on retry.

    The death marker file makes the crash once-per-item across pool
    rebuilds without any shared state in the parent.
    """
    tag, logdir = item
    marker = os.path.join(logdir, f"{tag}.died")
    if tag.startswith("die") and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    with open(
        os.path.join(logdir, f"{tag}.log"), "a", encoding="utf-8"
    ) as fh:
        fh.write(f"{os.getpid()}\n")
    return tag


class TestTwoDeathsSameGeneration:
    def test_two_workers_dying_together_cost_two_rebuilds_not_the_map(
        self, tmp_path
    ):
        """Both workers of the first pool generation die at once.

        A broken pool only attributes the failure to the first item the
        parent is awaiting; the other in-flight item is resubmitted on the
        fresh pool, where its own death triggers a second rebuild.  The
        regression pins that no item is lost, duplicated, or reordered
        across the two consecutive rebuilds — and that the items after the
        break still complete exactly once each.
        """
        items = [
            ("die-a", str(tmp_path)),
            ("die-b", str(tmp_path)),
            ("c", str(tmp_path)),
            ("d", str(tmp_path)),
        ]
        seen = []
        absorbed = []

        def absorb(item, exc):
            absorbed.append(item[0])
            return "crashed"

        got = parallel_map(
            die_twice_or_square, items, workers=2, timeout=60.0,
            on_error=absorb, on_result=lambda i, r: seen.append(i),
        )
        # Each die-* item either crashed its slot or (having already
        # burned its one death on a pool that broke before its result was
        # awaited) completed on a later generation — both are correct;
        # what is pinned is slot stability and input-order settlement.
        assert len(got) == 4
        assert got[0] in ("die-a", "crashed")
        assert got[1] in ("die-b", "crashed")
        assert got[2:] == ["c", "d"]
        assert "crashed" in got[:2], "at least one death must surface"
        assert seen == [0, 1, 2, 3]
        assert set(absorbed) <= {"die-a", "die-b"}
        for tag in ("c", "d"):
            runs = (tmp_path / f"{tag}.log").read_text().splitlines()
            assert len(runs) == 1, f"item {tag} ran {len(runs)} times"

    def test_retry_seeds_for_crashed_items_are_fresh_and_distinct(self):
        """The sweep convention layered on top of on_error: each crashed
        item retries under a derived seed, so two items dying in the same
        generation never retry correlated."""
        from repro.rng import derive_seed

        base_a, base_b = 101, 202
        retry_a = [derive_seed(base_a, "retry", k) for k in (1, 2)]
        retry_b = [derive_seed(base_b, "retry", k) for k in (1, 2)]
        all_seeds = [base_a, base_b, *retry_a, *retry_b]
        assert len(set(all_seeds)) == len(all_seeds)
        # Deterministic: the same crash replays the same retry schedule.
        assert retry_a == [derive_seed(base_a, "retry", k) for k in (1, 2)]
