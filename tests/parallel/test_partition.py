"""Work partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.parallel.partition import chunk_evenly, chunk_sized


class TestChunkSized:
    def test_basic(self):
        assert chunk_sized([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_sized([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_preserves_order(self, items, size):
        chunks = chunk_sized(items, size)
        assert [x for c in chunks for x in c] == items
        assert all(1 <= len(c) <= size for c in chunks)


class TestChunkEvenly:
    def test_basic(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_parts_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_evenly([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_balanced_and_order_preserving(self, items, parts):
        chunks = chunk_evenly(items, parts)
        assert [x for c in chunks for x in c] == items
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1
