"""Work partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.parallel.partition import (
    chunk_evenly,
    chunk_exact,
    chunk_sized,
    stripe_spans,
)


class TestChunkSized:
    def test_basic(self):
        assert chunk_sized([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_sized([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_preserves_order(self, items, size):
        chunks = chunk_sized(items, size)
        assert [x for c in chunks for x in c] == items
        assert all(1 <= len(c) <= size for c in chunks)


class TestChunkEvenly:
    def test_basic(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_parts_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_evenly([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_balanced_and_order_preserving(self, items, parts):
        chunks = chunk_evenly(items, parts)
        assert [x for c in chunks for x in c] == items
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1


class TestChunkExact:
    def test_pads_with_empty_chunks(self):
        assert chunk_exact([1, 2], 5) == [[1], [2], [], [], []]

    def test_matches_chunk_evenly_when_items_suffice(self):
        assert chunk_exact([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_exact([1], 0)

    def test_safe_to_zip_against_fixed_id_list(self):
        """The contract chunk_evenly cannot offer: with parts > len(items),
        zip(ids, chunk_evenly(...)) silently drops trailing ids; chunk_exact
        keeps every consumer slot addressable."""
        ids = list(range(5))
        assigned = dict(zip(ids, chunk_exact(["a", "b"], 5)))
        assert set(assigned) == set(ids)
        assert assigned == {0: ["a"], 1: ["b"], 2: [], 3: [], 4: []}
        truncated = dict(zip(ids, chunk_evenly(["a", "b"], 5)))
        assert set(truncated) != set(ids), "the hazard chunk_exact fixes"

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_exact_count_balanced_and_order_preserving(self, items, parts):
        chunks = chunk_exact(items, parts)
        assert len(chunks) == parts
        assert [x for c in chunks for x in c] == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_chunk_evenly_is_chunk_exact_minus_empties(self, items, parts):
        assert chunk_evenly(items, parts) == [
            c for c in chunk_exact(items, parts) if c
        ]


class TestStripeSpans:
    def test_exact_count_and_tiling(self):
        spans = stripe_spans(1000.0, 4)
        assert spans == [
            (0.0, 250.0), (250.0, 500.0), (500.0, 750.0), (750.0, 1000.0)
        ]

    def test_last_upper_bound_is_exactly_total(self):
        # total/parts does not divide evenly in binary; the final edge must
        # still be the exact total, not an accumulated approximation.
        spans = stripe_spans(10.0, 3)
        assert len(spans) == 3
        assert spans[0][0] == 0.0 and spans[-1][1] == 10.0
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stripe_spans(1000.0, 0)
        with pytest.raises(ConfigurationError):
            stripe_spans(0.0, 2)
        with pytest.raises(ConfigurationError):
            stripe_spans(-5.0, 2)
