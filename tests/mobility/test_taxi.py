"""Synthetic taxi fleet: the statistical features the EPFL substitute claims.

DESIGN.md §1 promises the substitute preserves (a) hotspot aggregation,
(b) fewer contacts than RWP at equal density, (c) roughly exponential
intermeeting tails.  (a) and (b) are asserted here; (c) is exercised by the
Fig. 3 benchmark and tests/integration/test_reproduction_shape.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.taxi import TaxiFleet


def make(n=30, seed=0, **kw):
    m = TaxiFleet(n, **kw)
    m.initialize(np.random.default_rng(seed))
    return m


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            TaxiFleet(10, n_hotspots=0)
        with pytest.raises(ConfigurationError):
            TaxiFleet(10, hotspot_prob=1.5)
        with pytest.raises(ConfigurationError):
            TaxiFleet(10, hotspot_sigma=0.0)


class TestMovement:
    def test_stays_in_area(self):
        m = make(seed=3)
        w, h = m.area
        for t in range(0, 3000, 100):
            pos = m.advance(float(t))
            assert np.all((pos[:, 0] >= 0) & (pos[:, 0] <= w))
            assert np.all((pos[:, 1] >= 0) & (pos[:, 1] <= h))

    def test_deterministic(self):
        a, b = make(seed=4), make(seed=4)
        assert np.array_equal(a.advance(1000.0), b.advance(1000.0))


class TestAggregation:
    def _mean_hotspot_distance(self, m: TaxiFleet, samples: int = 30) -> float:
        dists = []
        for t in range(0, samples * 100, 100):
            pos = m.advance(float(t))
            d = np.min(
                np.hypot(
                    pos[:, None, 0] - m.hotspots[None, :, 0],
                    pos[:, None, 1] - m.hotspots[None, :, 1],
                ),
                axis=1,
            )
            dists.append(d.mean())
        return float(np.mean(dists))

    def test_taxis_cluster_near_hotspots(self):
        clustered = make(seed=5, hotspot_prob=0.9)
        diffuse = make(seed=5, hotspot_prob=0.0)
        # Compare against the same hotspot layout: copy it over.
        diffuse._hotspots = clustered.hotspots.copy()
        assert (
            self._mean_hotspot_distance(clustered)
            < 0.6 * self._mean_hotspot_distance(diffuse)
        )

    def test_pairwise_meeting_rates_are_heterogeneous(self):
        """Some pairs co-locate far more than others (unlike RWP)."""
        m = make(n=20, seed=6)
        close_counts = np.zeros((20, 20))
        for t in range(0, 20000, 50):
            pos = m.advance(float(t))
            d = np.hypot(
                pos[:, None, 0] - pos[None, :, 0],
                pos[:, None, 1] - pos[None, :, 1],
            )
            close_counts += d < 200.0
        iu = np.triu_indices(20, k=1)
        rates = close_counts[iu]
        assert rates.max() > 4 * max(rates.min(), 1)


class TestHotspotTargets:
    def test_targets_biased_toward_hotspots(self):
        m = make(seed=7, hotspot_prob=1.0, hotspot_sigma=100.0)
        rng = np.random.default_rng(8)
        targets = m.sample_targets(500, rng)
        d = np.min(
            np.hypot(
                targets[:, None, 0] - m.hotspots[None, :, 0],
                targets[:, None, 1] - m.hotspots[None, :, 1],
            ),
            axis=1,
        )
        # Nearly all targets within ~4 sigma of some hotspot.
        assert (d < 400.0).mean() > 0.95

    def test_zipf_weights_favor_first_hotspot(self):
        m = make(seed=9, n_hotspots=5, hotspot_prob=1.0, hotspot_sigma=1.0)
        rng = np.random.default_rng(10)
        targets = m.sample_targets(2000, rng)
        nearest = np.argmin(
            np.hypot(
                targets[:, None, 0] - m.hotspots[None, :, 0],
                targets[:, None, 1] - m.hotspots[None, :, 1],
            ),
            axis=1,
        )
        counts = np.bincount(nearest, minlength=5)
        assert counts[0] == counts.max()
        assert counts[0] > 2.5 * counts[4]
