"""Mobility contract: initialization, monotone advance, sub-stepping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.stationary import Stationary


def test_advance_before_initialize_fails():
    m = RandomWaypoint(4, (100.0, 100.0))
    with pytest.raises(SimulationError):
        m.advance(1.0)


def test_advance_cannot_rewind():
    m = RandomWaypoint(4, (100.0, 100.0))
    m.initialize(np.random.default_rng(0))
    m.advance(10.0)
    with pytest.raises(SimulationError):
        m.advance(5.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        RandomWaypoint(0, (100.0, 100.0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(4, (0.0, 100.0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(4, (100.0, 100.0), speed_range=(0.0, 1.0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(4, (100.0, 100.0), speed_range=(3.0, 2.0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(4, (100.0, 100.0), pause_range=(-1.0, 0.0))


def test_large_advance_is_subdivided():
    """A big jump must not move nodes further than speed allows."""
    m = RandomWaypoint(8, (10_000.0, 10_000.0), speed_range=(2.0, 2.0))
    m.initialize(np.random.default_rng(1))
    before = m.positions.copy()
    m.advance(500.0)
    moved = np.hypot(*(m.positions - before).T)
    assert np.all(moved <= 2.0 * 500.0 + 1e-6)


def test_reinitialize_resets_time():
    m = Stationary(2, (10.0, 10.0))
    m.initialize(np.random.default_rng(0))
    m.advance(100.0)
    m.initialize(np.random.default_rng(0))
    m.advance(1.0)  # would raise if time had not reset
