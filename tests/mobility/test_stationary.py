"""Stationary placement."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.stationary import Stationary


def test_explicit_points_never_move():
    pts = [(1.0, 2.0), (3.0, 4.0)]
    m = Stationary(2, (10.0, 10.0), points=pts)
    m.initialize(np.random.default_rng(0))
    assert np.allclose(m.advance(0.0), pts)
    assert np.allclose(m.advance(1000.0), pts)


def test_random_points_drawn_once():
    m = Stationary(5, (100.0, 100.0))
    m.initialize(np.random.default_rng(1))
    first = m.advance(0.0).copy()
    assert np.allclose(m.advance(500.0), first)
    assert np.all((first >= 0) & (first <= 100.0))


def test_shape_validation():
    with pytest.raises(ConfigurationError):
        Stationary(3, (10.0, 10.0), points=[(0.0, 0.0)])


def test_initial_copy_is_independent():
    pts = np.array([[1.0, 1.0], [2.0, 2.0]])
    m = Stationary(2, (10.0, 10.0), points=pts)
    m.initialize(np.random.default_rng(0))
    m.positions[0, 0] = 99.0  # simulate accidental mutation
    assert pts[0, 0] == 1.0  # original array untouched
