"""Random-direction mobility: travel-to-wall behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mobility.random_direction import RandomDirection

AREA = (300.0, 300.0)


def make(n=8, seed=0, **kw):
    m = RandomDirection(n, AREA, **kw)
    m.initialize(np.random.default_rng(seed))
    return m


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=15)
def test_stays_in_area(seed):
    m = make(seed=seed, speed_range=(2.0, 12.0))
    for t in range(0, 300, 15):
        pos = m.advance(float(t))
        assert np.all((pos[:, 0] >= 0) & (pos[:, 0] <= AREA[0]))
        assert np.all((pos[:, 1] >= 0) & (pos[:, 1] <= AREA[1]))


def test_reaches_walls():
    """Nodes travel until a boundary — wall contacts must occur."""
    m = make(n=20, seed=1, speed_range=(10.0, 10.0))
    touched = False
    for t in range(0, 400, 5):
        pos = m.advance(float(t))
        on_wall = (
            (pos[:, 0] <= 1e-6) | (pos[:, 0] >= AREA[0] - 1e-6)
            | (pos[:, 1] <= 1e-6) | (pos[:, 1] >= AREA[1] - 1e-6)
        )
        touched = touched or bool(on_wall.any())
    assert touched


def test_pause_at_wall():
    m = make(n=6, seed=2, speed_range=(50.0, 50.0), pause_range=(1e6, 1e6))
    m.advance(30.0)  # everyone hit a wall and paused forever
    frozen = m.positions.copy()
    m.advance(300.0)
    assert np.allclose(m.positions, frozen)


def test_validation():
    with pytest.raises(ConfigurationError):
        RandomDirection(4, AREA, speed_range=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        RandomDirection(4, AREA, pause_range=(5.0, 1.0))


def test_deterministic():
    a, b = make(seed=9), make(seed=9)
    assert np.array_equal(a.advance(100.0), b.advance(100.0))
