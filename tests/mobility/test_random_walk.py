"""Random-walk mobility: bounds, reflection, leg redraws."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mobility.random_walk import RandomWalk, reflect

AREA = (500.0, 400.0)


def make(n=8, seed=0, **kw):
    m = RandomWalk(n, AREA, **kw)
    m.initialize(np.random.default_rng(seed))
    return m


class TestReflect:
    def test_inside_unchanged(self):
        x = np.array([0.0, 5.0, 10.0])
        assert np.allclose(reflect(x, 10.0), x)

    def test_single_bounce(self):
        assert reflect(np.array([12.0]), 10.0)[0] == pytest.approx(8.0)
        assert reflect(np.array([-3.0]), 10.0)[0] == pytest.approx(3.0)

    def test_multiple_bounces(self):
        # 47 over a [0, 10] segment: 47 mod 20 = 7 -> 7
        assert reflect(np.array([47.0]), 10.0)[0] == pytest.approx(7.0)
        # 33 mod 20 = 13 -> 20 - 13 = 7
        assert reflect(np.array([33.0]), 10.0)[0] == pytest.approx(7.0)

    @given(st.floats(min_value=-1e4, max_value=1e4))
    def test_always_in_bounds(self, x):
        out = reflect(np.array([x]), 10.0)[0]
        assert 0.0 <= out <= 10.0


class TestWalk:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15)
    def test_stays_in_area(self, seed):
        m = make(seed=seed, speed_range=(1.0, 8.0), leg_length=60.0)
        for t in range(0, 400, 20):
            pos = m.advance(float(t))
            assert np.all((pos[:, 0] >= 0) & (pos[:, 0] <= AREA[0]))
            assert np.all((pos[:, 1] >= 0) & (pos[:, 1] <= AREA[1]))

    def test_step_bounded_by_speed(self):
        m = make(speed_range=(3.0, 3.0))
        prev = m.advance(0.0).copy()
        for t in range(1, 100):
            cur = m.advance(float(t))
            assert np.all(np.hypot(*(cur - prev).T) <= 3.0 + 1e-9)
            prev = cur.copy()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(4, AREA, speed_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            RandomWalk(4, AREA, leg_length=0.0)

    def test_deterministic(self):
        a, b = make(seed=5), make(seed=5)
        assert np.array_equal(a.advance(200.0), b.advance(200.0))
