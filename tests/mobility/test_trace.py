"""Trace playback: interpolation, clamping, resampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.trace import TraceMobility


def simple_trace():
    times = np.array([0.0, 10.0, 20.0])
    positions = np.array(
        [
            [[0.0, 0.0], [100.0, 0.0]],
            [[10.0, 0.0], [100.0, 10.0]],
            [[20.0, 0.0], [100.0, 20.0]],
        ]
    )
    m = TraceMobility(times, positions)
    m.initialize(np.random.default_rng(0))
    return m


class TestInterpolation:
    def test_exact_sample_times(self):
        m = simple_trace()
        assert np.allclose(m.advance(0.0), [[0, 0], [100, 0]])
        assert np.allclose(m.advance(10.0), [[10, 0], [100, 10]])

    def test_linear_between_samples(self):
        m = simple_trace()
        pos = m.advance(5.0)
        assert np.allclose(pos, [[5.0, 0.0], [100.0, 5.0]])

    def test_holds_after_last_sample(self):
        m = simple_trace()
        assert np.allclose(m.advance(100.0), [[20, 0], [100, 20]])

    def test_fractional_interpolation(self):
        m = simple_trace()
        assert np.allclose(m.advance(12.5), [[12.5, 0.0], [100.0, 12.5]])


class TestValidation:
    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            TraceMobility(np.array([0.0]), np.zeros((1, 2, 2)))

    def test_times_strictly_increasing(self):
        with pytest.raises(ConfigurationError):
            TraceMobility(np.array([0.0, 0.0]), np.zeros((2, 2, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            TraceMobility(np.array([0.0, 1.0]), np.zeros((3, 2, 2)))


class TestResampling:
    def test_from_node_samples_aligns_irregular_gps(self):
        node0 = (np.array([0.0, 100.0]), np.array([[0.0, 0.0], [100.0, 0.0]]))
        node1 = (np.array([0.0, 50.0, 100.0]),
                 np.array([[0.0, 10.0], [0.0, 60.0], [0.0, 110.0]]))
        m = TraceMobility.from_node_samples([node0, node1], grid_step=25.0)
        m.initialize(np.random.default_rng(0))
        pos = m.advance(50.0)
        assert pos[0] == pytest.approx([50.0, 0.0])
        assert pos[1] == pytest.approx([0.0, 60.0])

    def test_from_node_samples_validation(self):
        with pytest.raises(ConfigurationError):
            TraceMobility.from_node_samples([])
        with pytest.raises(ConfigurationError):
            TraceMobility.from_node_samples(
                [(np.array([0.0]), np.zeros((2, 2)))]
            )
