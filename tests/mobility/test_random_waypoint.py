"""Random-waypoint: bounds, speed, waypoint progress, determinism."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.random_waypoint import RandomWaypoint

AREA = (1000.0, 800.0)


def make(n=10, seed=0, **kw):
    m = RandomWaypoint(n, AREA, **kw)
    m.initialize(np.random.default_rng(seed))
    return m


class TestBounds:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_positions_stay_in_area(self, seed):
        m = make(n=12, seed=seed, speed_range=(2.0, 10.0))
        for t in range(0, 500, 25):
            pos = m.advance(float(t))
            assert np.all(pos[:, 0] >= 0) and np.all(pos[:, 0] <= AREA[0])
            assert np.all(pos[:, 1] >= 0) and np.all(pos[:, 1] <= AREA[1])


class TestSpeed:
    def test_fixed_speed_moves_exactly(self):
        m = make(n=6, speed_range=(2.0, 2.0))
        prev = m.advance(0.0).copy()
        for t in range(1, 200):
            cur = m.advance(float(t))
            step = np.hypot(*(cur - prev).T)
            # each node moves at most speed*dt (less when turning at a
            # waypoint consumes no distance, never more)
            assert np.all(step <= 2.0 + 1e-9)
            prev = cur.copy()

    def test_nodes_actually_move(self):
        m = make(n=6, speed_range=(2.0, 2.0))
        a = m.advance(0.0).copy()
        b = m.advance(300.0)
        assert np.all(np.hypot(*(b - a).T) > 0)


class TestPause:
    def test_pause_halts_movement_at_waypoint(self):
        # Tiny area so waypoints are reached quickly, huge pause.
        m = RandomWaypoint(4, (10.0, 10.0), speed_range=(5.0, 5.0),
                           pause_range=(1e6, 1e6))
        m.initialize(np.random.default_rng(3))
        m.advance(50.0)  # everyone has reached a waypoint and is paused
        frozen = m.positions.copy()
        m.advance(500.0)
        assert np.allclose(m.positions, frozen)


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a, b = make(seed=7), make(seed=7)
        for t in (10.0, 50.0, 123.0):
            assert np.array_equal(a.advance(t), b.advance(t))

    def test_different_seed_different_trajectory(self):
        a, b = make(seed=7), make(seed=8)
        assert not np.array_equal(a.advance(50.0), b.advance(50.0))


class TestUniformity:
    def test_long_run_covers_the_area(self):
        """RWP's stationary distribution is center-biased but spans the area."""
        m = make(n=40, seed=2, speed_range=(10.0, 10.0))
        samples = []
        for t in range(0, 4000, 40):
            samples.append(m.advance(float(t)).copy())
        pts = np.concatenate(samples)
        # Presence in every quadrant of the area.
        for qx in (0, 1):
            for qy in (0, 1):
                in_q = (
                    (pts[:, 0] >= qx * AREA[0] / 2)
                    & (pts[:, 0] < (qx + 1) * AREA[0] / 2)
                    & (pts[:, 1] >= qy * AREA[1] / 2)
                    & (pts[:, 1] < (qy + 1) * AREA[1] / 2)
                )
                assert in_q.mean() > 0.05
