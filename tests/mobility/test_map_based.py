"""Map-based mobility: movement stays on the street graph."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.map_based import MapBasedMobility, grid_map


def make(n=6, seed=0, cols=4, rows=3, **kw):
    graph = grid_map(cols, rows, spacing=100.0)
    m = MapBasedMobility(n, graph, **kw)
    m.initialize(np.random.default_rng(seed))
    return m, graph


def distance_to_graph(point, graph) -> float:
    """Distance from a point to the nearest street segment."""
    px, py = point
    best = math.inf
    for u, v in graph.edges:
        (x1, y1) = graph.nodes[u]["pos"]
        (x2, y2) = graph.nodes[v]["pos"]
        dx, dy = x2 - x1, y2 - y1
        seg_len2 = dx * dx + dy * dy
        t = 0.0 if seg_len2 == 0 else max(
            0.0, min(1.0, ((px - x1) * dx + (py - y1) * dy) / seg_len2)
        )
        cx, cy = x1 + t * dx, y1 + t * dy
        best = min(best, math.hypot(px - cx, py - cy))
    return best


class TestGridMap:
    def test_structure(self):
        g = grid_map(4, 3, spacing=100.0)
        assert g.number_of_nodes() == 12
        assert nx.is_connected(g)
        assert all("pos" in d for _, d in g.nodes(data=True))
        assert all("weight" in d for _, _, d in g.edges(data=True))

    def test_jitter_moves_intersections(self):
        flat = grid_map(3, 3, spacing=100.0)
        bent = grid_map(3, 3, spacing=100.0, jitter=20.0,
                        rng=np.random.default_rng(1))
        p_flat = np.array([d["pos"] for _, d in flat.nodes(data=True)])
        p_bent = np.array([d["pos"] for _, d in bent.nodes(data=True)])
        assert not np.allclose(p_flat, p_bent)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grid_map(1, 3)
        with pytest.raises(ConfigurationError):
            grid_map(3, 3, spacing=0.0)


class TestMovement:
    def test_nodes_start_on_vertices(self):
        m, g = make()
        vertex_positions = {tuple(g.nodes[v]["pos"]) for v in g.nodes}
        for i in range(m.n_nodes):
            assert tuple(m.positions[i]) in vertex_positions

    def test_positions_stay_on_streets(self):
        m, g = make(speed_range=(3.0, 6.0))
        for t in range(0, 400, 7):
            pos = m.advance(float(t))
            for i in range(m.n_nodes):
                assert distance_to_graph(pos[i], g) < 1e-6

    def test_step_bounded_by_speed(self):
        m, _ = make(speed_range=(2.0, 2.0))
        prev = m.advance(0.0).copy()
        for t in range(1, 120):
            cur = m.advance(float(t))
            assert np.all(np.hypot(*(cur - prev).T) <= 2.0 + 1e-9)
            prev = cur.copy()

    def test_pause_at_destination(self):
        m, _ = make(speed_range=(50.0, 50.0), pause_range=(1e6, 1e6))
        m.advance(100.0)  # everyone finished their first route and paused
        frozen = m.positions.copy()
        m.advance(1000.0)
        assert np.allclose(m.positions, frozen)

    def test_deterministic(self):
        a, _ = make(seed=5)
        b, _ = make(seed=5)
        assert np.array_equal(a.advance(200.0), b.advance(200.0))


class TestValidation:
    def test_requires_connected_graph(self):
        g = grid_map(3, 3)
        g.remove_edges_from(list(g.edges((0, 0))))
        with pytest.raises(ConfigurationError):
            MapBasedMobility(4, g)

    def test_requires_pos_attributes(self):
        g = nx.path_graph(5)
        with pytest.raises(ConfigurationError):
            MapBasedMobility(4, g)

    def test_requires_two_vertices(self):
        g = nx.Graph()
        g.add_node(0, pos=(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            MapBasedMobility(2, g)


class TestSimulationIntegration:
    def test_runs_in_a_world(self):
        from tests.helpers import build_micro_world, make_message

        graph = grid_map(3, 3, spacing=60.0)
        mobility = MapBasedMobility(6, graph, speed_range=(2.0, 2.0))
        mw = build_micro_world(mobility=mobility, sim_time=400.0)
        mw.router(0).create_message(
            make_message(source=0, destination=3, copies=4, size=1000)
        )
        mw.sim.run()
        # A 180x120 m map with 100 m radios is well-connected: delivery
        # happens quickly.
        assert mw.metrics.delivered == 1
