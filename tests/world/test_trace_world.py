"""Contact-trace-driven world: replay equivalence and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.net.generator import MessageGenerator, TrafficSpec
from repro.net.transfer import TransferManager
from repro.policies.fifo import FifoPolicy
from repro.reports.metrics import MetricsCollector
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.traces.contact_trace import (
    ContactEvent,
    ContactTrace,
    ContactTraceRecorder,
)
from repro.units import kbps, megabytes
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.trace_world import TraceWorld
from tests.helpers import build_micro_world
from repro.mobility.random_waypoint import RandomWaypoint


def build_trace_stack(n_nodes: int, trace: ContactTrace, sim_time: float,
                      traffic_seed: int):
    sim = Simulator(end_time=sim_time)
    radio = Radio(100.0, kbps(250))
    nodes = [Node(i, radio, megabytes(2.5)) for i in range(n_nodes)]
    tm = TransferManager(sim)
    world = TraceWorld(sim, nodes, tm, trace)
    for node in nodes:
        SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, n_nodes)
    metrics = MetricsCollector()
    metrics.subscribe(sim)
    gen = MessageGenerator(
        sim, nodes,
        TrafficSpec(interval_range=(40.0, 60.0), message_size=megabytes(0.5),
                    ttl=6000.0, initial_copies=4),
        np.random.default_rng(traffic_seed),
    )
    world.start()
    gen.start()
    return sim, metrics


class TestReplayEquivalence:
    def test_mobility_run_equals_its_own_trace_replay(self):
        """Record contacts from a mobility run, replay, compare metrics."""
        mobility = RandomWaypoint(12, (800.0, 600.0), speed_range=(3.0, 3.0))
        mw = build_micro_world(mobility=mobility, sim_time=2000.0, seed=5)
        recorder = ContactTraceRecorder()
        recorder.subscribe(mw.sim)
        gen = MessageGenerator(
            mw.sim, mw.nodes,
            TrafficSpec(interval_range=(40.0, 60.0),
                        message_size=megabytes(0.5), ttl=6000.0,
                        initial_copies=4),
            np.random.default_rng(77),
        )
        gen.start()
        mw.sim.run()

        sim2, metrics2 = build_trace_stack(
            12, recorder.trace, sim_time=2000.0, traffic_seed=77
        )
        sim2.run()

        assert metrics2.created == mw.metrics.created
        assert metrics2.delivered == mw.metrics.delivered
        assert metrics2.relayed == mw.metrics.relayed
        assert metrics2.drops_by_reason == mw.metrics.drops_by_reason


class TestEdgeCases:
    def make_nodes(self, n=3):
        sim = Simulator(end_time=100.0)
        radio = Radio(100.0, kbps(250))
        nodes = [Node(i, radio, megabytes(1.0)) for i in range(n)]
        tm = TransferManager(sim)
        return sim, nodes, tm

    def test_rejects_out_of_range_node_ids(self):
        sim, nodes, tm = self.make_nodes(2)
        trace = ContactTrace([ContactEvent(1.0, 0, 5, True)])
        with pytest.raises(ConfigurationError):
            TraceWorld(sim, nodes, tm, trace)

    def test_duplicate_up_events_are_idempotent(self):
        sim, nodes, tm = self.make_nodes(2)
        trace = ContactTrace([
            ContactEvent(1.0, 0, 1, True),
            ContactEvent(2.0, 1, 0, True),  # duplicate, reversed ids
            ContactEvent(3.0, 0, 1, False),
        ])
        for node in nodes:
            SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, 2)
        ups = []
        sim.listeners.subscribe("link.up", lambda a, b: ups.append(sim.now))
        world = TraceWorld(sim, nodes, tm, trace)
        world.start()
        sim.run()
        assert ups == [1.0]
        assert not nodes[0].neighbors

    def test_down_without_up_is_ignored(self):
        sim, nodes, tm = self.make_nodes(2)
        trace = ContactTrace([ContactEvent(1.0, 0, 1, False)])
        for node in nodes:
            SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, 2)
        world = TraceWorld(sim, nodes, tm, trace)
        world.start()
        sim.run()  # must not raise

    def test_events_past_horizon_not_scheduled(self):
        sim, nodes, tm = self.make_nodes(2)
        trace = ContactTrace([ContactEvent(500.0, 0, 1, True)])
        for node in nodes:
            SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, 2)
        world = TraceWorld(sim, nodes, tm, trace)
        world.start()
        sim.run()
        assert not world.links
