"""The world tick's idle-sender retry path.

New send eligibility can appear without any link event — e.g. a neighbor
drops its copy of a message we hold, making it sprayable to them again.
Only the periodic retry in World.update catches this.
"""

from __future__ import annotations

from tests.helpers import build_micro_world, make_message


def test_idle_sender_retries_when_peer_drops_copy():
    mw = build_micro_world(
        points=[(0.0, 0.0), (80.0, 0.0), (900.0, 900.0)],
    )
    mw.sim.run(until=1.5)
    src, peer = mw.nodes[0], mw.nodes[1]

    # Peer already holds the message: source has nothing to send.
    msg = make_message(msg_id="m", source=0, destination=2, copies=8,
                       size=1000)
    src.router.create_message(msg)
    peer.buffer.add(
        make_message(msg_id="m", source=0, destination=2, copies=4,
                     initial_copies=16, size=1000, hop_count=1)
    )
    mw.sim.run(until=5.0)
    assert mw.metrics.relayed == 0
    assert not src.sending

    # The peer's copy vanishes (e.g. dropped by its policy): the next world
    # tick must notice and restart spraying without any link transition.
    peer.router.drop_message(peer.buffer.get("m"), "overflow")
    mw.sim.run(until=10.0)
    assert src.sending or mw.metrics.relayed >= 1
    mw.sim.run(until=30.0)
    assert "m" in peer.buffer  # re-infected
