"""World update loop: link lifecycle, TTL purge, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.mobility.stationary import Stationary
from repro.net.transfer import TransferManager
from repro.units import kbps
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.world import World
from tests.helpers import build_micro_world, make_message, scripted_mobility


class TestLinkLifecycle:
    def test_links_come_up_on_first_tick(self):
        mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0), (500.0, 500.0)])
        mw.sim.run(until=1.0)
        assert mw.world.connected_pairs() == {(0, 1)}
        assert mw.contacts.contact_count == 1

    def test_link_up_and_down_events_fire(self):
        mobility = scripted_mobility(
            [0.0, 10.0, 11.0, 20.0, 21.0, 40.0],
            [
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (800.0, 800.0)],
                [(0.0, 0.0), (800.0, 800.0)],
                [(0.0, 0.0), (50.0, 0.0)],
                [(0.0, 0.0), (50.0, 0.0)],
            ],
        )
        mw = build_micro_world(mobility=mobility, sim_time=40.0)
        ups, downs = [], []
        mw.sim.listeners.subscribe("link.up", lambda a, b: ups.append(mw.sim.now))
        mw.sim.listeners.subscribe("link.down", lambda a, b: downs.append(mw.sim.now))
        mw.sim.run()
        assert len(ups) == 2 and len(downs) == 1
        assert downs[0] == pytest.approx(11.0, abs=1.5)

    def test_neighbor_sets_symmetric(self):
        mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)])
        mw.sim.run(until=2.0)
        assert 1 in mw.nodes[0].neighbors
        assert 0 in mw.nodes[1].neighbors


class TestTtlPurge:
    def test_expired_messages_are_purged(self):
        mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
        msg = make_message(source=0, destination=1, ttl=10.0)
        mw.router(0).create_message(msg)
        mw.sim.run(until=12.0)
        assert "M1" not in mw.nodes[0].buffer
        assert mw.metrics.drops_by_reason.get("ttl") == 1


class TestValidation:
    def _stack(self, n_nodes_world: int, n_nodes_mobility: int):
        sim = Simulator(end_time=10.0)
        mobility = Stationary(n_nodes_mobility, (100.0, 100.0))
        radio = Radio(100.0, kbps(250))
        nodes = [Node(i, radio, 1000) for i in range(n_nodes_world)]
        return sim, mobility, nodes, TransferManager(sim)

    def test_node_count_must_match_mobility(self):
        sim, mobility, nodes, tm = self._stack(2, 3)
        with pytest.raises(ConfigurationError):
            World(sim, mobility, nodes, tm)

    def test_node_ids_must_be_dense(self):
        sim, mobility, _, tm = self._stack(0, 2)
        radio = Radio(100.0, kbps(250))
        nodes = [Node(0, radio, 1000), Node(5, radio, 1000)]
        with pytest.raises(ConfigurationError):
            World(sim, mobility, nodes, tm)

    def test_tick_must_be_positive(self):
        sim, mobility, nodes, tm = self._stack(2, 2)
        with pytest.raises(ConfigurationError):
            World(sim, mobility, nodes, tm, tick=0.0)


class TestHeterogeneousRanges:
    def test_link_uses_smaller_range(self):
        sim = Simulator(end_time=10.0)
        mobility = Stationary(2, (1000.0, 1000.0), points=[(0.0, 0.0), (80.0, 0.0)])
        long_radio = Radio(200.0, kbps(250))
        short_radio = Radio(50.0, kbps(250))
        nodes = [Node(0, long_radio, 1000), Node(1, short_radio, 1000)]
        tm = TransferManager(sim)
        world = World(sim, mobility, nodes, tm)
        world.start(np.random.default_rng(0))
        sim.run(until=2.0)
        # 80 m apart: within the long radio's 200 m but not the short's 50 m.
        assert world.connected_pairs() == set()

    def test_link_within_both_ranges(self):
        sim = Simulator(end_time=10.0)
        mobility = Stationary(2, (1000.0, 1000.0), points=[(0.0, 0.0), (40.0, 0.0)])
        nodes = [
            Node(0, Radio(200.0, kbps(250)), 1000),
            Node(1, Radio(50.0, kbps(250)), 1000),
        ]
        tm = TransferManager(sim)
        world = World(sim, mobility, nodes, tm)
        world.start(np.random.default_rng(0))
        sim.run(until=2.0)
        assert world.connected_pairs() == {(0, 1)}


class TestDeterministicLinkOrder:
    def test_simultaneous_link_ups_fire_in_sorted_pair_order(self):
        """Three pairwise-close nodes: link.up events are emitted in sorted
        (i, j) order so runs are reproducible regardless of set iteration."""
        from tests.helpers import build_micro_world

        mw = build_micro_world(
            points=[(0.0, 0.0), (50.0, 0.0), (25.0, 40.0)]
        )
        ups = []
        mw.sim.listeners.subscribe(
            "link.up", lambda a, b: ups.append((a.id, b.id))
        )
        mw.sim.run(until=1.0)
        assert ups == sorted(ups)
        assert len(ups) == 3
