"""Radio parameter validation and link bandwidth."""

import pytest

from repro.errors import ConfigurationError
from repro.units import kbps
from repro.world.radio import Radio


def test_validation():
    with pytest.raises(ConfigurationError):
        Radio(range_m=0, bandwidth_Bps=100)
    with pytest.raises(ConfigurationError):
        Radio(range_m=100, bandwidth_Bps=0)


def test_link_bandwidth_is_slower_side():
    fast = Radio(100.0, kbps(500))
    slow = Radio(100.0, kbps(250))
    assert fast.link_bandwidth(slow) == kbps(250)
    assert slow.link_bandwidth(fast) == kbps(250)


def test_transfer_time():
    r = Radio(100.0, 1000.0)
    assert r.transfer_time(2500, r) == 2.5


def test_frozen():
    r = Radio(100.0, 1000.0)
    with pytest.raises(AttributeError):
        r.range_m = 50.0  # type: ignore[misc]
