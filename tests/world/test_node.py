"""Node wiring."""

import pytest

from repro.units import kbps
from repro.world.node import Node
from repro.world.radio import Radio
from tests.helpers import build_micro_world


def test_position_requires_world():
    node = Node(0, Radio(100.0, kbps(250)), buffer_capacity=1000)
    with pytest.raises(RuntimeError):
        _ = node.position


def test_position_reads_world_array():
    mw = build_micro_world(points=[(10.0, 20.0), (500.0, 500.0)])
    mw.sim.run(until=1.0)
    assert tuple(mw.nodes[0].position) == (10.0, 20.0)


def test_neighbor_tracking():
    mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0), (900.0, 900.0)])
    mw.sim.run(until=1.0)
    a, b, c = mw.nodes
    assert a.is_connected_to(b) and b.is_connected_to(a)
    assert not a.is_connected_to(c)
    assert set(a.neighbors) == {1}
