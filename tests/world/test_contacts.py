"""Contact detectors: correctness, agreement across implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.world.contacts import (
    BruteForceDetector,
    GridDetector,
    KDTreeDetector,
    make_detector,
)

DETECTORS = [BruteForceDetector(), GridDetector(), KDTreeDetector()]


def brute_truth(positions: np.ndarray, radius: float) -> set[tuple[int, int]]:
    out = set()
    n = len(positions)
    for i in range(n):
        for j in range(i + 1, n):
            if np.hypot(*(positions[i] - positions[j])) <= radius:
                out.add((i, j))
    return out


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
class TestBasics:
    def test_simple_layout(self, detector):
        pts = np.array([[0.0, 0.0], [50.0, 0.0], [500.0, 0.0], [540.0, 0.0]])
        assert detector.pairs(pts, 100.0) == {(0, 1), (2, 3)}

    def test_boundary_is_inclusive(self, detector):
        pts = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert detector.pairs(pts, 100.0) == {(0, 1)}

    def test_just_out_of_range(self, detector):
        pts = np.array([[0.0, 0.0], [100.001, 0.0]])
        assert detector.pairs(pts, 100.0) == set()

    def test_empty_and_single(self, detector):
        assert detector.pairs(np.zeros((0, 2)), 10.0) == set()
        assert detector.pairs(np.zeros((1, 2)), 10.0) == set()

    def test_coincident_points(self, detector):
        pts = np.zeros((3, 2))
        assert detector.pairs(pts, 1.0) == {(0, 1), (0, 2), (1, 2)}

    def test_rejects_bad_inputs(self, detector):
        with pytest.raises(ConfigurationError):
            detector.pairs(np.zeros((3, 2)), 0.0)
        with pytest.raises(ConfigurationError):
            detector.pairs(np.zeros((3, 3)), 1.0)


class TestAgreement:
    @given(
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=5.0, max_value=400.0),
    )
    def test_all_detectors_match_reference(self, n, seed, radius):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 1000, size=(n, 2))
        expected = brute_truth(positions, radius)
        for det in DETECTORS:
            assert det.pairs(positions, radius) == expected, type(det).__name__


class TestFactory:
    def test_explicit_kinds(self):
        assert isinstance(make_detector(10, "brute"), BruteForceDetector)
        assert isinstance(make_detector(10, "grid"), GridDetector)
        assert isinstance(make_detector(10, "kdtree"), KDTreeDetector)

    def test_default_by_size(self):
        assert isinstance(make_detector(100), BruteForceDetector)
        assert isinstance(make_detector(10_000), KDTreeDetector)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_detector(10, "sonar")
