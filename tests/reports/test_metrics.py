"""Metrics collector: the paper's three metrics plus drop accounting."""

from __future__ import annotations

import math

from repro.reports.metrics import MetricsCollector
from tests.helpers import build_micro_world, make_message


def test_empty_run_defaults():
    m = MetricsCollector()
    assert m.delivery_ratio == 0.0
    assert math.isnan(m.average_hopcount)
    assert math.isnan(m.average_latency)
    assert math.isnan(m.overhead_ratio)
    assert m.drops_total == 0


def test_delivery_ratio_and_latency():
    mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)])
    mw.router(0).create_message(make_message(source=0, destination=1))
    mw.sim.run()
    m = mw.metrics
    assert m.created == 1
    assert m.delivered == 1
    assert m.delivery_ratio == 1.0
    assert m.average_hopcount == 1.0
    assert 15.0 < m.average_latency < 20.0
    # Delivery counts as a relay: overhead = (1 - 1)/1 = 0.
    assert m.overhead_ratio == 0.0


def test_overhead_counts_non_delivery_relays():
    # Chain 0-1-2: spray to middle + delivery = 2 relays, 1 delivered.
    mw = build_micro_world(points=[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)])
    mw.router(0).create_message(
        make_message(source=0, destination=2, copies=8, size=1000)
    )
    mw.sim.run(until=60.0)
    m = mw.metrics
    assert m.delivered == 1
    assert m.relayed >= 2
    assert m.overhead_ratio == (m.relayed - 1) / 1


def test_drop_reasons_tallied():
    mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
    mw.router(0).create_message(make_message(source=0, destination=1, ttl=5.0))
    mw.sim.run(until=20.0)
    assert mw.metrics.drops_by_reason == {"ttl": 1}
    assert mw.metrics.drops_total == 1


def test_started_and_aborted_counters():
    from tests.helpers import scripted_mobility

    mobility = scripted_mobility(
        [0.0, 5.0, 6.0, 50.0],
        [
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (800.0, 800.0)],
            [(0.0, 0.0), (800.0, 800.0)],
        ],
    )
    mw = build_micro_world(mobility=mobility, sim_time=50.0)
    mw.router(0).create_message(make_message(source=0, destination=1))
    mw.sim.run()
    assert mw.metrics.started == 1
    assert mw.metrics.aborted == 1


def test_relayed_accepted_excludes_rejected_newcomers():
    """A newcomer destroyed by the receiving drop policy still counts as a
    relay (ONE semantics) but not as an accepted relay — and the sender's
    tokens are spent (the paper's Δn = −1 drop)."""
    from repro.net.message import Message
    from repro.policies.base import BufferPolicy
    from repro.units import megabytes

    class NewcomerLoses(BufferPolicy):
        name = "newcomer-loses"
        compare_newcomer = True

        def send_priority(self, message: Message, now: float) -> float:
            return 1.0

        def drop_priority(self, message: Message, now: float) -> float:
            # Relay copies (hop_count > 0) always rank below buffered ones.
            return -1.0 if message.hop_count > 0 else 1.0

    mw = build_micro_world(
        points=[(0.0, 0.0), (50.0, 0.0)],
        policy_factory=NewcomerLoses,
        buffer_bytes=megabytes(0.5),
    )
    mw.sim.run(until=1.0)
    # The receiver's single slot is already occupied (wait-phase copy, so
    # it generates no reverse traffic of its own).
    blocker = make_message(msg_id="blocker", source=1, destination=9,
                           copies=1, initial_copies=16)
    mw.nodes[1].buffer.add(blocker)
    spray = make_message(msg_id="spray", source=0, destination=9, copies=8)
    mw.nodes[0].buffer.add(spray)
    mw.router(0).try_send()
    mw.sim.run(until=30.0)
    m = mw.metrics
    assert m.relayed == 1
    assert m.relayed_accepted == 0
    assert m.drops_by_reason.get("overflow") == 1
    assert "spray" not in mw.nodes[1].buffer
    # Two-phase split committed: the rejected copy's tokens are destroyed.
    assert mw.nodes[0].buffer.get("spray").copies == 4


def test_warmup_excludes_early_messages():
    from repro.reports.metrics import MetricsCollector

    mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)], sim_time=300.0)
    warm = MetricsCollector(warmup=100.0)
    warm.subscribe(mw.sim)
    # One message before the warm-up deadline, one after.
    mw.router(0).create_message(
        make_message(msg_id="early", source=0, destination=1)
    )
    mw.sim.schedule_at(
        150.0,
        lambda: mw.router(0).create_message(
            make_message(msg_id="late", source=0, destination=1,
                         created_at=150.0)
        ),
    )
    mw.sim.run()
    assert mw.metrics.created == 2  # the default collector sees both
    assert mw.metrics.delivered == 2
    assert warm.created == 1
    assert warm.delivered == 1
    assert warm.relayed == 1
