"""Per-message fate report."""

from __future__ import annotations

import csv

from repro.reports.fate import MessageFateReport
from tests.helpers import build_micro_world, make_message


def test_tracks_delivery_lifecycle():
    mw = build_micro_world(points=[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)])
    report = MessageFateReport()
    report.subscribe(mw.sim)
    mw.router(0).create_message(
        make_message(source=0, destination=2, copies=8, size=1000)
    )
    mw.sim.run(until=120.0)
    fate = report.fates["M1"]
    assert fate.delivered
    assert fate.delivery_hops == 2
    assert fate.relays >= 2
    assert fate.latency is not None and fate.latency > 0
    assert report.delivered_fates() == [fate]
    assert report.undelivered_fates() == []


def test_tracks_drops():
    mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
    report = MessageFateReport()
    report.subscribe(mw.sim)
    mw.router(0).create_message(make_message(source=0, destination=1, ttl=5.0))
    mw.sim.run(until=20.0)
    fate = report.fates["M1"]
    assert not fate.delivered
    assert fate.drops == {"ttl": 1}
    assert report.drop_events_total() == 1
    assert fate.latency is None


def test_csv_export(tmp_path):
    mw = build_micro_world(points=[(0.0, 0.0), (50.0, 0.0)])
    report = MessageFateReport()
    report.subscribe(mw.sim)
    mw.router(0).create_message(make_message(source=0, destination=1))
    mw.sim.run()
    path = tmp_path / "fates.csv"
    report.write_csv(path)
    rows = list(csv.DictReader(path.open()))
    assert len(rows) == 1
    assert rows[0]["msg_id"] == "M1"
    assert rows[0]["delivered"] == "1"
    assert float(rows[0]["latency"]) > 0
