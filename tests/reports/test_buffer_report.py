"""Buffer occupancy sampling."""

from __future__ import annotations

import numpy as np

from repro.reports.buffer_report import BufferReport
from repro.units import megabytes
from tests.helpers import build_micro_world, make_message


def test_occupancy_series():
    mw = build_micro_world(
        points=[(0.0, 0.0), (900.0, 900.0)], buffer_bytes=megabytes(1.0)
    )
    report = BufferReport(mw.nodes, sample_interval=10.0)
    report.subscribe(mw.sim)
    mw.router(0).create_message(
        make_message(source=0, destination=1, size=megabytes(0.5))
    )
    mw.sim.run(until=100.0)
    times, mean_occ, max_occ = report.series()
    assert times.size == 11  # t = 0, 10, ..., 100
    assert np.all(mean_occ <= max_occ + 1e-12)
    # One of two 1 MB buffers holds 0.5 MB -> mean 0.25, max 0.5.
    assert mean_occ[-1] == 0.25
    assert max_occ[-1] == 0.5
    assert report.mean_occupancy() > 0.0


def test_no_samples_is_nan():
    mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
    report = BufferReport(mw.nodes)
    assert np.isnan(report.mean_occupancy())
