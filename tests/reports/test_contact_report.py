"""Contact report: durations and intermeeting samples from link events."""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import build_micro_world, scripted_mobility


def on_off_on_world():
    """Pair together 0-10 s, apart 10-40 s, together again 40-60 s."""
    mobility = scripted_mobility(
        [0.0, 10.0, 11.0, 39.0, 40.0, 60.0],
        [
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (800.0, 800.0)],
            [(0.0, 0.0), (800.0, 800.0)],
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
        ],
    )
    return build_micro_world(mobility=mobility, sim_time=60.0)


def test_contact_count_and_durations():
    mw = on_off_on_world()
    mw.sim.run()
    assert mw.contacts.contact_count == 2
    durations = mw.contacts.contact_durations()
    assert durations.size >= 1
    assert durations[0] == pytest.approx(11.0, abs=1.5)


def test_intermeeting_sample_between_contacts():
    mw = on_off_on_world()
    mw.sim.run()
    gaps = mw.contacts.intermeeting_samples()
    assert gaps.size == 1
    assert gaps[0] == pytest.approx(29.0, abs=2.0)
    assert mw.contacts.mean_intermeeting() == pytest.approx(gaps[0])


def test_no_samples_mean_is_nan():
    mw = build_micro_world(points=[(0.0, 0.0), (900.0, 900.0)])
    mw.sim.run(until=5.0)
    assert np.isnan(mw.contacts.mean_intermeeting())
