"""RunSummary / FailedRun record formatting and round-trips."""

from repro.reports.summary import FailedRun, RunSummary
from repro.units import megabytes


def sample() -> RunSummary:
    return RunSummary(
        scenario="rwp",
        policy="sdsrp",
        seed=7,
        sim_time=18000.0,
        initial_copies=32,
        buffer_bytes=megabytes(2.5),
        interval_range=(25.0, 35.0),
        created=600,
        delivered=300,
        relayed=4500,
        delivery_ratio=0.5,
        average_hopcount=2.4,
        overhead_ratio=14.0,
        average_latency=2500.0,
        drops={"overflow": 900, "ttl": 10},
        faults={"node_down": 4, "link_flap": 2},
        contacts=1234,
        mean_intermeeting=2000.0,
    )


def test_as_dict_expands_drops_and_faults():
    d = sample().as_dict()
    assert d["drop_overflow"] == 900
    assert d["drop_ttl"] == 10
    assert d["fault_node_down"] == 4
    assert d["fault_link_flap"] == 2
    assert "drops" not in d
    assert "faults" not in d
    assert d["policy"] == "sdsrp"


def test_record_round_trip():
    s = sample()
    assert RunSummary.from_record(s.record()) == s


def test_table_row_alignment():
    header = RunSummary.table_header()
    row = sample().table_row()
    assert "policy" in header
    assert "sdsrp" in row
    assert "2.5MB" in row
    assert "[25,35]" in row


def test_failed_run_record_and_row():
    f = FailedRun("rwp", "fifo", 3, "TimeoutError", "hung", attempts=2)
    assert FailedRun.from_record(f.record()) == f
    assert f.replace_attempts(5).attempts == 5
    row = f.table_row()
    assert "FAILED" in row and "TimeoutError" in row
