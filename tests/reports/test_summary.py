"""RunSummary record formatting."""

from repro.reports.summary import RunSummary
from repro.units import megabytes


def sample() -> RunSummary:
    return RunSummary(
        scenario="rwp",
        policy="sdsrp",
        seed=7,
        sim_time=18000.0,
        initial_copies=32,
        buffer_bytes=megabytes(2.5),
        interval_range=(25.0, 35.0),
        created=600,
        delivered=300,
        relayed=4500,
        delivery_ratio=0.5,
        average_hopcount=2.4,
        overhead_ratio=14.0,
        average_latency=2500.0,
        drops={"overflow": 900, "ttl": 10},
        contacts=1234,
        mean_intermeeting=2000.0,
    )


def test_as_dict_expands_drops():
    d = sample().as_dict()
    assert d["drop_overflow"] == 900
    assert d["drop_ttl"] == 10
    assert "drops" not in d
    assert d["policy"] == "sdsrp"


def test_table_row_alignment():
    header = RunSummary.table_header()
    row = sample().table_row()
    assert "policy" in header
    assert "sdsrp" in row
    assert "2.5MB" in row
    assert "[25,35]" in row
