"""Deterministic RNG management."""

from repro.rng import RngFactory, derive_seed


class TestRngFactory:
    def test_same_seed_same_streams(self):
        a = RngFactory(42).stream("mobility")
        b = RngFactory(42).stream("mobility")
        assert a.random() == b.random()

    def test_named_streams_are_independent(self):
        f = RngFactory(42)
        assert f.stream("mobility").random() != f.stream("traffic").random()

    def test_stream_identity_is_order_free(self):
        f1 = RngFactory(1)
        _ = f1.stream("a")
        x = f1.stream("b").random()
        f2 = RngFactory(1)
        y = f2.stream("b").random()  # requested first this time
        assert x == y

    def test_stream_is_cached(self):
        f = RngFactory(3)
        assert f.stream("x") is f.stream("x")

    def test_spawn_children_differ(self):
        f = RngFactory(5)
        kids = list(f.spawn(3))
        draws = {k.stream("w").random() for k in kids}
        assert len(draws) == 3

    def test_root_entropy_readable(self):
        assert RngFactory(99).root_entropy == 99

    def test_long_names_with_shared_prefix_are_independent(self):
        # Regression: stream keys were once derived from only the first
        # 8 bytes of the name, so "policy.random.1" and "policy.random.2"
        # (identical 8-byte prefix) collided into the same stream.
        f = RngFactory(7)
        draws = {
            f.stream(f"policy.random.{i}").random() for i in range(20)
        }
        assert len(draws) == 20

    def test_suffix_only_names_are_independent(self):
        f = RngFactory(11)
        a = f.stream("a-very-long-stream-name-variant-A")
        b = f.stream("a-very-long-stream-name-variant-B")
        assert a.random() != b.random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "rep", 3) == derive_seed(1, "rep", 3)

    def test_sensitive_to_every_component(self):
        base = derive_seed(1, "rep", 3)
        assert derive_seed(2, "rep", 3) != base
        assert derive_seed(1, "other", 3) != base
        assert derive_seed(1, "rep", 4) != base

    def test_fits_in_63_bits(self):
        for i in range(50):
            s = derive_seed(123, "x", i)
            assert 0 <= s < 1 << 63
