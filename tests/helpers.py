"""Test scaffolding: hand-built micro-worlds with exact topologies.

``build_micro_world`` wires the full stack (simulator, world, transfer
manager, routers) around a :class:`~repro.mobility.stationary.Stationary` or
scripted :class:`~repro.mobility.trace.TraceMobility` layout so routing and
policy behaviour can be asserted deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.simulator import Simulator
from repro.mobility.base import MobilityModel
from repro.mobility.stationary import Stationary
from repro.mobility.trace import TraceMobility
from repro.net.message import Message
from repro.net.transfer import TransferManager
from repro.policies.base import BufferPolicy
from repro.policies.fifo import FifoPolicy
from repro.reports.contact_report import ContactReport
from repro.reports.metrics import MetricsCollector
from repro.routing.base import Router
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.units import kbps, megabytes
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.world import World

DEFAULT_RANGE = 100.0
DEFAULT_BANDWIDTH = kbps(250)


@dataclass
class MicroWorld:
    """The assembled stack of a hand-built test world."""

    sim: Simulator
    world: World
    nodes: list[Node]
    transfer_manager: TransferManager
    metrics: MetricsCollector
    contacts: ContactReport

    def node(self, i: int) -> Node:
        return self.nodes[i]

    def router(self, i: int) -> Router:
        router = self.nodes[i].router
        assert router is not None
        return router


def build_micro_world(
    points: list[tuple[float, float]] | None = None,
    mobility: MobilityModel | None = None,
    sim_time: float = 1000.0,
    buffer_bytes: int = megabytes(2.5),
    radio_range: float = DEFAULT_RANGE,
    bandwidth: float = DEFAULT_BANDWIDTH,
    policy_factory=FifoPolicy,
    router_factory=SprayAndWaitRouter,
    tick: float = 1.0,
    area: tuple[float, float] = (1000.0, 1000.0),
    seed: int = 0,
    deliverable_first: bool = False,
) -> MicroWorld:
    """Build a full stack around explicit positions or a custom mobility."""
    if (points is None) == (mobility is None):
        raise ValueError("pass exactly one of points / mobility")
    if mobility is None:
        assert points is not None
        mobility = Stationary(len(points), area, points=points)
    n = mobility.n_nodes

    sim = Simulator(end_time=sim_time)
    radio = Radio(range_m=radio_range, bandwidth_Bps=bandwidth)
    nodes = [Node(i, radio, buffer_capacity=buffer_bytes) for i in range(n)]
    tm = TransferManager(sim)
    world = World(sim, mobility, nodes, tm, tick=tick)
    for node in nodes:
        policy: BufferPolicy = policy_factory()
        router = router_factory(node, policy)
        router.deliverable_first = deliverable_first
        router.bind(sim, tm, n)
    metrics = MetricsCollector()
    metrics.subscribe(sim)
    contacts = ContactReport()
    contacts.subscribe(sim)
    world.start(np.random.default_rng(seed))
    return MicroWorld(sim, world, nodes, tm, metrics, contacts)


def scripted_mobility(
    times: list[float], frames: list[list[tuple[float, float]]]
) -> TraceMobility:
    """Mobility that jumps through explicit position frames at given times."""
    return TraceMobility(np.asarray(times, float), np.asarray(frames, float))


def make_message(
    msg_id: str = "M1",
    source: int = 0,
    destination: int = 1,
    size: int = megabytes(0.5),
    created_at: float = 0.0,
    ttl: float = 18000.0,
    copies: int | None = None,
    initial_copies: int = 16,
    hop_count: int = 0,
    spray_times: list[float] | None = None,
) -> Message:
    """A message with sensible paper-like defaults."""
    return Message(
        msg_id=msg_id,
        source=source,
        destination=destination,
        size=size,
        created_at=created_at,
        ttl=ttl,
        initial_copies=initial_copies,
        copies=initial_copies if copies is None else copies,
        hop_count=hop_count,
        spray_times=list(spray_times or []),
    )


def total_copies_in_network(mw: MicroWorld, msg_id: str) -> int:
    """Sum of spray tokens for *msg_id* across all buffers."""
    total = 0
    for node in mw.nodes:
        if msg_id in node.buffer:
            total += node.buffer.get(msg_id).copies
    return total
