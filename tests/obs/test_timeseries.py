"""TimeSeriesCollector: sampling cadence, exports, parse validation."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ConfigurationError, ObsFormatError
from repro.experiments.runner import build_scenario, run_built
from repro.net.outcomes import DROP_REASONS
from repro.obs.timeseries import Histogram, TimeSeriesCollector, read_timeseries_json
from tests.obs.conftest import tiny_config


def sampled_run(**overrides):
    built = build_scenario(tiny_config(obs_interval=60.0, **overrides))
    summary = run_built(built)
    assert built.timeseries is not None
    return built, summary


class TestHistogram:
    def test_binning_and_mean(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.add(value)
        assert hist.counts == [2, 1, 1]  # (<=1], (1,10], (10,inf)
        assert hist.n == 4
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram((1.0,)).mean == 0.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram(())
        with pytest.raises(ConfigurationError):
            Histogram((2.0, 1.0))


class TestSampling:
    def test_cadence_and_final_sample(self):
        built, _ = sampled_run()
        ts = built.timeseries
        times = ts.series("time")
        horizon = built.config.sim_time
        # One sample per interval from t=0, plus the finalize() row if the
        # horizon is off-cadence.
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(horizon)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d > 0 for d in deltas)
        assert max(deltas) <= 60.0 + 1e-9

    def test_counters_match_run_summary(self):
        built, summary = sampled_run()
        ts = built.timeseries
        assert ts.series("created")[-1] == summary.created
        assert ts.series("delivered")[-1] == summary.delivered
        assert ts.series("relayed")[-1] == summary.relayed
        assert ts.series("delivery_ratio")[-1] == pytest.approx(
            summary.delivery_ratio
        )
        drops_total = ts.series("drops_total")[-1]
        assert drops_total == sum(summary.drops.values())
        for reason in DROP_REASONS:
            assert ts.series(f"drop_{reason}")[-1] == summary.drops.get(reason, 0)

    def test_counters_are_monotone(self):
        built, _ = sampled_run()
        ts = built.timeseries
        for column in ("created", "delivered", "relayed", "drops_total",
                       "bytes_relayed", "transfers_started"):
            series = ts.series(column)
            assert all(b >= a for a, b in zip(series, series[1:])), column

    def test_gauges_are_bounded(self):
        built, _ = sampled_run()
        ts = built.timeseries
        for row in ts.series("occupancy_mean"):
            assert 0.0 <= row <= 1.0
        for row in ts.series("occupancy_max"):
            assert 0.0 <= row <= 1.0
        assert max(ts.series("live_messages")) > 0

    def test_finalize_is_idempotent_on_cadence(self):
        built, _ = sampled_run()
        ts = built.timeseries
        n = ts.n_samples
        ts.finalize(ts.series("time")[-1])  # same instant: no extra row
        assert ts.n_samples == n

    def test_unknown_column_raises(self):
        built, _ = sampled_run()
        with pytest.raises(KeyError):
            built.timeseries.series("nope")

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            TimeSeriesCollector([], interval=0.0)


class TestExport:
    def test_json_round_trip(self, tmp_path):
        built, _ = sampled_run()
        ts = built.timeseries
        path = tmp_path / "obs.json"
        ts.write(path)
        payload = read_timeseries_json(path)
        assert payload == json.loads(
            json.dumps(ts.as_dict())
        )  # identical modulo JSON number canonicalization
        assert payload["columns"] == list(ts.column_names())
        assert len(payload["node_occupancy"]) == ts.n_samples

    def test_csv_round_trip(self, tmp_path):
        built, _ = sampled_run()
        ts = built.timeseries
        path = tmp_path / "obs.csv"
        ts.write(path)
        with path.open(newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(ts.column_names())
        assert len(rows) == 1 + ts.n_samples
        created_col = rows[0].index("created")
        assert float(rows[-1][created_col]) == ts.created

    def test_read_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"columns": [', encoding="utf-8")
        with pytest.raises(ObsFormatError, match="malformed"):
            read_timeseries_json(path)

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ObsFormatError, match="not a JSON object"):
            read_timeseries_json(path)

    def test_read_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"interval": 60}', encoding="utf-8")
        with pytest.raises(ObsFormatError, match="missing"):
            read_timeseries_json(path)

    def test_read_rejects_ragged_columns(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "columns": ["time", "created"],
            "samples": {"time": [0.0, 60.0], "created": [1]},
        }), encoding="utf-8")
        with pytest.raises(ObsFormatError, match="ragged"):
            read_timeseries_json(path)
