"""EventTrace: ring bounds, JSONL round-trip, parse errors, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsFormatError
from repro.experiments.runner import build_scenario, run_built
from repro.obs.trace import (
    EventTrace,
    aggregate_trace,
    format_record,
    read_trace_jsonl,
)
from tests.obs.conftest import tiny_config

#: Large enough that the tiny scenario never evicts (asserted per test).
BIG_CAPACITY = 500_000


def traced_run(**overrides):
    built = build_scenario(tiny_config(trace_capacity=BIG_CAPACITY, **overrides))
    summary = run_built(built)
    assert built.trace is not None
    assert built.trace.events_seen == len(built.trace), "ring evicted events"
    return built, summary


class TestRingBuffer:
    def test_capacity_bounds_retention(self):
        trace = EventTrace(capacity=3)
        for i in range(10):
            trace._add("message.expired", msg=f"M{i}", node=0)
        assert len(trace) == 3
        assert trace.events_seen == 10
        assert [r["msg"] for r in trace.records()] == ["M7", "M8", "M9"]

    def test_tail_returns_last_n(self):
        trace = EventTrace(capacity=10)
        for i in range(5):
            trace._add("message.expired", msg=f"M{i}", node=0)
        assert [r["msg"] for r in trace.tail(2)] == ["M3", "M4"]
        assert len(trace.tail(100)) == 5
        assert trace.tail(0) == []

    def test_rejects_nonpositive_capacity(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EventTrace(capacity=0)


class TestRoundTrip:
    def test_dump_parse_round_trip(self, tmp_path):
        built, _ = traced_run()
        path = tmp_path / "trace.jsonl"
        n = built.trace.dump_jsonl(path)
        parsed = read_trace_jsonl(path)
        assert n == len(parsed) == len(built.trace)
        assert parsed == built.trace.records()

    def test_format_record_is_compact_and_sorted(self):
        line = format_record({"topic": "link.up", "t": 1.0, "b": 2, "a": 1})
        assert line == '{"a":1,"b":2,"t":1.0,"topic":"link.up"}\n'

    def test_aggregate_matches_metrics_collector(self):
        """Re-aggregating the trace reproduces the in-memory counters."""
        built, summary = traced_run()
        agg = aggregate_trace(built.trace.records())
        metrics = built.metrics
        assert agg["created"] == metrics.created == summary.created
        assert agg["delivered"] == metrics.delivered == summary.delivered
        assert agg["relayed"] == metrics.relayed == summary.relayed
        assert agg["drops_by_reason"] == dict(metrics.drops_by_reason)
        assert agg["faults_by_kind"] == dict(metrics.faults_by_kind)
        assert agg["created"] > 0 and agg["relayed"] > 0  # non-trivial run

    def test_aggregate_after_file_round_trip(self, tmp_path):
        built, _ = traced_run()
        path = tmp_path / "trace.jsonl"
        built.trace.dump_jsonl(path)
        assert aggregate_trace(read_trace_jsonl(path)) == aggregate_trace(
            built.trace.records()
        )


class TestParseErrors:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.jsonl"
        path.write_text(text, encoding="utf-8")
        return path

    def test_truncated_json_line(self, tmp_path):
        good = format_record({"t": 1.0, "topic": "link.up"})
        path = self.write(tmp_path, good + '{"t": 2.0, "topic": "li')
        with pytest.raises(ObsFormatError, match=r"bad\.jsonl:2"):
            read_trace_jsonl(path)

    def test_non_object_line(self, tmp_path):
        path = self.write(tmp_path, "[1, 2, 3]\n")
        with pytest.raises(ObsFormatError, match="not a JSON object"):
            read_trace_jsonl(path)

    def test_missing_required_keys(self, tmp_path):
        path = self.write(tmp_path, json.dumps({"topic": "link.up"}) + "\n")
        with pytest.raises(ObsFormatError, match="missing 't'/'topic'"):
            read_trace_jsonl(path)

    def test_non_numeric_timestamp(self, tmp_path):
        for bad_t in ('"soon"', "true", "null"):
            path = self.write(
                tmp_path, f'{{"t": {bad_t}, "topic": "link.up"}}\n'
            )
            with pytest.raises(ObsFormatError, match="timestamp"):
                read_trace_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        good = format_record({"t": 1.0, "topic": "link.up"})
        path = self.write(tmp_path, "\n" + good + "\n\n")
        assert len(read_trace_jsonl(path)) == 1

    def test_aggregate_dropped_without_reason(self):
        with pytest.raises(ObsFormatError, match="without 'reason'"):
            aggregate_trace([{"t": 1.0, "topic": "message.dropped", "msg": "M1"}])

    def test_aggregate_fault_without_kind(self):
        with pytest.raises(ObsFormatError, match="without 'kind'"):
            aggregate_trace([{"t": 1.0, "topic": "fault.injected"}])


class TestSchema:
    def test_every_record_has_time_and_topic(self):
        built, _ = traced_run()
        from repro.obs.trace import TRACE_TOPICS

        topics_seen = set()
        for record in built.trace.records():
            assert isinstance(record["t"], float)
            assert record["topic"] in TRACE_TOPICS
            topics_seen.add(record["topic"])
        # The tiny congested run must exercise the core message lifecycle.
        assert {"message.created", "message.relayed", "message.delivered",
                "message.dropped", "transfer.started", "transfer.commit",
                "link.up", "link.down"} <= topics_seen
