"""Observability must never change what it observes.

The whole ``repro.obs`` layer rides the listener bus read-only; these tests
enforce that property end-to-end: a run with every collector enabled yields
the *identical* RunSummary (modulo wall-clock diagnostics) as the same run
with observability off, and an invariant violation in a traced run carries
its trace context.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.errors import InvariantViolation
from repro.experiments.runner import build_scenario, run_built, run_scenario
from tests.obs.conftest import tiny_config


def strip_diagnostics(summary):
    """Drop the fields that legitimately vary with observation (wall time).

    ``mean_intermeeting`` is NaN when no node pair met twice; NaN never
    compares equal, so canonicalize it for the dataclass equality below.
    """
    mi = summary.mean_intermeeting
    return dataclasses.replace(
        summary,
        wall_seconds=0.0,
        profile={},
        mean_intermeeting=-1.0 if math.isnan(mi) else mi,
    )


class TestObservationOnly:
    def test_full_observability_changes_nothing(self):
        """Metrics/trace/profiler on vs off: bit-identical outcomes."""
        plain = run_scenario(tiny_config())
        observed = run_scenario(tiny_config(
            obs_interval=30.0, trace_capacity=4096, profile=True
        ))
        assert strip_diagnostics(observed) == strip_diagnostics(plain)

    def test_observability_off_leaves_stack_unwired(self):
        built = build_scenario(tiny_config())
        assert built.timeseries is None
        assert built.trace is None
        assert built.profiler is None
        assert built.sim.profiler is None

    def test_profile_fills_summary_breakdown(self):
        summary = run_scenario(tiny_config(profile=True))
        assert set(summary.profile) >= {"movement", "contacts", "routing"}
        assert sum(summary.profile.values()) > 0
        flat = summary.as_dict()
        assert "profile_movement" in flat
        assert "profile" not in flat

    def test_unprofiled_summary_has_empty_profile(self):
        summary = run_scenario(tiny_config())
        assert summary.profile == {}


class TestTraceOnViolation:
    def corrupt_buffer(self, built):
        """Break buffer accounting mid-run so the sanitizer trips."""
        built.nodes[0].buffer._used += 1

    def test_invariant_violation_carries_trace_tail(self):
        config = tiny_config(sanitize=True, trace_capacity=4096)
        built = build_scenario(config)
        built.sim.schedule_at(
            built.config.sim_time / 2, self.corrupt_buffer, built
        )
        with pytest.raises(InvariantViolation) as excinfo:
            run_built(built)
        exc = excinfo.value
        assert exc.invariant == "buffer-accounting"
        assert exc.trace_tail, "traced run must attach trace context"
        assert len(exc.trace_tail) <= 50
        assert exc.trace_tail == built.trace.tail(50)
        for record in exc.trace_tail:
            assert "t" in record and "topic" in record

    def test_violation_without_trace_has_no_tail(self):
        config = tiny_config(sanitize=True)
        built = build_scenario(config)
        built.sim.schedule_at(
            built.config.sim_time / 2, self.corrupt_buffer, built
        )
        with pytest.raises(InvariantViolation) as excinfo:
            run_built(built)
        assert excinfo.value.trace_tail is None
