"""Shared scaffolding for the observability tests.

``tiny_config`` is a heavily scaled-down random-waypoint scenario (about a
tenth of the fleet for a twentieth of the horizon) — big enough to generate
traffic, transfers, drops and deliveries, small enough that a dozen runs per
test module stay fast.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.scenario import ScenarioConfig, random_waypoint_scenario
from repro.experiments.scenario import scale_scenario


def tiny_config(**overrides: Any) -> ScenarioConfig:
    config = scale_scenario(
        random_waypoint_scenario(), node_factor=0.1, time_factor=0.05
    )
    return config.replace(**overrides) if overrides else config
