"""PhaseProfiler: self-time accounting, nesting, and the disabled path."""

from __future__ import annotations

import time

from repro.obs.profiler import PhaseProfiler, timed


class TestPhaseProfiler:
    def test_records_phase_and_call_count(self):
        prof = PhaseProfiler()
        with prof.phase("movement"):
            pass
        with prof.phase("movement"):
            pass
        assert prof.calls["movement"] == 2
        assert prof.self_seconds["movement"] >= 0.0

    def test_nested_phases_charge_self_time_only(self):
        """The parent's self time excludes time spent inside the child."""
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                time.sleep(0.02)
        assert prof.self_seconds["inner"] >= 0.015
        # Outer did ~nothing itself; the 20 ms belong to inner alone.
        assert prof.self_seconds["outer"] < prof.self_seconds["inner"]
        total = prof.total_seconds()
        assert total == sum(prof.self_seconds.values())

    def test_recursive_same_phase_does_not_double_count(self):
        prof = PhaseProfiler()
        with prof.phase("routing"):
            with prof.phase("routing"):
                time.sleep(0.01)
        # Wall time inside was ~10 ms; self-time sum must not exceed the
        # outer elapsed (which it would, doubled, under naive accounting).
        assert prof.self_seconds["routing"] < 0.1
        assert prof.calls["routing"] == 2

    def test_exception_inside_phase_still_closes_frame(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("policy"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert prof.calls["policy"] == 1
        assert prof._stack == []

    def test_as_dict_is_sorted_and_detached(self):
        prof = PhaseProfiler()
        with prof.phase("b"):
            pass
        with prof.phase("a"):
            pass
        d = prof.as_dict()
        assert list(d) == ["a", "b"]
        d["a"] = 99.0
        assert prof.self_seconds["a"] != 99.0

    def test_table_lists_largest_first(self):
        prof = PhaseProfiler()
        with prof.phase("slow"):
            time.sleep(0.02)
        with prof.phase("fast"):
            pass
        lines = prof.table().splitlines()
        slow_idx = next(i for i, l in enumerate(lines) if "slow" in l)
        fast_idx = next(i for i, l in enumerate(lines) if "fast" in l)
        assert slow_idx < fast_idx


class TestTimed:
    def test_none_profiler_is_a_noop_context(self):
        with timed(None, "anything"):
            pass  # must not raise, must not record anywhere

    def test_timed_delegates_to_profiler(self):
        prof = PhaseProfiler()
        with timed(prof, "transfer"):
            pass
        assert prof.calls["transfer"] == 1
