"""Snapshot determinism: interrupted-and-restored runs replay exact bytes.

Extends the replay suite in :mod:`tests.obs.test_determinism` to the
checkpointing layer: a run snapshotted at time T, restored, and run to the
horizon must produce the *byte-identical* event trace and time series of the
uninterrupted run — under fault injection and the invariant sanitizer, on
both synthetic (RWP) and taxi mobility.  Also covers the crash-recovery
plumbing: ``_try_resume`` picking up a rolling snapshot file, and a killed
sweep worker resuming mid-run from its in-run snapshot under ``--resume``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.engine.events import PRIORITY_SNAPSHOT
from repro.experiments.checkpoint import config_fingerprint
from repro.experiments.runner import (
    _try_resume,
    build_scenario,
    run_built,
    run_scenario,
    run_scenario_safe,
)
from repro.experiments.scenario import (
    ScenarioConfig,
    epfl_scenario,
    scale_scenario,
)
from repro.experiments.sweep import run_many
from repro.faults.plan import FaultPlan
from repro.reports.summary import RunSummary
from repro.snapshot import restore, save
from tests.obs.conftest import tiny_config
from tests.obs.test_determinism import CAPACITY, assert_identical


def observed(**overrides) -> ScenarioConfig:
    return tiny_config(obs_interval=30.0, trace_capacity=CAPACITY, **overrides)


def tiny_taxi(**overrides) -> ScenarioConfig:
    config = scale_scenario(epfl_scenario(), node_factor=0.05, time_factor=0.05)
    return config.replace(
        obs_interval=30.0, trace_capacity=CAPACITY, **overrides
    )


def faulted(config: ScenarioConfig) -> ScenarioConfig:
    duty = config.sim_time / 3.0
    return config.replace(sanitize=True, faults=FaultPlan(
        churn_fraction=0.3, churn_off_time=duty, churn_on_time=duty
    ))


def outputs(built) -> tuple[str, str]:
    assert built.trace is not None and built.timeseries is not None
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
    )


def stable(summary: RunSummary) -> dict:
    data = summary.record()
    data.pop("wall_seconds", None)
    return {
        k: ("nan" if isinstance(v, float) and math.isnan(v) else v)
        for k, v in data.items()
    }


def interrupted_vs_uninterrupted(config: ScenarioConfig):
    """Snapshot at mid-horizon, restore, run both legs to the end."""
    built = build_scenario(config)
    box: list = []
    built.sim.schedule_at(
        config.sim_time / 2.0,
        lambda: box.append(save(built)),
        priority=PRIORITY_SNAPSHOT,
    )
    baseline_summary = run_built(built)
    restored = restore(box[0])
    restored_summary = run_built(restored)
    return (built, baseline_summary), (restored, restored_summary)


class TestRestoredRunsAreByteIdentical:
    def test_rwp_with_faults_and_sanitizer(self):
        (base, base_sum), (rest, rest_sum) = interrupted_vs_uninterrupted(
            faulted(observed())
        )
        assert "fault.injected" in outputs(base)[0]
        assert_identical("rwp-restored", [outputs(base), outputs(rest)])
        assert stable(rest_sum) == stable(base_sum)

    def test_taxi_with_faults_and_sanitizer(self):
        (base, base_sum), (rest, rest_sum) = interrupted_vs_uninterrupted(
            faulted(tiny_taxi())
        )
        assert_identical("taxi-restored", [outputs(base), outputs(rest)])
        assert stable(rest_sum) == stable(base_sum)

    def test_periodic_snapshotter_is_observation_only(self, tmp_path):
        """A run with periodic capture+persist enabled replays the exact
        bytes of one without (the snapshotter must not perturb anything)."""
        plain = build_scenario(observed())
        plain_summary = run_built(plain)
        snapping = build_scenario(observed(
            snapshot_every=150.0, snapshot_to=str(tmp_path / "roll.snap.gz")
        ))
        snapping_summary = run_built(snapping)
        assert (tmp_path / "roll.snap.gz").exists()
        assert_identical(
            "observation-only", [outputs(plain), outputs(snapping)]
        )
        assert stable(snapping_summary) == stable(plain_summary)


class TestCrashRecovery:
    @staticmethod
    def _kill_mid_run(config: ScenarioConfig, at: float) -> None:
        built = build_scenario(config)

        def die() -> None:
            raise RuntimeError("simulated worker death")

        built.sim.schedule_at(at, die, priority=PRIORITY_SNAPSHOT)
        with pytest.raises(RuntimeError, match="worker death"):
            run_built(built)

    def test_run_scenario_safe_resumes_from_rolling_snapshot(self, tmp_path):
        path = tmp_path / "roll.snap.gz"
        config = observed(snapshot_every=150.0, snapshot_to=str(path))
        baseline = run_scenario(config)

        path.unlink()  # pristine state for the killed attempt
        self._kill_mid_run(config, at=451.0)
        assert path.exists(), "killed run left no rolling snapshot"
        resumed_built = _try_resume(config)
        assert resumed_built is not None
        assert resumed_built.sim.now == pytest.approx(450.0)

        result = run_scenario_safe(config)
        assert isinstance(result, RunSummary)
        assert stable(result) == stable(baseline)
        assert not path.exists(), "snapshot not consumed after success"

    def test_stale_snapshot_for_another_config_is_ignored(self, tmp_path):
        path = tmp_path / "roll.snap.gz"
        config = observed(snapshot_every=150.0, snapshot_to=str(path))
        self._kill_mid_run(config, at=451.0)
        # Same file, different scenario (the retry-with-fresh-seed case).
        assert _try_resume(config.replace(seed=config.seed + 1)) is None

    def test_killed_sweep_worker_resumes_under_resume(self, tmp_path):
        """Acceptance: a sweep item killed mid-run resumes from its in-run
        snapshot when the sweep re-runs with ``--resume``."""
        ckpt = tmp_path / "sweep.jsonl"
        configs = [observed(seed=s, snapshot_every=150.0) for s in (5, 6)]
        uninterrupted = run_many(configs, workers=1)

        # Simulate the killed worker: run item 0 by hand against the sweep's
        # derived per-item snapshot path and die mid-run.
        derived = (
            ckpt.parent
            / (ckpt.name + ".snap")
            / f"{config_fingerprint(configs[0])}.snap.gz"
        )
        self._kill_mid_run(
            configs[0].replace(snapshot_to=str(derived)), at=451.0
        )
        assert derived.exists(), "killed item left no in-run snapshot"

        resumed = run_many(configs, workers=1, checkpoint=str(ckpt))
        assert [stable(r) for r in resumed] == [
            stable(r) for r in uninterrupted
        ]
        assert not derived.exists(), "in-run snapshot not consumed on success"
