"""Determinism replay suite: seeded runs are byte-identical, everywhere.

The reproducibility contract is stronger than "same delivery ratio": the
same :class:`ScenarioConfig` (same seed) must yield a *byte-identical* event
trace and identical metric time series — run-to-run in one process, and
serial vs. ``parallel_map`` spawn workers.  A drift anywhere in the event
ordering, RNG stream usage or float arithmetic shows up here first, as a
trace diff instead of a mysteriously shifted figure.

On failure, set ``REPRO_OBS_ARTIFACT_DIR`` to keep the mismatching trace
dumps for offline diffing (CI uploads that directory as an artifact).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ScenarioConfig
from repro.parallel.pool import parallel_map
from tests.obs.conftest import tiny_config

#: Retain everything the tiny scenario emits (asserted: nothing evicted).
CAPACITY = 500_000


def observed_run(config: ScenarioConfig) -> tuple[str, str]:
    """One fully observed run -> (trace JSONL, time-series JSON) strings.

    Module-level (not a closure) so ``parallel_map`` can pickle it into
    spawn workers.  Returning serialized strings makes the comparison
    byte-exact and keeps the IPC payload simple.
    """
    built = build_scenario(config.replace(
        obs_interval=60.0, trace_capacity=CAPACITY
    ))
    run_built(built)
    assert built.trace is not None and built.timeseries is not None
    assert built.trace.events_seen == len(built.trace)
    timeseries = json.dumps(built.timeseries.as_dict(), sort_keys=True)
    return built.trace.to_jsonl(), timeseries


def _dump_artifacts(name: str, runs: list[tuple[str, str]]) -> str:
    """Persist mismatching runs for CI artifact upload; returns a hint."""
    artifact_dir = os.environ.get("REPRO_OBS_ARTIFACT_DIR")
    if not artifact_dir:
        return "set REPRO_OBS_ARTIFACT_DIR to keep dumps"
    out = Path(artifact_dir)
    out.mkdir(parents=True, exist_ok=True)
    for i, (trace, timeseries) in enumerate(runs):
        (out / f"{name}-run{i}.trace.jsonl").write_text(
            trace, encoding="utf-8"
        )
        (out / f"{name}-run{i}.timeseries.json").write_text(
            timeseries, encoding="utf-8"
        )
    return f"dumps written to {out}"


def assert_identical(name: str, runs: list[tuple[str, str]]) -> None:
    first = runs[0]
    for i, run in enumerate(runs[1:], start=1):
        if run != first:
            hint = _dump_artifacts(name, runs)
            assert run[0] == first[0], f"{name}: trace differs (run {i}; {hint})"
            assert run[1] == first[1], (
                f"{name}: time series differs (run {i}; {hint})"
            )


class TestReplayDeterminism:
    def test_same_seed_same_process_is_byte_identical(self):
        config = tiny_config()
        runs = [observed_run(config) for _ in range(2)]
        assert runs[0][0], "trace must not be empty"
        assert_identical("same-process", runs)

    def test_different_seeds_actually_differ(self):
        """Guard against a trivially-passing suite (e.g. empty traces)."""
        a = observed_run(tiny_config(seed=1))
        b = observed_run(tiny_config(seed=2))
        assert a[0] != b[0]
        assert a[1] != b[1]

    def test_serial_vs_parallel_workers_identical(self):
        """Spawned workers replay the exact same bytes as in-process runs."""
        configs = [tiny_config(seed=seed) for seed in (1, 2)]
        serial = parallel_map(observed_run, configs, workers=1)
        parallel = parallel_map(observed_run, configs, workers=2)
        for config, s_run, p_run in zip(configs, serial, parallel):
            assert_identical(f"seed{config.seed}-serial-vs-parallel",
                             [s_run, p_run])

    def test_faulted_run_is_deterministic(self):
        """Fault injection (its own RNG stream) replays byte-identically."""
        from repro.faults.plan import FaultPlan

        duty = 300.0
        config = tiny_config(faults=FaultPlan(
            churn_fraction=0.3, churn_off_time=duty, churn_on_time=duty
        ))
        runs = [observed_run(config) for _ in range(2)]
        assert "fault.injected" in runs[0][0]
        assert_identical("faulted", runs)
