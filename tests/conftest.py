"""Shared pytest configuration."""

from __future__ import annotations

from hypothesis import HealthCheck, settings

# Property tests exercise simulation code whose first call may be slow
# (numpy warm-up); relax the per-example deadline accordingly.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
