"""The analytic validity envelope: loud rejection, never silent ignoring.

Covers every `_validate_analytic` clause, the `build_scenario` guard, and
the chaos-sampler axis: widening the backend space to include
"analytic"/"hybrid" must only ever produce constructible, clean-running
cases (malformed combinations surface as ConfigurationError at
construction, not as crashes mid-run)."""

from __future__ import annotations

import pytest

from repro.chaos.runner import run_case
from repro.chaos.space import ChaosSpace, sample_case
from repro.errors import ConfigurationError
from repro.experiments.runner import build_scenario, run_scenario_safe
from repro.experiments.scenario import (
    ANALYTIC_BACKENDS,
    ANALYTIC_MOBILITIES,
    ANALYTIC_ROUTERS,
    ENGINE_BACKENDS,
)
from repro.faults.plan import FaultPlan
from tests.analytic.util import analytic_config


class TestEnvelope:
    @pytest.mark.parametrize("backend", ANALYTIC_BACKENDS)
    def test_backends_are_registered(self, backend):
        assert backend in ENGINE_BACKENDS
        analytic_config(backend=backend)  # constructs cleanly

    @pytest.mark.parametrize(
        "overrides",
        [
            {"router": "prophet"},
            {"router": "snf"},
            {"mobility": "stationary"},
            {"faults": FaultPlan(link_flap_rate=0.1)},
            {"sanitize": True},
            {"trace_capacity": 1024},
            {"snapshot_every": 100.0},
            {"with_buffer_report": True},
            {"metrics_warmup": 50.0},
            {"profile": True},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_unsupported_features_rejected_at_construction(self, overrides):
        with pytest.raises(ConfigurationError):
            analytic_config(**overrides)

    def test_disabled_fault_plan_is_allowed(self):
        # A plan with nothing enabled changes no numbers; only *enabled*
        # fault machinery is out of envelope.
        config = analytic_config(faults=FaultPlan())
        assert config.faults is not None and not config.faults.enabled

    def test_supported_routers_and_mobilities(self):
        for router in ANALYTIC_ROUTERS:
            analytic_config(router=router)
        for mobility in ANALYTIC_MOBILITIES:
            if mobility == "taxi":
                continue  # needs the calibrated estimator; covered elsewhere
            analytic_config(mobility=mobility)


class TestRunnerGuards:
    def test_build_scenario_refuses_analytic_backends(self):
        with pytest.raises(ConfigurationError, match="run_scenario"):
            build_scenario(analytic_config())

    def test_run_scenario_safe_dispatches_without_snapshots(self):
        summary = run_scenario_safe(analytic_config())
        assert summary.created > 0


class TestChaosAxis:
    SPACE = ChaosSpace(
        engine_backends=("scalar", "vector", "analytic", "hybrid")
    )

    def test_sampled_analytic_cases_construct_and_pass(self):
        """Every analytic/hybrid draw is coerced into the envelope and runs
        clean under the full oracle battery."""
        seen_analytic = 0
        for index in range(24):
            config = sample_case(self.SPACE, base_seed=2024, index=index)
            if config.engine_backend not in ANALYTIC_BACKENDS:
                continue
            seen_analytic += 1
            assert config.router in ANALYTIC_ROUTERS
            assert config.mobility in ANALYTIC_MOBILITIES
            assert config.faults is None
            assert not config.sanitize
            assert config.trace_capacity == 0
            result = run_case(config)
            assert result.ok, result.failure
            assert result.trace_jsonl is None
        # The backend axis is drawn uniformly: 24 draws over 4 backends
        # make an analytic-family case overwhelmingly likely.
        assert seen_analytic >= 3

    def test_default_space_corpus_mapping_is_preserved(self):
        """The default space must keep the historical (seed, index) ->
        case mapping: no analytic backends, identical draws."""
        default = ChaosSpace()
        assert default.engine_backends == ("scalar", "vector")
        config = sample_case(default, base_seed=2024, index=0)
        assert config.engine_backend in ("scalar", "vector")
