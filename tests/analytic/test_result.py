"""AnalyticResult rendering: RunSummary shape, timeseries schema, and the
service-cache byte-identity contract on repeat submission."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.analytic.runner import run_analytic
from repro.chaos.oracles import check_summary
from repro.chaos.runner import stable_summary
from repro.experiments.checkpoint import config_fingerprint
from repro.experiments.runner import run_scenario
from repro.obs.timeseries import TimeSeriesCollector, read_timeseries_json
from repro.reports.summary import RunSummary
from repro.service.api import STATUS_DONE, STATUS_QUEUED, ScenarioService
from repro.service.cache import ResultCache
from tests.analytic.util import analytic_config


@pytest.fixture(scope="module")
def result():
    return run_analytic(analytic_config())


class TestSummary:
    def test_summary_is_a_consistent_run_summary(self, result):
        summary = result.summary()
        assert isinstance(summary, RunSummary)
        # The chaos summary oracle accepts analytic output as-is.
        assert check_summary(summary) is None
        assert summary.created > 0
        assert 0 < summary.delivered <= summary.created
        assert summary.relayed >= summary.delivered
        assert 0.0 < summary.delivery_ratio < 1.0
        assert summary.average_latency > 0.0
        assert summary.contacts > 0
        assert summary.mean_intermeeting == pytest.approx(
            1.0 / result.meeting.rate
        )

    def test_summary_record_round_trips(self, result):
        summary = result.summary()
        clone = RunSummary.from_record(summary.record())
        assert clone == summary

    def test_epidemic_and_direct_render_too(self):
        for router in ("epidemic", "direct"):
            summary = run_analytic(analytic_config(router=router)).summary()
            assert check_summary(summary) is None
            assert summary.created > 0
        # Direct delivery never relays beyond the delivery hop.
        direct = run_analytic(analytic_config(router="direct")).summary()
        assert direct.relayed == direct.delivered
        assert direct.average_hopcount == pytest.approx(1.0)

    def test_zero_window_horizon_yields_nan_latency(self):
        config = analytic_config(sim_time=600.0, ttl=1.0)
        summary = run_analytic(config).summary()
        assert summary.delivered == 0
        assert math.isnan(summary.average_latency)


class TestTimeseries:
    def test_export_parses_with_the_simulator_reader(self, result, tmp_path):
        path = tmp_path / "obs.json"
        result.write_timeseries(path)
        payload = read_timeseries_json(path)
        assert payload["columns"] == list(TimeSeriesCollector.column_names())
        samples = payload["samples"]
        assert samples["time"][-1] == pytest.approx(result.config.sim_time)
        # Counters are monotone and consistent at the horizon.
        for column in ("created", "delivered", "relayed"):
            series = samples[column]
            assert all(b >= a for a, b in zip(series, series[1:]))
        assert samples["delivered"][-1] == result.summary().delivered
        hist = payload["histograms"]["delivery_latency_s"]
        assert sum(hist["counts"]) == hist["n"] == result.summary().delivered

    def test_interval_override(self, result):
        payload = result.timeseries(interval=500.0)
        assert payload["interval"] == 500.0
        assert payload["samples"]["time"][0] == 500.0


class TestServiceCache:
    def test_repeat_evaluation_is_bit_identical(self, tmp_path):
        """Two independent evaluations differ only in wall-clock; pinning
        it makes the cache write the exact same bytes."""
        config = analytic_config()
        first = run_scenario(config)
        second = run_scenario(config)
        assert stable_summary(first) == stable_summary(second)

        cache = ResultCache(tmp_path / "cache")
        fingerprint = config_fingerprint(config)
        cache.put(fingerprint, first)
        blob = cache.get_bytes(fingerprint)
        cache.put(
            fingerprint,
            dataclasses.replace(second, wall_seconds=first.wall_seconds),
        )
        assert cache.get_bytes(fingerprint) == blob

    @pytest.mark.parametrize("backend", ["analytic", "hybrid"])
    def test_repeat_submission_serves_cached_bytes(self, tmp_path, backend):
        config = analytic_config(backend=backend)
        service = ScenarioService(
            tmp_path / "svc",
            workers=0,
            run_fn=run_scenario,
            sleep=lambda _s: None,
        )
        first = service.submit(config)
        assert first.status == STATUS_QUEUED
        assert service.drain()
        blob = service.cache.get_bytes(first.fingerprint)
        assert blob is not None

        again = service.submit(config)
        assert again.status == STATUS_DONE and again.cached
        assert service.cache.get_bytes(first.fingerprint) == blob
        served = service.result(again.job_id)
        assert isinstance(served, RunSummary)
        assert stable_summary(served) == stable_summary(run_scenario(config))
        service.close()
