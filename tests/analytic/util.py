"""Shared scenario factory for the analytic test battery.

The base config is the cross-validation workhorse: a Table-II-flavoured
RWP fleet small enough that the scalar simulator finishes in well under a
second, with traffic light enough that buffers only congest when a test
shrinks them on purpose.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioConfig

MESSAGE_SIZE = 10_000


def analytic_config(
    *,
    n_nodes: int = 20,
    copies: int = 8,
    buffer_msgs: int = 40,
    router: str = "snw",
    backend: str = "analytic",
    seed: int = 1,
    sim_time: float = 6000.0,
    **overrides,
) -> ScenarioConfig:
    base = ScenarioConfig(
        name="analytic-test",
        n_nodes=n_nodes,
        sim_time=sim_time,
        mobility="rwp",
        area=(2000.0, 2000.0),
        speed_range=(2.0, 3.0),
        pause_range=(0.0, 10.0),
        radio_range=100.0,
        buffer_bytes=buffer_msgs * MESSAGE_SIZE,
        message_size=MESSAGE_SIZE,
        interval_range=(50.0, 70.0),
        ttl=3000.0,
        initial_copies=copies,
        router=router,
        policy="fifo",
        engine_backend=backend,
        seed=seed,
    )
    return base.replace(**overrides) if overrides else base
