"""Meeting-rate estimator: derived formula, calibration fallback, provenance."""

from __future__ import annotations

import math

import pytest

from repro.analytic.meeting import (
    METHOD_CALIBRATED,
    METHOD_DERIVED,
    MeetingRate,
    calibrated_rate,
    derived_rate,
    meeting_rate,
)
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig


def rwp_config(**overrides):
    base = ScenarioConfig(
        name="meeting-test",
        n_nodes=20,
        sim_time=4000.0,
        mobility="rwp",
        area=(2000.0, 2000.0),
        speed_range=(2.0, 3.0),
        pause_range=(0.0, 10.0),
        radio_range=100.0,
        router="snw",
        policy="fifo",
    )
    return base.replace(**overrides) if overrides else base


def test_derived_rate_is_positive_and_finite():
    est = derived_rate(rwp_config())
    assert est.method == METHOD_DERIVED
    assert est.rate > 0
    assert math.isfinite(est.rate)
    assert est.mean_intermeeting == pytest.approx(1.0 / est.rate)


def test_derived_rate_scales_with_geometry():
    base = derived_rate(rwp_config()).rate
    # Quadrupled area -> roughly a quarter the rate (not exact: longer
    # legs also raise the moving fraction slightly); doubled range ->
    # exactly doubled rate.
    big = derived_rate(rwp_config(area=(4000.0, 4000.0))).rate
    assert big == pytest.approx(base / 4.0, rel=0.02)
    long_radio = derived_rate(rwp_config(radio_range=200.0)).rate
    assert long_radio == pytest.approx(base * 2.0)


def test_derived_rate_rejects_unsupported_mobility():
    with pytest.raises(ConfigurationError):
        derived_rate(rwp_config(mobility="taxi", area=(8000.0, 8000.0)))


def test_derived_rate_rejects_zero_speed():
    with pytest.raises(ConfigurationError):
        derived_rate(rwp_config(speed_range=(0.0, 0.0)))


def test_calibrated_rate_is_deterministic():
    config = rwp_config(sim_time=1500.0)
    first = calibrated_rate(config)
    second = calibrated_rate(config)
    assert first.method == METHOD_CALIBRATED
    assert first.rate == second.rate
    assert first.detail == second.detail


def test_calibration_agrees_with_derived_formula_on_rwp():
    """The empirical estimator must land near the closed form on RWP.

    Groenevelt's formula is itself an approximation, so the bar is a
    factor-of-two band, not equality — what matters is that the fallback
    produces the same order of magnitude the models are parameterized by.
    """
    config = rwp_config(sim_time=4000.0)
    derived = derived_rate(config).rate
    calibrated = calibrated_rate(config).rate
    assert 0.5 * derived < calibrated < 2.0 * derived


def test_auto_method_picks_per_mobility():
    assert meeting_rate(rwp_config()).method == METHOD_DERIVED
    taxi = rwp_config(
        mobility="taxi", area=(3000.0, 3000.0), sim_time=1500.0
    )
    assert meeting_rate(taxi).method == METHOD_CALIBRATED


def test_unknown_method_rejected():
    with pytest.raises(ConfigurationError):
        meeting_rate(rwp_config(), method="guess")


def test_meeting_rate_validates_positivity():
    with pytest.raises(ConfigurationError):
        MeetingRate(rate=0.0, method=METHOD_DERIVED)
    with pytest.raises(ConfigurationError):
        MeetingRate(rate=float("nan"), method=METHOD_DERIVED)
