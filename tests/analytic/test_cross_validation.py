"""Analytic backend vs the discrete simulators (ISSUE 9 satellite 1).

Each grid point runs the scalar simulator over a few seeds and compares
the seed-averaged delivery ratio and mean delay with the analytic
expectation for the *same* :class:`ScenarioConfig`.  One point re-runs on
the vector backend, which is byte-identical to scalar (tier-1 guarantee),
to pin the analytic-vs-vector leg explicitly.

Tolerance bands (documented in docs/analytic.md, measured over 3 seeds on
this exact grid):

=====================  ==================  =====================
regime                 |Δ delivery ratio|  relative delay error
=====================  ==================  =====================
uncongested sprays     <= 0.12 absolute    <= 0.30
congested buffers      <= 0.12 absolute    <= 0.50
=====================  ==================  =====================

The mean-field model is an expectation over mobility/traffic randomness —
a handful of seeds of a 10–40-node fleet carries real sampling noise, so
these bands are deliberately loose enough to be stable yet tight enough
that a broken rate estimate (factor-of-two meeting rate, wrong spread
dynamics, missing blocking) blows straight through them.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analytic.runner import run_analytic
from repro.experiments.runner import run_scenario
from repro.rng import derive_seed
from tests.analytic.util import analytic_config

SEEDS = tuple(derive_seed(1, "xval", s) for s in range(3))

#: (n_nodes, copies, buffer_msgs, ratio_tol, delay_tol)
GRID = (
    (10, 4, 40, 0.12, 0.30),
    (20, 8, 40, 0.12, 0.30),
    (40, 16, 40, 0.12, 0.30),
    # Congested: 6-message buffers force the blocking fixed point to bite.
    (20, 8, 6, 0.12, 0.50),
    # Degenerate spray: L=2 leans hardest on the direct-delivery tail.
    (20, 2, 40, 0.12, 0.30),
)


def _simulated(config, backend):
    ratios, delays = [], []
    for seed in SEEDS:
        summary = run_scenario(
            config.replace(engine_backend=backend, seed=seed)
        )
        ratios.append(summary.delivery_ratio)
        if not math.isnan(summary.average_latency):
            delays.append(summary.average_latency)
    return statistics.fmean(ratios), statistics.fmean(delays)


@pytest.mark.parametrize(
    "n_nodes,copies,buffer_msgs,ratio_tol,delay_tol",
    GRID,
    ids=lambda v: str(v),
)
def test_analytic_matches_scalar_simulator(
    n_nodes, copies, buffer_msgs, ratio_tol, delay_tol
):
    config = analytic_config(
        n_nodes=n_nodes, copies=copies, buffer_msgs=buffer_msgs
    )
    analytic = run_analytic(config)
    sim_ratio, sim_delay = _simulated(config, "scalar")

    assert abs(analytic.delivery_ratio - sim_ratio) <= ratio_tol, (
        f"delivery ratio: analytic {analytic.delivery_ratio:.3f} vs "
        f"scalar {sim_ratio:.3f}"
    )
    assert abs(analytic.average_latency - sim_delay) <= delay_tol * sim_delay, (
        f"mean delay: analytic {analytic.average_latency:.0f}s vs "
        f"scalar {sim_delay:.0f}s"
    )


def test_analytic_matches_vector_simulator():
    """One grid point against the struct-of-arrays backend: same bands."""
    config = analytic_config(n_nodes=20, copies=8, buffer_msgs=40)
    analytic = run_analytic(config)
    sim_ratio, sim_delay = _simulated(config, "vector")
    assert abs(analytic.delivery_ratio - sim_ratio) <= 0.12
    assert abs(analytic.average_latency - sim_delay) <= 0.30 * sim_delay


def test_analytic_reproduces_copies_trend():
    """The qualitative Spray-and-Wait law: a larger spray budget delivers
    no worse — the trend figures (fig-validate) rely on it."""
    ratios = [
        run_analytic(analytic_config(copies=copies)).delivery_ratio
        for copies in (2, 4, 8, 16)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
