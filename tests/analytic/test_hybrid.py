"""Hybrid mode: bit-repeatability, seed sensitivity, statistical agreement
with the pure expectation, and the subsample path for busy traffic."""

from __future__ import annotations

import statistics

import pytest

from repro.analytic.hybrid import (
    HYBRID_MAX_MESSAGES,
    _creation_times,
    hybrid_summary,
)
from repro.analytic.runner import run_analytic
from repro.chaos.oracles import check_summary
from repro.chaos.runner import stable_summary
from repro.experiments.runner import run_scenario
from repro.rng import RngFactory
from tests.analytic.util import analytic_config


def hybrid_config(**overrides):
    return analytic_config(backend="hybrid", **overrides)


def test_same_seed_is_bit_identical():
    config = hybrid_config(seed=7)
    first = run_scenario(config)
    second = run_scenario(config)
    # Everything but wall-clock is bit-identical (the determinism
    # contract: all draws come from named seed-derived streams).
    assert stable_summary(first) == stable_summary(second)


def test_different_seeds_differ():
    base = run_scenario(hybrid_config(seed=7))
    outcomes = {
        (base.delivered, round(base.average_latency, 6)),
    }
    for seed in (8, 9, 10, 11):
        other = run_scenario(hybrid_config(seed=seed))
        outcomes.add((other.delivered, round(other.average_latency, 6)))
    # Creation and delay draws are seed-derived: five seeds cannot all
    # collapse onto one sampled outcome.
    assert len(outcomes) > 1


def test_hybrid_passes_the_summary_oracle():
    summary = run_scenario(hybrid_config(seed=3))
    assert check_summary(summary) is None


def test_sampled_ratio_tracks_the_expectation():
    """Across seeds the sampled delivery ratio is an unbiased draw around
    the analytic expectation; the seed-averaged gap must be small."""
    config = hybrid_config()
    expectation = run_analytic(config).delivery_ratio
    ratios = [
        run_scenario(hybrid_config(seed=seed)).delivery_ratio
        for seed in range(1, 9)
    ]
    assert abs(statistics.fmean(ratios) - expectation) < 0.1


def test_subsample_path_engages_and_scales_weights():
    """A horizon busy enough to exceed the message cap switches to the
    weighted uniform sample but keeps the created count calibrated."""
    config = hybrid_config(
        sim_time=100_000.0, interval_range=(0.1, 0.3), ttl=3000.0
    )
    result = run_analytic(config)
    assert result.expected_created > HYBRID_MAX_MESSAGES

    times, weight = _creation_times(result, RngFactory(config.seed))
    assert len(times) == HYBRID_MAX_MESSAGES
    assert weight == pytest.approx(
        result.expected_created / HYBRID_MAX_MESSAGES
    )
    assert times == sorted(times)

    summary = hybrid_summary(result)
    assert summary.created == pytest.approx(
        result.expected_created, rel=0.01
    )
    assert check_summary(summary) is None
