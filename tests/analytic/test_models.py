"""DelayModel machinery and the two model builders against closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analytic.epidemic import epidemic_delay_model
from repro.analytic.model import DelayModel
from repro.analytic.snw import direct_delay_model, snw_delay_model
from repro.errors import ConfigurationError

RATE = 1.0e-3
WINDOW = 3000.0


def test_direct_matches_exponential_cdf():
    """One relay pair: F(t) = 1 − e^{−λt} exactly (expm correctness)."""
    model = direct_delay_model(rate=RATE, window=WINDOW)
    expected = 1.0 - np.exp(-RATE * model.times)
    np.testing.assert_allclose(model.cdf, expected, atol=1e-9)
    # And the analytic integral G(W) = W − (1 − e^{−λW})/λ.
    # And the cached trapezoid integral G(W) = W − (1 − e^{−λW})/λ up to
    # the 512-interval grid's discretization error.
    g = WINDOW - (1.0 - math.exp(-RATE * WINDOW)) / RATE
    assert model.int_cdf(WINDOW) == pytest.approx(g, rel=1e-5)


def test_snw_cdf_is_monotone_and_bounded():
    for source in (False, True):
        model = snw_delay_model(
            n_nodes=40, copies=8, rate=RATE, window=WINDOW,
            source_spray=source,
        )
        assert model.cdf[0] == pytest.approx(0.0, abs=1e-12)
        assert np.all(np.diff(model.cdf) >= -1e-12)
        assert model.cdf[-1] <= 1.0 + 1e-12
        assert np.all(model.mean_copies >= 1.0 - 1e-9)
        assert np.all(model.mean_copies <= 8.0 + 1e-9)


def test_more_copies_deliver_faster():
    few = snw_delay_model(n_nodes=40, copies=2, rate=RATE, window=WINDOW)
    many = snw_delay_model(n_nodes=40, copies=16, rate=RATE, window=WINDOW)
    assert many.ratio_at(WINDOW) > few.ratio_at(WINDOW)
    # Binary spray reaches the budget faster than source spray.
    source = snw_delay_model(
        n_nodes=40, copies=16, rate=RATE, window=WINDOW, source_spray=True
    )
    assert many.int_copies(WINDOW) >= source.int_copies(WINDOW)


def test_thinning_slows_the_spray():
    full = snw_delay_model(n_nodes=40, copies=8, rate=RATE, window=WINDOW)
    thinned = snw_delay_model(
        n_nodes=40, copies=8, rate=RATE, window=WINDOW, thin=0.3
    )
    assert thinned.ratio_at(WINDOW) < full.ratio_at(WINDOW)
    assert thinned.int_copies(WINDOW) < full.int_copies(WINDOW)
    with pytest.raises(ConfigurationError):
        snw_delay_model(
            n_nodes=40, copies=8, rate=RATE, window=WINDOW, thin=0.0
        )


def test_single_copy_spray_equals_direct():
    spray = snw_delay_model(n_nodes=2, copies=1, rate=RATE, window=WINDOW)
    direct = direct_delay_model(rate=RATE, window=WINDOW)
    np.testing.assert_allclose(spray.cdf, direct.cdf, atol=1e-12)


def test_epidemic_matches_logistic_closed_form():
    """With effectively infinite buffers the mean-field reliability is
    P(t) = 1 − N/(N − 1 + e^{λNt}) (arXiv 1601.06345, ρ = 0)."""
    n = 50
    model, rho = epidemic_delay_model(
        n_nodes=n, rate=RATE, window=WINDOW, gen_rate=1e-6,
        buffer_capacity_msgs=1e9,
    )
    assert rho == 0.0
    tau = RATE * n * model.times
    expected = 1.0 - n / (n - 1.0 + np.exp(tau))
    np.testing.assert_allclose(model.cdf, expected, atol=5e-3)


def test_epidemic_blocking_reduces_delivery():
    open_model, rho0 = epidemic_delay_model(
        n_nodes=30, rate=RATE, window=WINDOW, gen_rate=0.02,
        buffer_capacity_msgs=1e9,
    )
    tight_model, rho1 = epidemic_delay_model(
        n_nodes=30, rate=RATE, window=WINDOW, gen_rate=0.02,
        buffer_capacity_msgs=2.0,
    )
    assert rho0 == 0.0
    assert 0.0 < rho1 <= 0.95
    # Both CDFs saturate by the full window (λNW ≈ 90), so compare while
    # the epidemic is still spreading and via the cumulative integral.
    assert tight_model.ratio_at(150.0) < open_model.ratio_at(150.0)
    assert tight_model.int_cdf(WINDOW) < open_model.int_cdf(WINDOW)


def test_horizon_averages_are_sane():
    model = snw_delay_model(n_nodes=20, copies=8, rate=RATE, window=WINDOW)
    ratio = model.horizon_delivery_ratio(6000.0, WINDOW)
    assert 0.0 < ratio < 1.0
    # Horizon averaging can only lower the ratio versus the full window.
    assert ratio <= model.ratio_at(WINDOW) + 1e-12
    delay = model.horizon_mean_delay(6000.0, WINDOW)
    assert 0.0 < delay < WINDOW
    hops = model.mean_hops(WINDOW)
    assert 1.0 <= hops <= math.log2(8) + 1.0 + 1e-9


def test_mean_hops_nan_when_nothing_delivered():
    model = direct_delay_model(rate=RATE, window=WINDOW)
    assert math.isnan(model.mean_hops(0.0))


def test_sample_delay_contract():
    model = direct_delay_model(rate=RATE, window=WINDOW)
    bound = model.ratio_at(WINDOW)
    # A draw below F(W) inverts the CDF...
    delay = model.sample_delay(bound / 2.0, WINDOW)
    assert delay is not None and 0.0 < delay < WINDOW
    assert model.ratio_at(delay) == pytest.approx(bound / 2.0, abs=1e-9)
    # ...a draw above it means the window was missed.
    assert model.sample_delay(min(0.999999, bound + 1e-6), WINDOW) is None
    for bad in (-0.01, 1.0, float("nan")):
        with pytest.raises(ConfigurationError):
            model.sample_delay(bad, WINDOW)


def test_delay_model_validates_grids():
    t = np.linspace(0.0, 10.0, 8)
    with pytest.raises(ConfigurationError):
        DelayModel(t, t[:4], t, t)
    with pytest.raises(ConfigurationError):
        DelayModel(t[:1], t[:1], t[:1], t[:1])
