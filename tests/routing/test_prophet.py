"""PRoPHET delivery-predictability routing."""

from __future__ import annotations

import pytest

from repro.routing.prophet import ProphetRouter
from tests.helpers import build_micro_world, make_message

LINE = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)]
ISOLATED = [(0.0, 0.0), (900.0, 0.0), (1800.0, 0.0)]


def prophet_world(points, **kw):
    return build_micro_world(points=points, router_factory=ProphetRouter, **kw)


class TestPredictabilityTable:
    def test_direct_update_on_encounter(self):
        mw = prophet_world([(0.0, 0.0), (50.0, 0.0)])
        mw.sim.run(until=2.0)
        r0 = mw.router(0)
        assert r0.predictability(1) > 0.7

    def test_repeated_encounters_increase(self):
        mw = prophet_world([(0.0, 0.0), (50.0, 0.0)])
        mw.sim.run(until=2.0)
        first = mw.router(0).predictability(1)
        # Simulate a re-encounter by calling the hook again.
        mw.router(0).on_link_up(mw.nodes[1])
        assert mw.router(0).predictability(1) > first

    def test_aging_decays(self):
        mw = prophet_world(ISOLATED, sim_time=5000.0)
        r0 = mw.router(0)
        r0._preds[2] = 0.8
        r0._last_aged = mw.sim.now
        mw.sim.run(until=2000.0)
        assert r0.predictability(2) < 0.8

    def test_transitivity(self):
        # 1 has met 2; when 0 *re-encounters* 1, it learns about 2
        # transitively (the initial simultaneous link-ups happen before 1
        # knows anything, so a second meeting is what spreads the info).
        mw = prophet_world(LINE)
        mw.sim.run(until=2.0)
        r0, r1 = mw.router(0), mw.router(1)
        assert r1.predictability(2) > 0.7
        r0.on_link_up(mw.nodes[1])
        assert r0.predictability(2) > 0.0
        assert r0.predictability(2) == pytest.approx(
            r0.predictability(1) * r1._preds[2] * 0.25, rel=0.2
        )


class TestForwarding:
    def test_copies_flow_toward_higher_predictability(self):
        mw = prophet_world(LINE)
        mw.sim.run(until=2.0)
        # Node 1 is adjacent to the destination 2 -> higher P(2) than node 0.
        mw.router(0).create_message(
            make_message(source=0, destination=2, size=1000)
        )
        mw.sim.run(until=60.0)
        assert mw.metrics.delivered == 1

    def test_no_forward_to_lower_predictability(self):
        mw = prophet_world(ISOLATED, sim_time=100.0)
        # No one has ever met node 2: predictabilities are all ~0, so the
        # copy must stay at the source.
        mw.router(0).create_message(
            make_message(source=0, destination=2, size=1000)
        )
        mw.sim.run()
        assert mw.metrics.relayed == 0

    def test_full_scenario_runs(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import random_waypoint_scenario, scale_scenario

        cfg = scale_scenario(
            random_waypoint_scenario(policy="fifo", router="prophet", seed=2),
            node_factor=0.12, time_factor=0.06,
        )
        summary = run_scenario(cfg)
        assert summary.created > 0
