"""Router base machinery: receive path, make-room (Algorithm 1), purge."""

from __future__ import annotations

import pytest

from repro.net.outcomes import ReceiveOutcome
from repro.policies.fifo import FifoPolicy
from repro.policies.ttl_based import TtlRatioPolicy
from repro.units import megabytes
from tests.helpers import build_micro_world, make_message

HALF_MB = megabytes(0.5)


def isolated_pair(policy_factory=FifoPolicy, buffer_bytes=megabytes(2.5)):
    """Two nodes out of range: receive() can be driven by hand."""
    return build_micro_world(
        points=[(0.0, 0.0), (900.0, 900.0)],
        policy_factory=policy_factory,
        buffer_bytes=buffer_bytes,
    )


class TestReceivePath:
    def test_accept_stores_and_hooks(self):
        mw = isolated_pair()
        mw.sim.run(until=1.0)
        msg = make_message(source=0, destination=1, copies=4)
        out = mw.router(0).receive(
            make_message(msg_id="X", source=1, destination=0, copies=4,
                         hop_count=1),
            mw.nodes[1],
        )
        # receiving node 0 IS the destination here -> delivered
        assert out == ReceiveOutcome.DELIVERED
        out = mw.router(0).receive(
            make_message(msg_id="Y", source=1, destination=9, copies=4), mw.nodes[1]
        )
        # destination elsewhere -> stored
        assert out == ReceiveOutcome.ACCEPTED
        assert "Y" in mw.nodes[0].buffer
        _ = msg

    def test_duplicate_rejected(self):
        mw = isolated_pair()
        mw.sim.run(until=1.0)
        payload = make_message(msg_id="D", source=1, destination=9, copies=2)
        assert mw.router(0).receive(payload, mw.nodes[1]) == ReceiveOutcome.ACCEPTED
        again = make_message(msg_id="D", source=1, destination=9, copies=2)
        assert mw.router(0).receive(again, mw.nodes[1]) == ReceiveOutcome.DUPLICATE

    def test_expired_rejected(self):
        mw = isolated_pair()
        mw.sim.run(until=100.0)
        stale = make_message(msg_id="S", source=1, destination=9, ttl=10.0)
        assert mw.router(0).receive(stale, mw.nodes[1]) == ReceiveOutcome.EXPIRED

    def test_second_delivery_flagged(self):
        mw = isolated_pair()
        mw.sim.run(until=1.0)
        p1 = make_message(msg_id="Z", source=1, destination=0)
        p2 = make_message(msg_id="Z", source=1, destination=0)
        assert mw.router(0).receive(p1, mw.nodes[1]) == ReceiveOutcome.DELIVERED
        assert (
            mw.router(0).receive(p2, mw.nodes[1])
            == ReceiveOutcome.ALREADY_DELIVERED
        )


class TestMakeRoom:
    def test_fifo_drops_oldest_newcomer_always_wins(self):
        # Buffer fits 2 half-MB messages.
        mw = isolated_pair(buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        for i in (1, 2):
            out = r.receive(
                make_message(msg_id=f"M{i}", source=1, destination=9), mw.nodes[1]
            )
            assert out == ReceiveOutcome.ACCEPTED
        out = r.receive(
            make_message(msg_id="M3", source=1, destination=9), mw.nodes[1]
        )
        assert out == ReceiveOutcome.ACCEPTED
        assert mw.nodes[0].buffer.ids() == ["M2", "M3"]  # M1 (oldest) evicted
        assert mw.metrics.drops_by_reason["overflow"] == 1

    def test_priority_policy_rejects_lowest_newcomer(self):
        mw = isolated_pair(policy_factory=TtlRatioPolicy,
                           buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        # Two fresh messages fill the buffer.
        for i in (1, 2):
            r.receive(
                make_message(msg_id=f"F{i}", source=1, destination=9,
                             created_at=0.9), mw.nodes[1],
            )
        # A stale newcomer (low remaining-TTL ratio) must be refused.
        stale = make_message(msg_id="Old", source=1, destination=9,
                             created_at=-17000.0, ttl=18000.0)
        out = r.receive(stale, mw.nodes[1])
        assert out == ReceiveOutcome.REJECTED_OVERFLOW
        assert set(mw.nodes[0].buffer.ids()) == {"F1", "F2"}

    def test_priority_policy_evicts_lower_buffered(self):
        mw = isolated_pair(policy_factory=TtlRatioPolicy,
                           buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        r.receive(
            make_message(msg_id="Old", source=1, destination=9,
                         created_at=-17000.0, ttl=18000.0), mw.nodes[1],
        )
        r.receive(
            make_message(msg_id="Mid", source=1, destination=9,
                         created_at=-5000.0, ttl=18000.0), mw.nodes[1],
        )
        fresh = make_message(msg_id="New", source=1, destination=9,
                             created_at=0.9)
        assert r.receive(fresh, mw.nodes[1]) == ReceiveOutcome.ACCEPTED
        assert set(mw.nodes[0].buffer.ids()) == {"Mid", "New"}

    def test_oversized_message_never_fits(self):
        mw = isolated_pair(buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        giant = make_message(msg_id="G", source=1, destination=9,
                             size=megabytes(2))
        out = mw.router(0).receive(giant, mw.nodes[1])
        assert out == ReceiveOutcome.REJECTED_OVERFLOW
        assert "G" not in mw.nodes[0].buffer

    def test_will_accept_precheck_rejects_oversized(self):
        mw = isolated_pair(buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        giant = make_message(msg_id="G", source=1, destination=9,
                             size=megabytes(2))
        assert not mw.router(0).will_accept(giant, mw.nodes[1])


class TestCreateMessage:
    def test_create_emits_created_and_buffers(self):
        mw = isolated_pair()
        mw.sim.run(until=1.0)
        assert mw.router(0).create_message(make_message(source=0, destination=1))
        assert mw.metrics.created == 1
        assert "M1" in mw.nodes[0].buffer

    def test_create_makes_room_even_for_priority_policies(self):
        mw = isolated_pair(policy_factory=TtlRatioPolicy,
                           buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        r = mw.router(0)
        for i in (1, 2):
            r.create_message(make_message(msg_id=f"A{i}", source=0,
                                          destination=1, created_at=0.5))
        # Locally generated messages always get room (a victim is evicted).
        assert r.create_message(
            make_message(msg_id="A3", source=0, destination=1, created_at=0.9)
        )
        assert "A3" in mw.nodes[0].buffer
        assert len(mw.nodes[0].buffer) == 2

    def test_create_counts_even_when_unstorable(self):
        mw = isolated_pair(buffer_bytes=megabytes(1.0))
        mw.sim.run(until=1.0)
        giant = make_message(msg_id="G", source=0, destination=1,
                             size=megabytes(3))
        assert not mw.router(0).create_message(giant)
        assert mw.metrics.created == 1
        assert mw.metrics.drops_by_reason.get("no_room") == 1


class TestPurge:
    def test_purge_skips_pinned(self):
        mw = isolated_pair()
        mw.sim.run(until=1.0)
        r = mw.router(0)
        msg = make_message(source=0, destination=1, ttl=5.0)
        r.create_message(msg)
        mw.nodes[0].buffer.pin("M1")
        mw.sim.run(until=20.0)
        assert "M1" in mw.nodes[0].buffer  # pinned survives the purge
        mw.nodes[0].buffer.unpin("M1")
        r.purge_expired()
        assert "M1" not in mw.nodes[0].buffer
