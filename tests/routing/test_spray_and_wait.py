"""Binary Spray-and-Wait protocol behaviour end-to-end."""

from __future__ import annotations

import numpy as np

from repro.mobility.trace import TraceMobility
from tests.helpers import (
    build_micro_world,
    make_message,
    total_copies_in_network,
)


def chain_world(**kw):
    """Nodes 0-1-2 in a line; only adjacent pairs in range (100 m radio)."""
    return build_micro_world(
        points=[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
        area=(1000.0, 1000.0),
        **kw,
    )


class TestSprayPhase:
    def test_copies_halve_along_contacts(self):
        mw = chain_world()
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=8, initial_copies=8,
                         size=1000)
        )
        mw.sim.run(until=60.0)
        # 0 sprayed 1 (8 -> 4/4); 1 delivered/forwarded onward to 2 (dest).
        assert mw.metrics.delivered == 1
        assert total_copies_in_network(mw, "M1") <= 8

    def test_wait_phase_direct_only(self):
        mw = build_micro_world(
            points=[(0.0, 0.0), (80.0, 0.0), (900.0, 900.0)],
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=1, initial_copies=8,
                         size=1000)
        )
        mw.sim.run(until=200.0)
        assert "M1" not in mw.nodes[1].buffer
        assert mw.metrics.relayed == 0

    def test_token_conservation_under_relay(self):
        mw = chain_world()
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=16, initial_copies=16)
        )
        before = total_copies_in_network(mw, "M1")
        mw.sim.run(until=17.0)  # first spray roughly done
        # No drops/deliveries yet in this window -> tokens conserved.
        if mw.metrics.delivered == 0 and not mw.metrics.drops_by_reason:
            assert total_copies_in_network(mw, "M1") == before


class TestSourceSprayVariant:
    def test_source_spray_hands_out_single_tokens(self):
        from repro.routing.spray_and_wait import SprayAndWaitRouter

        def factory(node, policy):
            return SprayAndWaitRouter(node, policy, source_spray=True)

        # Destination (node 2) is out of everyone's range, so the only
        # possible transfer is one source spray from 0 to 1.
        mw = build_micro_world(
            points=[(0.0, 0.0), (80.0, 0.0), (900.0, 900.0)],
            router_factory=factory,
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=4, initial_copies=4,
                         size=1000)
        )
        mw.sim.run(until=10.0)
        # One token left the source; the relay holder must not re-spray.
        assert mw.nodes[0].buffer.get("M1").copies == 3
        assert "M1" in mw.nodes[1].buffer
        assert mw.metrics.relayed == 1


class TestDeliveryThroughRelay:
    def test_two_hop_delivery(self):
        mw = chain_world()
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=8, initial_copies=8,
                         size=1000)
        )
        mw.sim.run(until=120.0)
        assert mw.metrics.delivered == 1
        assert mw.metrics.hop_counts[0] == 2

    def test_moving_destination_gets_message(self):
        # Destination drives through the source's range.
        times = [0.0, 50.0, 100.0, 200.0]
        frames = [
            [(0.0, 0.0), (500.0, 0.0)],
            [(0.0, 0.0), (250.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
            [(0.0, 0.0), (50.0, 0.0)],
        ]
        mobility = TraceMobility(np.asarray(times), np.asarray(frames))
        mw = build_micro_world(mobility=mobility, sim_time=200.0)
        mw.router(0).create_message(make_message(source=0, destination=1))
        mw.sim.run()
        assert mw.metrics.delivered == 1
