"""Epidemic, Direct-Delivery, First-Contact, Spray-and-Focus baselines."""

from __future__ import annotations

from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.first_contact import FirstContactRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from tests.helpers import build_micro_world, make_message

LINE = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)]


class TestEpidemic:
    def test_replicates_to_everyone(self):
        mw = build_micro_world(points=LINE, router_factory=EpidemicRouter)
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=1, initial_copies=1,
                         size=1000)
        )
        mw.sim.run(until=60.0)
        assert mw.metrics.delivered == 1
        # Source and middle node both still hold copies (no deletion).
        assert "M1" in mw.nodes[0].buffer
        assert "M1" in mw.nodes[1].buffer


class TestDirectDelivery:
    def test_no_relaying_ever(self):
        mw = build_micro_world(points=LINE, router_factory=DirectDeliveryRouter)
        mw.router(0).create_message(
            make_message(source=0, destination=2, size=1000)
        )
        mw.sim.run(until=300.0)
        # 2 is out of 0's range: never delivered, never relayed via 1.
        assert mw.metrics.delivered == 0
        assert mw.metrics.relayed == 0
        assert "M1" in mw.nodes[0].buffer

    def test_delivers_when_destination_adjacent(self):
        mw = build_micro_world(points=LINE, router_factory=DirectDeliveryRouter)
        mw.router(1).create_message(
            make_message(source=1, destination=2, size=1000)
        )
        mw.sim.run(until=60.0)
        assert mw.metrics.delivered == 1


class TestFirstContact:
    def test_copy_moves_not_replicates(self):
        mw = build_micro_world(points=LINE, router_factory=FirstContactRouter)
        mw.router(0).create_message(
            make_message(source=0, destination=2, size=1000)
        )
        mw.sim.run(until=120.0)
        assert mw.metrics.delivered == 1
        # Single copy semantics: nobody retains it after the delivery chain.
        assert all("M1" not in n.buffer for n in mw.nodes)


class TestSprayAndFocus:
    def test_focus_moves_last_copy_toward_fresh_info(self):
        def factory(node, policy):
            return SprayAndFocusRouter(node, policy, focus_threshold=10.0)

        # 1 has met the destination 2 (adjacent); 0 never has.  0 holds a
        # single copy -> focus should move it to 1, then 1 delivers.
        mw = build_micro_world(points=LINE, router_factory=factory)
        mw.sim.run(until=2.0)  # let links come up (1-2 contact recorded)
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=1, initial_copies=4,
                         size=1000)
        )
        mw.sim.run(until=120.0)
        assert mw.metrics.delivered == 1

    def test_no_focus_without_better_utility(self):
        def factory(node, policy):
            return SprayAndFocusRouter(node, policy, focus_threshold=10.0)

        # Only nodes 0 and 1 exist (dest 2 placed far away, never met).
        mw = build_micro_world(
            points=[(0.0, 0.0), (80.0, 0.0), (900.0, 900.0)],
            router_factory=factory,
        )
        mw.router(0).create_message(
            make_message(source=0, destination=2, copies=1, initial_copies=4,
                         size=1000)
        )
        mw.sim.run(until=60.0)
        # Neither side has ever met node 2: the copy must stay put.
        assert "M1" in mw.nodes[0].buffer
        assert "M1" not in mw.nodes[1].buffer
