"""Send scheduling: strict Algorithm-1 order vs deliverable-first."""

from __future__ import annotations

from repro.net.message import Message
from repro.net.outcomes import MODE_DELIVERY, MODE_SPLIT
from repro.policies.base import BufferPolicy
from tests.helpers import build_micro_world, make_message


class ScriptedPolicy(BufferPolicy):
    """Priorities assigned per message id by the test."""

    name = "scripted"
    compare_newcomer = True

    def __init__(self, scores: dict[str, float] | None = None) -> None:
        super().__init__()
        self.scores = scores if scores is not None else {}

    def send_priority(self, message: Message, now: float) -> float:
        return self.scores.get(message.msg_id, 0.0)

    def drop_priority(self, message: Message, now: float) -> float:
        return self.scores.get(message.msg_id, 0.0)


SCORES: dict[str, float] = {}


def scripted_factory():
    return ScriptedPolicy(SCORES)


def triangle_world(**kw):
    """Node 0 linked to both 1 and 2."""
    return build_micro_world(
        points=[(0.0, 0.0), (80.0, 0.0), (0.0, 80.0)],
        policy_factory=scripted_factory,
        **kw,
    )


def setup_two_messages(mw):
    """Buffer a deliverable (to node 1) and a sprayable (to node 9)."""
    deliverable = make_message(msg_id="deliv", source=0, destination=1,
                               copies=1, initial_copies=8, size=1000)
    relay = make_message(msg_id="relay", source=0, destination=9,
                         copies=8, initial_copies=8, size=1000)
    mw.nodes[0].buffer.add(deliverable)
    mw.nodes[0].buffer.add(relay)
    return deliverable, relay


class TestStrictOrder:
    def test_higher_priority_relay_beats_delivery(self):
        SCORES.clear()
        SCORES.update({"deliv": 1.0, "relay": 5.0})
        mw = triangle_world()
        mw.sim.run(until=1.5)
        setup_two_messages(mw)
        choice = mw.router(0).select_next()
        assert choice is not None
        _, message, mode = choice
        assert message.msg_id == "relay"
        assert mode == MODE_SPLIT

    def test_higher_priority_delivery_wins(self):
        SCORES.clear()
        SCORES.update({"deliv": 5.0, "relay": 1.0})
        mw = triangle_world()
        mw.sim.run(until=1.5)
        setup_two_messages(mw)
        peer, message, mode = mw.router(0).select_next()
        assert message.msg_id == "deliv"
        assert mode == MODE_DELIVERY
        assert peer.id == 1

    def test_delivery_wins_ties(self):
        SCORES.clear()
        SCORES.update({"deliv": 2.0, "relay": 2.0})
        mw = triangle_world()
        mw.sim.run(until=1.5)
        setup_two_messages(mw)
        _, message, mode = mw.router(0).select_next()
        assert mode == MODE_DELIVERY


class TestDeliverableFirst:
    def test_delivery_jumps_queue_regardless_of_priority(self):
        SCORES.clear()
        SCORES.update({"deliv": 0.1, "relay": 99.0})
        mw = triangle_world(deliverable_first=True)
        mw.sim.run(until=1.5)
        setup_two_messages(mw)
        _, message, mode = mw.router(0).select_next()
        assert message.msg_id == "deliv"
        assert mode == MODE_DELIVERY


class TestEligibilityFiltering:
    def test_expired_messages_never_selected(self):
        SCORES.clear()
        SCORES.update({"dead": 100.0})
        mw = triangle_world()
        mw.sim.run(until=1.5)
        dead = make_message(msg_id="dead", source=0, destination=9,
                            copies=8, ttl=1.0, size=1000)
        mw.nodes[0].buffer.add(dead)
        assert mw.router(0).select_next() is None

    def test_peer_holding_message_not_reinfected(self):
        SCORES.clear()
        SCORES.update({"m": 1.0})
        mw = triangle_world()
        mw.sim.run(until=1.5)
        msg = make_message(msg_id="m", source=0, destination=9, copies=8,
                           size=1000)
        mw.nodes[0].buffer.add(msg)
        # Both peers already have it.
        for peer in (1, 2):
            mw.nodes[peer].buffer.add(
                make_message(msg_id="m", source=0, destination=9, copies=2,
                             initial_copies=8, size=1000, hop_count=1)
            )
        assert mw.router(0).select_next() is None
