"""Cross-process snapshot portability (the shard recovery contract).

A shard worker's rolling snapshot is written in a spawn-context child and
restored by whichever process picks up the shard next — possibly the
coordinator itself.  That only works if a replica captured in one process
restores *byte-identically* in another: same position bytes, same RNG
stream state, and the same future trajectory.  This suite captures in a
real spawn child and restores in the parent, comparing against a replica
that never crossed a process boundary.
"""

from __future__ import annotations

from repro.experiments.runner import _make_mobility
from repro.parallel.pool import _pool_context
from repro.rng import RngFactory
from repro.shard.protocol import (
    capture_replica,
    positions_digest,
    restore_replica,
)
from repro.snapshot.capture import encode_config
from repro.snapshot.codec import canonical_json, make_snapshot, read_snapshot
from tests.obs.conftest import tiny_config

#: The exact barrier times a coordinator would record (drifting floats from
#: repeated ``now + tick``, not clean multiples).
BARRIER_TIMES = [1.0, 2.0, 3.0000000000000004, 4.000000000000001, 5.0]


def _advanced_replica(config):
    """A (mobility, stream) pair advanced through the barrier schedule."""
    mobility = _make_mobility(config)
    stream = RngFactory(config.seed).stream("mobility")
    mobility.initialize(stream)
    for now in BARRIER_TIMES:
        mobility.advance(now)
    return mobility, stream


def _capture_in_child(conn, config_overrides, snapshot_path):
    """Spawn target: advance a replica, snapshot it, report the digest."""
    from repro.snapshot.codec import write_snapshot

    config = tiny_config(**config_overrides)
    mobility, stream = _advanced_replica(config)
    snapshot = make_snapshot(
        encode_config(config),
        {"replica": capture_replica(mobility, stream)},
    )
    write_snapshot(snapshot, snapshot_path)
    conn.send(positions_digest(mobility.positions))
    conn.close()


class TestCrossProcessPortability:
    def test_child_snapshot_restores_byte_identically_in_parent(
        self, tmp_path
    ):
        snapshot_path = str(tmp_path / "shard-0.snap.gz")
        ctx = _pool_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_capture_in_child,
            args=(child_conn, {}, snapshot_path),
        )
        proc.start()
        child_conn.close()
        child_digest = parent_conn.recv()
        proc.join(timeout=60.0)
        assert proc.exitcode == 0

        config = tiny_config()
        # Restore the child's snapshot onto a fresh parent-built replica.
        snapshot = read_snapshot(snapshot_path)
        assert canonical_json(snapshot.config) == canonical_json(
            encode_config(config)
        )
        restored = _make_mobility(config)
        restored_stream = RngFactory(config.seed).stream("mobility")
        restored.initialize(restored_stream)
        restore_replica(restored, restored_stream, snapshot.state["replica"])

        # Byte-level state agreement with the child at capture time...
        assert positions_digest(restored.positions) == child_digest

        # ...and with a replica that never left this process.
        local, local_stream = _advanced_replica(config)
        assert positions_digest(local.positions) == child_digest
        assert (
            restored_stream.bit_generator.state
            == local_stream.bit_generator.state
        )

        # The future also matches: both replicas advance through the same
        # drifting barrier floats and stay in lockstep (waypoint redraws
        # consume the restored stream, not a fresh one).
        future = [t + BARRIER_TIMES[-1] for t in BARRIER_TIMES]
        for now in future:
            restored.advance(now)
            local.advance(now)
            assert positions_digest(restored.positions) == positions_digest(
                local.positions
            )

    def test_restoring_under_a_different_seed_diverges(self, tmp_path):
        """Anti-vacuity: the digest comparison can actually fail."""
        config_a = tiny_config(seed=1)
        config_b = tiny_config(seed=2)
        mob_a, _ = _advanced_replica(config_a)
        mob_b, _ = _advanced_replica(config_b)
        assert positions_digest(mob_a.positions) != positions_digest(
            mob_b.positions
        )
