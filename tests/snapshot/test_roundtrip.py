"""Snapshot round-trips: codec integrity, config fidelity, router state.

The contract under test (docs/checkpointing.md): ``save`` at time T followed
by ``restore`` + run-to-end is byte-identical to the uninterrupted run — for
every registered router — and re-capturing a freshly restored simulation
reproduces the exact snapshot payload (same canonical JSON, same checksum).
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.engine.events import PRIORITY_SNAPSHOT
from repro.errors import ConfigurationError, SnapshotError
from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ROUTER_KINDS, ScenarioConfig
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.snapshot import (
    decode_config,
    encode_config,
    fork,
    read_snapshot,
    restore,
    save,
    write_snapshot,
)
from repro.snapshot.capture import _capture_router_state
from repro.snapshot.codec import SCHEMA_VERSION, canonical_json
from tests.obs.conftest import tiny_config


def observed(**overrides) -> ScenarioConfig:
    return tiny_config(obs_interval=30.0, trace_capacity=500_000, **overrides)


def outputs(built) -> tuple[str, str]:
    assert built.trace is not None and built.timeseries is not None
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
    )


def run_with_snapshot(config: ScenarioConfig):
    """Run *config* to completion, capturing a snapshot at mid-horizon.

    Returns ``(snapshot, built)`` — capture is observation-only, so *built*
    doubles as the uninterrupted baseline.
    """
    built = build_scenario(config)
    box: list = []
    built.sim.schedule_at(
        config.sim_time / 2.0,
        lambda: box.append(save(built)),
        priority=PRIORITY_SNAPSHOT,
    )
    run_built(built)
    assert box, "mid-horizon snapshot hook never fired"
    return box[0], built


# -- codec ------------------------------------------------------------------


class TestCodec:
    def snap(self):
        built = build_scenario(observed())
        return save(built)

    def test_file_roundtrip_is_exact(self, tmp_path):
        snap = self.snap()
        path = write_snapshot(snap, tmp_path / "s.snap.gz")
        loaded = read_snapshot(path)
        # JSON turns config tuples into lists, which is exactly what the
        # checksum hashes; decode_config restores the typed view.
        assert loaded.checksum == snap.checksum
        assert canonical_json(loaded.state) == canonical_json(snap.state)
        assert decode_config(loaded.config) == decode_config(snap.config)
        assert not list(tmp_path.glob("*.tmp")), "staging file left behind"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="not found"):
            read_snapshot(tmp_path / "nope.snap.gz")

    def test_non_snapshot_document_raises(self, tmp_path):
        path = tmp_path / "s.snap.gz"
        path.write_bytes(gzip.compress(b'{"magic": "something-else"}'))
        with pytest.raises(SnapshotError, match="not a repro snapshot"):
            read_snapshot(path)

    def test_truncated_file_raises(self, tmp_path):
        path = write_snapshot(self.snap(), tmp_path / "s.snap.gz")
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(SnapshotError, match="unreadable"):
            read_snapshot(path)

    def _tamper(self, path, mutate):
        doc = json.loads(gzip.decompress(path.read_bytes()))
        mutate(doc)
        path.write_bytes(gzip.compress(json.dumps(doc).encode("utf-8")))

    def test_unsupported_schema_version_raises(self, tmp_path):
        path = write_snapshot(self.snap(), tmp_path / "s.snap.gz")
        self._tamper(path, lambda d: d.update(version=SCHEMA_VERSION + 1))
        with pytest.raises(SnapshotError, match="schema version"):
            read_snapshot(path)

    def test_corrupt_state_fails_the_checksum(self, tmp_path):
        path = write_snapshot(self.snap(), tmp_path / "s.snap.gz")
        self._tamper(path, lambda d: d["state"].update(t=d["state"]["t"] + 1))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            read_snapshot(path)


# -- config fidelity --------------------------------------------------------


class TestConfigRoundtrip:
    def test_decode_inverts_encode(self):
        config = observed(policy="mofo", router="prophet", seed=17)
        assert decode_config(encode_config(config)) == config

    def test_faulted_config_roundtrips(self):
        from repro.faults.plan import FaultPlan

        config = observed(faults=FaultPlan(
            churn_fraction=0.3, churn_off_time=200.0, churn_on_time=200.0
        ))
        assert decode_config(encode_config(config)) == config

    def test_unknown_field_raises(self):
        payload = encode_config(observed())
        payload["frobnicate"] = True
        with pytest.raises(SnapshotError, match="frobnicate"):
            decode_config(payload)


# -- per-router state -------------------------------------------------------


class TestRouterRoundtrip:
    @pytest.mark.parametrize("router", ROUTER_KINDS)
    def test_restored_run_is_byte_identical(self, router):
        snap, baseline = run_with_snapshot(observed(router=router))
        restored = restore(snap)
        # Re-capturing the freshly restored state reproduces the snapshot
        # payload exactly (canonical JSON, hence also the checksum).
        recaptured = save(restored)
        assert canonical_json(recaptured.state) == canonical_json(snap.state)
        assert recaptured.checksum == snap.checksum
        # ... and the continuation replays the identical bytes.
        run_built(restored)
        assert outputs(restored) == outputs(baseline)

    def test_prophet_predictability_tables_survive(self):
        snap, _ = run_with_snapshot(observed(router="prophet"))
        restored = restore(snap)
        captured = {n["id"]: n["router"] for n in snap.state["nodes"]}
        assert any(captured[n.id]["preds"] for n in restored.nodes), (
            "no node accumulated predictabilities; test is vacuous"
        )
        for node in restored.nodes:
            assert isinstance(node.router, ProphetRouter)
            assert canonical_json(_capture_router_state(node.router)) == (
                canonical_json(captured[node.id])
            )

    def test_spray_and_focus_utility_state_survives(self):
        snap, _ = run_with_snapshot(observed(router="snf"))
        restored = restore(snap)
        captured = {n["id"]: n["router"] for n in snap.state["nodes"]}
        assert any(captured[n.id]["last_seen"] for n in restored.nodes), (
            "no node recorded last-seen times; test is vacuous"
        )
        for node in restored.nodes:
            assert isinstance(node.router, SprayAndFocusRouter)
            assert canonical_json(_capture_router_state(node.router)) == (
                canonical_json(captured[node.id])
            )


# -- fork -------------------------------------------------------------------


class TestFork:
    def test_default_fork_is_an_exact_continuation(self):
        snap, baseline = run_with_snapshot(observed())
        forked = fork(snap)
        run_built(forked)
        assert outputs(forked) == outputs(baseline)

    def test_reseeded_fork_diverges(self):
        snap, baseline = run_with_snapshot(observed())
        forked = fork(snap, seed=12345)
        run_built(forked)
        assert outputs(forked) != outputs(baseline)

    def test_horizon_extension_runs_past_the_original_end(self):
        snap, baseline = run_with_snapshot(observed())
        extended = float(baseline.config.sim_time) * 2.0
        forked = fork(snap, overrides={"sim_time": extended})
        run_built(forked)
        assert forked.config.sim_time == extended
        assert forked.sim.now > baseline.config.sim_time / 2.0

    def test_non_whitelisted_override_is_refused(self):
        snap, _ = run_with_snapshot(observed())
        with pytest.raises(ConfigurationError, match="n_nodes"):
            fork(snap, overrides={"n_nodes": 3})


# -- scripted faults --------------------------------------------------------


class TestScriptedFaultRoundtrip:
    """Scripted fault schedules must survive save/restore bit-exactly.

    The plan mixes events on both sides of the mid-horizon capture: restore
    must re-arm only the not-yet-fired node/flap events and keep the
    transfer-fault consumed cursor, or the continuation diverges.
    """

    def plan(self):
        from repro.faults.plan import FaultEvent, FaultPlan

        return FaultPlan(events=(
            FaultEvent(time=50.0, kind="transfer_fault"),
            FaultEvent(time=100.0, kind="node_down", node=2),
            FaultEvent(time=200.0, kind="node_up", node=2),
            FaultEvent(time=300.0, kind="link_flap", node=1),
            FaultEvent(time=500.0, kind="transfer_fault"),
            FaultEvent(time=600.0, kind="node_down", node=4),
            FaultEvent(time=700.0, kind="node_up", node=4),
            FaultEvent(time=800.0, kind="link_flap", node=0),
        ))

    def test_restored_run_is_byte_identical(self):
        snap, baseline = run_with_snapshot(observed(faults=self.plan()))
        restored = restore(snap)
        recaptured = save(restored)
        assert canonical_json(recaptured.state) == canonical_json(snap.state)
        run_built(restored)
        assert outputs(restored) == outputs(baseline)
        # The post-snapshot half of the schedule really fired.
        assert baseline.fault_injector is not None
        assert baseline.fault_injector.counts.get("node_down", 0) >= 2

    def test_consumed_transfer_cursor_is_restored(self):
        snap, baseline = run_with_snapshot(observed(faults=self.plan()))
        captured = snap.state["faults"]
        assert captured["scripted_transfer_consumed"] >= 1
        restored = restore(snap)
        assert restored.fault_injector is not None
        assert (
            restored.fault_injector._scripted_transfer_consumed
            == captured["scripted_transfer_consumed"]
        )

    def test_old_snapshot_without_cursor_still_restores(self):
        snap, _ = run_with_snapshot(observed(faults=self.plan()))
        # Simulate a snapshot written before the cursor field existed.
        del snap.state["faults"]["scripted_transfer_consumed"]
        restored = restore(snap)
        assert restored.fault_injector._scripted_transfer_consumed == 0
