"""Legacy setup shim.

The environment this repo targets may lack the ``wheel`` package, which
modern PEP 660 editable installs require; with this shim
``pip install -e . --no-use-pep517 --no-build-isolation`` works fully
offline.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup(
    # Older setuptools (without full PEP 621 script support) needs the
    # console script declared here too; pyproject.toml remains the source
    # of truth for everything else.
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ],
    },
)
