# Convenience targets for the SDSRP reproduction.

PYTHON ?= python

.PHONY: install test lint lint-deep sanitize-smoke obs-smoke chaos-smoke analytic-smoke service-smoke shard-smoke determinism snapshot-roundtrip bench figures-full fig3 fig4 examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static layer: repo-specific AST lint (REP001..REP010, see
# docs/static_analysis.md) plus mypy on the core packages when available
# (mypy is a CI dependency, not a runtime one).
lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src tests benchmarks
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro/core src/repro/net src/repro/policies; \
		MYPYPATH=src:tools $(PYTHON) -m mypy --strict --follow-imports=silent \
			src/repro/rng.py src/repro/units.py src/repro/analytic tools/reprolint; \
	else \
		echo "mypy not installed; skipping type check (CI runs it)"; \
	fi

# Whole-program determinism analysis (REP101..REP104: RNG provenance,
# iteration-order taint, snapshot coverage, observer purity).  Fails on
# any new finding or stale disable comment; the committed baseline is
# empty by construction.
lint-deep:
	PYTHONPATH=tools $(PYTHON) -m reprolint.deep --stats --fail-on-unused-suppressions

# Dynamic layer: reduced paper scenarios with every runtime invariant
# checked each tick (buffer accounting, pins, TTL, spray-token budget,
# single commit). Serial on purpose: a violation must point at one run.
sanitize-smoke:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro.experiments run --scenario rwp --policy sdsrp --reduced
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro.experiments fig8 --axis copies --policies sdsrp --workers 1

# Observability layer (docs/observability.md): one reduced run with the
# metric time series, event trace and profiler all attached.
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments run --scenario rwp --policy sdsrp --reduced \
		--obs-out obs-metrics.json --trace obs-trace.jsonl --profile

# Chaos layer (docs/chaos.md): a short seeded fuzzing campaign over random
# fault schedules with the sanitizer armed and all oracle families checked.
# Fixed seed so the smoke leg is deterministic; the nightly CI job explores
# fresh seeds.  Exits non-zero (and shrinks a reproducer) on any finding.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.chaos --iterations 25 --seed 1 --budget-seconds 60

# Analytic layer (docs/analytic.md): fixed-seed analytic + hybrid runs
# through the real CLI, the analytic-vs-simulator cross-validation suite,
# and a reduced fig-validate sweep (simulated curves + analytic overlay).
analytic-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments run --scenario rwp --policy fifo --reduced --engine analytic --seed 1
	PYTHONPATH=src $(PYTHON) -m repro.experiments run --scenario rwp --policy fifo --reduced --engine hybrid --seed 1
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/analytic
	PYTHONPATH=src $(PYTHON) -m repro.experiments fig-validate --axis copies --policies fifo sdsrp --workers 1 --json fig-validate.json

# Service layer (docs/service.md): the kill-recovery proof — serve a batch
# through the real CLI, SIGKILL it mid-run, re-serve against the same root,
# and assert every job terminal with duplicates served from the cache.
service-smoke:
	PYTHONPATH=src $(PYTHON) tools/service_smoke.py

# Sharded engine (docs/sharding.md): the byte-identity and kill-recovery
# proof — run one fixed-seed scenario single-process, 2-sharded, and
# 2-sharded with a worker SIGKILLed mid-run; all three must produce the
# same trace, time series and summary bytes.
shard-smoke:
	PYTHONPATH=src $(PYTHON) tools/shard_smoke.py

# Byte-identical replay suite (run twice, like CI, to catch cross-run
# state leaks in the collectors themselves).
determinism:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/obs/test_determinism.py
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/obs/test_determinism.py

# Checkpointing layer (docs/checkpointing.md): snapshot/restore round-trips
# byte-compared against uninterrupted runs, for every router, plus crash
# recovery through the sweep engine.
snapshot-roundtrip:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/snapshot tests/obs/test_snapshot_determinism.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The paper's exact grids (Tables II/III). Hours of CPU; tune --workers.
# Each sweep checkpoints to *.ckpt.jsonl, so a killed run resumes from its
# completed grid points when you re-run the target.
figures-full:
	$(PYTHON) -m repro.experiments fig8 --axis copies --full --workers 4 --resume fig8_copies.ckpt.jsonl --json fig8_copies.json
	$(PYTHON) -m repro.experiments fig8 --axis buffer --full --workers 4 --resume fig8_buffer.ckpt.jsonl --json fig8_buffer.json
	$(PYTHON) -m repro.experiments fig8 --axis rate   --full --workers 4 --resume fig8_rate.ckpt.jsonl --json fig8_rate.json
	$(PYTHON) -m repro.experiments fig9 --axis copies --full --workers 4 --resume fig9_copies.ckpt.jsonl --json fig9_copies.json
	$(PYTHON) -m repro.experiments fig9 --axis buffer --full --workers 4 --resume fig9_buffer.ckpt.jsonl --json fig9_buffer.json
	$(PYTHON) -m repro.experiments fig9 --axis rate   --full --workers 4 --resume fig9_rate.ckpt.jsonl --json fig9_rate.json

fig3:
	$(PYTHON) -m repro.experiments fig3 --scenario rwp
	$(PYTHON) -m repro.experiments fig3 --scenario epfl

fig4:
	$(PYTHON) -m repro.experiments fig4

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/priority_walkthrough.py
	$(PYTHON) examples/intermeeting_analysis.py
	$(PYTHON) examples/buffer_policy_comparison.py
	$(PYTHON) examples/taxi_trace_scenario.py
	$(PYTHON) examples/custom_policy.py
	$(PYTHON) examples/contact_trace_replay.py
	$(PYTHON) examples/message_fate_analysis.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	rm -f *.ckpt.jsonl obs-metrics.json obs-trace.jsonl fig-validate.json
	find . -name __pycache__ -type d -exec rm -rf {} +
