"""CI gate: the service kill-recovery proof (docs/service.md).

Generates a small mixed batch (fresh + duplicate fingerprints), serves it
through the real ``repro-service`` CLI in a subprocess, SIGKILLs that
process mid-batch (after at least one result is cached, while another job
is journaled as running), then re-runs the identical command against the
same root and asserts:

* the re-serve exits 0 with every accepted job in a terminal state;
* no fingerprint was computed twice — duplicates (including the whole
  resubmitted batch) were served from the fingerprint cache;
* the journal replay is clean (no skipped lines beyond the torn tail the
  kill itself may have left).

On failure the service root (journal, cache, report) is left in
``--artifact-dir`` for CI to upload.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--artifact-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path


def cli(*argv: str, check: bool = True) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", *argv],
        env=dict(os.environ), capture_output=True, text=True, timeout=600,
    )
    if check and proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"repro-service {argv[0]} exited {proc.returncode}"
        )
    return proc


def wait_for_mid_batch(journal: Path, budget: float = 120.0) -> bool:
    """True once one job is done and another is journaled running."""
    deadline = time.perf_counter() + budget
    while time.perf_counter() < deadline:
        events: list[str] = []
        if journal.exists():
            for line in journal.read_text(encoding="utf-8").splitlines():
                try:
                    events.append(json.loads(line).get("event"))
                except ValueError:
                    continue
        if "done" in events and events[-1] == "running":
            return True
        time.sleep(0.05)
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact-dir", type=str, default="service-smoke",
                        metavar="DIR",
                        help="working/artifact directory (default "
                             "service-smoke; kept on failure)")
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--duplicates", type=int, default=2)
    parser.add_argument("--sim-time", type=float, default=60.0)
    args = parser.parse_args(argv)

    workdir = Path(args.artifact_dir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    batch = workdir / "batch.json"
    root = workdir / "root"

    cli(
        "make-batch", "--out", str(batch), "--jobs", str(args.jobs),
        "--duplicates", str(args.duplicates),
        "--sim-time", str(args.sim_time), "--nodes", "5",
    )
    serve = (
        "serve", "--root", str(root), "--batch", str(batch),
        "--workers", "1", "--max-attempts", "2", "--backoff-base", "0.0",
    )

    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.service", *serve],
        env=dict(os.environ),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        if not wait_for_mid_batch(root / "journal.jsonl"):
            raise SystemExit("batch never reached the mid-run kill window")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
    print(f"killed serve pid {victim.pid} mid-batch (SIGKILL)")

    revived = cli(*serve)
    print(revived.stdout.strip().splitlines()[-1])

    report = json.loads(cli("report", "--root", str(root)).stdout)
    failures: list[str] = []
    counts = report["counts"]
    if counts["queued"] or counts["running"]:
        failures.append(f"non-terminal jobs remain: {counts}")
    if counts["failed"]:
        failures.append(f"{counts['failed']} job(s) failed: {counts}")
    computed = [
        j["fingerprint"] for j in report["jobs"]
        if j["state"] == "done" and not j["cache_hit"]
    ]
    if len(computed) != len(set(computed)):
        failures.append("a fingerprint was computed more than once")
    if len(set(computed)) > args.jobs:
        failures.append(
            f"{len(set(computed))} fingerprints computed; batch only has "
            f"{args.jobs} distinct configs"
        )
    if not any(
        j["cache_hit"] for j in report["jobs"] if j["state"] == "done"
    ):
        failures.append("no duplicate was served from the cache")
    if report["skipped_journal_lines"] > 1:
        failures.append(
            f"{report['skipped_journal_lines']} skipped journal lines; "
            "only the kill's torn tail is expected"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"artifacts kept in {workdir}/", file=sys.stderr)
        return 1
    print(
        f"service smoke OK: done={counts['done']} "
        f"computed={len(set(computed))} cache_entries="
        f"{len(report['cache_entries'])}"
    )
    shutil.rmtree(workdir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
