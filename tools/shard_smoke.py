"""CI gate: the sharded-engine byte-identity and kill-recovery proof
(docs/sharding.md).

Runs one fixed-seed scenario three ways and byte-compares the event trace,
the time series and the stable summary across all legs:

1. single-process (the reference bytes);
2. 2-shard run with supervised workers (must match the reference exactly);
3. 2-shard run with an OS-level SIGKILL of shard 0 mid-run — the
   supervisor must detect the death, respawn and recover the worker, and
   the run must still reproduce the reference bytes (the smoke also
   asserts a recovery actually happened, so the leg can't pass vacuously).

On failure each leg's bytes are left in ``--artifact-dir`` for CI upload.

Usage::

    PYTHONPATH=src python tools/shard_smoke.py [--artifact-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import sys
import threading
import time
from pathlib import Path

from repro.chaos.runner import stable_summary
from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ScenarioConfig


def smoke_config(shard_count: int) -> ScenarioConfig:
    return ScenarioConfig(
        name="shard-smoke",
        n_nodes=10,
        sim_time=400.0,
        mobility="rwp",
        area=(1000.0, 1000.0),
        speed_range=(1.0, 3.0),
        radio_range=100.0,
        buffer_bytes=8000,
        message_size=1000,
        interval_range=(20.0, 40.0),
        ttl=600.0,
        initial_copies=8,
        router="snw",
        policy="sdsrp",
        obs_interval=60.0,
        trace_capacity=500_000,
        shard_count=shard_count,
        seed=13,
        sanitize=True,
    )


def sigkill_shard_zero(coord) -> None:
    """Wait for shard 0's worker, let the run get going, then SIGKILL it."""
    for _ in range(1000):
        handle = coord.supervisor.handles.get(0)
        if handle is not None and getattr(handle.process, "pid", None):
            time.sleep(0.3)  # land mid-run, past the init handshake
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            return
        time.sleep(0.01)


def run_leg(config: ScenarioConfig, *, kill: bool = False):
    """Run one leg; returns ({trace, timeseries, summary}, stats|None)."""
    built = build_scenario(config)
    coord = getattr(built.world, "coordinator", None)
    thread = None
    if kill:
        thread = threading.Thread(
            target=sigkill_shard_zero, args=(coord,), daemon=True
        )
        thread.start()
    summary = run_built(built)
    if thread is not None:
        thread.join(timeout=30.0)
    outputs = {
        "trace.jsonl": built.trace.to_jsonl(),
        "timeseries.json": json.dumps(
            built.timeseries.as_dict(), sort_keys=True
        ),
        "summary.json": json.dumps(stable_summary(summary), sort_keys=True),
    }
    return outputs, (coord.stats if coord is not None else None)


def dump_leg(workdir: Path, leg: str, outputs: dict[str, str]) -> None:
    directory = workdir / leg
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in outputs.items():
        (directory / name).write_text(payload, encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact-dir", type=str, default="shard-smoke",
                        metavar="DIR",
                        help="artifact directory for mismatching bytes "
                             "(default shard-smoke; kept on failure)")
    args = parser.parse_args(argv)
    workdir = Path(args.artifact_dir)
    if workdir.exists():
        shutil.rmtree(workdir)

    legs: dict[str, dict[str, str]] = {}
    legs["single-process"], _ = run_leg(smoke_config(1))
    print("single-process reference run done")
    legs["two-shards"], stats = run_leg(smoke_config(2))
    print(f"2-shard run done: {stats['spawns']} spawns, "
          f"{stats['digest_checks']} digest checks")
    legs["two-shards-sigkill"], kill_stats = run_leg(
        smoke_config(2), kill=True
    )
    print(f"2-shard SIGKILL run done: {kill_stats['respawns']} respawn(s), "
          f"{kill_stats['snapshot_recoveries']} snapshot / "
          f"{kill_stats['push_recoveries']} push recoveries")

    failures: list[str] = []
    reference = legs["single-process"]
    for leg in ("two-shards", "two-shards-sigkill"):
        for name, payload in legs[leg].items():
            if payload != reference[name]:
                failures.append(f"{leg}/{name} differs from single-process")
    if stats["spawns"] != 2:
        failures.append(f"2-shard leg spawned {stats['spawns']} workers")
    if kill_stats["respawns"] < 1:
        failures.append("SIGKILL leg never respawned a worker (vacuous pass)")
    recoveries = (
        kill_stats["snapshot_recoveries"] + kill_stats["push_recoveries"]
    )
    if recoveries < 1 and kill_stats["folds"] == 0:
        failures.append("SIGKILL leg neither recovered nor degraded")

    if failures:
        for leg, outputs in legs.items():
            dump_leg(workdir, leg, outputs)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"artifacts kept in {workdir}/", file=sys.stderr)
        return 1
    print("shard smoke OK: 2-shard and SIGKILL-recovery runs are "
          "byte-identical to the single-process reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
