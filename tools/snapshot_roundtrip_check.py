"""CI gate: snapshot round-trip determinism (docs/checkpointing.md).

Runs a reduced RWP scenario straight through with full observation,
capturing a snapshot 500 ticks (500 simulated seconds) in; restores the
snapshot and runs the continuation; then byte-compares the event trace and
metric time series of the two runs.  On a mismatch, writes all four dumps
to ``--artifact-dir`` (CI uploads them) and exits non-zero.

Usage::

    PYTHONPATH=src python tools/snapshot_roundtrip_check.py \
        [--snapshot-at 500] [--artifact-dir obs-artifacts]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.engine.events import PRIORITY_SNAPSHOT
from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.faults.plan import FaultPlan
from repro.snapshot import restore, save


def observed_outputs(built) -> tuple[str, str]:
    return (
        built.trace.to_jsonl(),
        json.dumps(built.timeseries.as_dict(), sort_keys=True),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--snapshot-at", type=float, default=500.0,
                        metavar="TICKS", help="capture time (default 500)")
    parser.add_argument("--artifact-dir", type=str, default="obs-artifacts",
                        help="where mismatching dumps are written")
    args = parser.parse_args(argv)

    duty = 1200.0
    config = scale_scenario(
        random_waypoint_scenario(policy="sdsrp", seed=11),
        node_factor=0.2, time_factor=0.2,
    ).replace(
        obs_interval=30.0, trace_capacity=500_000, sanitize=True,
        faults=FaultPlan(
            churn_fraction=0.2, churn_off_time=duty, churn_on_time=duty
        ),
    )
    if not args.snapshot_at < config.sim_time:
        raise SystemExit(
            f"--snapshot-at {args.snapshot_at} is past the "
            f"{config.sim_time:.0f}s horizon"
        )

    built = build_scenario(config)
    captured: list = []
    built.sim.schedule_at(
        args.snapshot_at,
        lambda: captured.append(save(built)),
        priority=PRIORITY_SNAPSHOT,
    )
    run_built(built)
    straight = observed_outputs(built)

    resumed = restore(captured[0])
    run_built(resumed)
    roundtrip = observed_outputs(resumed)

    if roundtrip != straight:
        out = Path(args.artifact_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, (trace, series) in (
            ("straight", straight), ("roundtrip", roundtrip)
        ):
            (out / f"snapshot-{name}.trace.jsonl").write_text(
                trace, encoding="utf-8"
            )
            (out / f"snapshot-{name}.timeseries.json").write_text(
                series, encoding="utf-8"
            )
        print(
            f"snapshot round-trip diverged from the straight run "
            f"(snapshot at t={args.snapshot_at:.0f}); dumps in {out}/",
            file=sys.stderr,
        )
        return 1

    print(
        f"snapshot round-trip OK: restore at t={args.snapshot_at:.0f} of "
        f"{config.sim_time:.0f}s replayed {built.sim.events_processed} "
        f"events byte-identically "
        f"({len(straight[0].splitlines())} trace records)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
