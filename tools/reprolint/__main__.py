"""``python -m reprolint src tests benchmarks`` entry point."""

from __future__ import annotations

import sys

from reprolint.runner import main

if __name__ == "__main__":
    sys.exit(main())
