"""File collection and rule driving for reprolint.

Separated from :mod:`reprolint.rules` so tests can lint in-memory sources
(:func:`lint_source`) and fixture trees (:func:`lint_paths`) without going
through the CLI.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path, PurePosixPath

import ast

from reprolint.rules import (
    ALL_RULES,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
)

#: Directory name holding reprolint's own test fixtures (deliberate
#: violations); always skipped so the repo-wide run stays clean.
FIXTURE_DIR = "lint_fixtures"


def _normalize(path: Path, root: Path) -> str:
    """Repo-root-relative POSIX path (falls back to the path as given)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return str(PurePosixPath(rel))


def collect_files(paths: Sequence[str | Path], root: Path | None = None) -> list[tuple[str, Path]]:
    """Expand files/directories into ``(normalized_name, real_path)`` pairs."""
    root = root or Path.cwd()
    out: list[tuple[str, Path]] = []
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for file in candidates:
            if FIXTURE_DIR in file.parts:
                continue
            out.append((_normalize(file, root), file))
    return out


def _select_rules(codes: Iterable[str] | None) -> list[Rule]:
    instances = [cls() for cls in ALL_RULES]
    if codes is None:
        return instances
    wanted = {c.upper() for c in codes}
    return [r for r in instances if r.code in wanted]


def lint_source(
    source: str, path: str, codes: Iterable[str] | None = None
) -> list[Violation]:
    """Lint one in-memory source as if it lived at *path* (for tests).

    Project-wide rules (REP005) see only this file, so registry checks run
    against whatever registrations the snippet itself contains.
    """
    rules = _select_rules(codes)
    ctx = FileContext(path=path, tree=ast.parse(source, filename=path))
    violations: list[Violation] = []
    for rule in rules:
        violations.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.finalize())
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


def lint_paths(
    paths: Sequence[str | Path],
    root: Path | None = None,
    codes: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint files/directories; returns all violations, sorted."""
    rules = _select_rules(codes)
    violations: list[Violation] = []
    for name, file in collect_files(paths, root):
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"), filename=name)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    code="REP000",
                    path=name,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(path=name, tree=tree)
        for rule in rules:
            violations.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.finalize())
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Repo-specific static analysis for the SDSRP reproduction "
        "(determinism, buffer invariants, policy registry).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="only run these rule codes (e.g. REP001 REP004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.code}  {cls.title}")
        return 0

    violations = lint_paths(args.paths, codes=args.select)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0
