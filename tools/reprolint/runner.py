"""File collection, result caching and rule driving for reprolint.

Separated from :mod:`reprolint.rules` so tests can lint in-memory sources
(:func:`lint_source`) and fixture trees (:func:`lint_paths`) without going
through the CLI.

Performance model (see ``docs/static_analysis.md``):

* each file is **read and parsed once**; rules share a node-type index on
  the :class:`~reprolint.rules.FileContext` instead of re-walking the tree;
* an on-disk result cache (``.reprolint_cache/``, enabled by the CLI) keyed
  by mtime + sha256 + a tool fingerprint skips unchanged files entirely —
  per-file violations and the project-rule facts are both replayed;
* cache misses can be linted in parallel with
  :func:`repro.parallel.pool.parallel_map` when the ``repro`` package is
  importable (``--workers``); the runner degrades to serial otherwise.

Robustness: a file that cannot be decoded (non-UTF-8 bytes) or parsed
(syntax error, null bytes) is reported as a structured ``REP000`` finding
and the run continues — one broken file must not hide every other finding.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path, PurePosixPath
from typing import Any

from reprolint.rules import (
    ALL_RULES,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
)

#: Directory name holding reprolint's own test fixtures (deliberate
#: violations); always skipped so the repo-wide run stays clean.
FIXTURE_DIR = "lint_fixtures"

#: The deep analyzer's fixture mini-packages live under
#: ``tests/reprolint/fixtures/``; like ``lint_fixtures`` they contain
#: deliberate violations and are skipped by path-part pair.
DEEP_FIXTURE_PARTS = ("reprolint", "fixtures")

#: Default cache directory name (created under the lint root by the CLI).
CACHE_DIR_NAME = ".reprolint_cache"

_CACHE_SCHEMA = 1

#: Below this many cache misses a spawn-based pool costs more than it saves
#: (each worker re-imports numpy); ``--workers`` forces either way.
PARALLEL_THRESHOLD = 200


def _normalize(path: Path, root: Path) -> str:
    """Repo-root-relative POSIX path (falls back to the path as given)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return str(PurePosixPath(rel))


def _is_fixture(parts: Sequence[str]) -> bool:
    if FIXTURE_DIR in parts:
        return True
    for first, second in zip(parts, parts[1:]):
        if (first, second) == DEEP_FIXTURE_PARTS:
            return True
    return False


def collect_files(paths: Sequence[str | Path], root: Path | None = None) -> list[tuple[str, Path]]:
    """Expand files/directories into ``(normalized_name, real_path)`` pairs."""
    root = root or Path.cwd()
    out: list[tuple[str, Path]] = []
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for file in candidates:
            if _is_fixture(file.parts):
                continue
            out.append((_normalize(file, root), file))
    return out


def _select_rules(codes: Iterable[str] | None) -> list[Rule]:
    instances = [cls() for cls in ALL_RULES]
    if codes is None:
        return instances
    wanted = {c.upper() for c in codes}
    return [r for r in instances if r.code in wanted]


# -- single-file lint core ---------------------------------------------------


def _broken_file(name: str, line: int, col: int, message: str) -> Violation:
    return Violation(code="REP000", path=name, line=line, col=col, message=message)


def parse_blob(name: str, data: bytes) -> tuple[ast.Module | None, Violation | None]:
    """Decode + parse *data*; broken input becomes a ``REP000`` violation."""
    try:
        source = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        return None, _broken_file(
            name, 0, 0,
            f"file is not valid UTF-8 (byte offset {exc.start}): {exc.reason}",
        )
    try:
        return ast.parse(source, filename=name), None
    except SyntaxError as exc:
        return None, _broken_file(
            name, exc.lineno or 0, exc.offset or 0, f"syntax error: {exc.msg}"
        )
    except ValueError as exc:  # e.g. null bytes in source
        return None, _broken_file(name, 0, 0, f"unparseable source: {exc}")


def _lint_blob(
    name: str, data: bytes, rules: Sequence[Rule]
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Lint one in-memory file; returns JSON-safe (violations, facts)."""
    tree, broken = parse_blob(name, data)
    if tree is None:
        return [broken.to_dict()] if broken is not None else [], {}
    ctx = FileContext(path=name, tree=tree)
    violations: list[dict[str, Any]] = []
    facts: dict[str, Any] = {}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            facts[rule.code] = rule.collect_facts(ctx)
        else:
            violations.extend(v.to_dict() for v in rule.check(ctx))
    return violations, facts


def _lint_file_task(item: tuple[str, str]) -> dict[str, Any]:
    """Worker entry for ``parallel_map``: lint one file from disk.

    Takes/returns only JSON-safe values so the spawn pool can pickle them;
    rules are re-instantiated per call (they are cheap, stateless objects).
    """
    name, raw_path = item
    rules = _select_rules(None)
    try:
        data = Path(raw_path).read_bytes()
    except OSError as exc:
        return {
            "name": name,
            "violations": [_broken_file(name, 0, 0, f"unreadable file: {exc}").to_dict()],
            "facts": {},
            "sha256": None,
        }
    violations, facts = _lint_blob(name, data, rules)
    return {
        "name": name,
        "violations": violations,
        "facts": facts,
        "sha256": hashlib.sha256(data).hexdigest(),
    }


# -- result cache ------------------------------------------------------------


def tool_fingerprint() -> str:
    """Hash of reprolint's own sources: any rule change invalidates the cache."""
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for file in sorted(root.rglob("*.py")):
        digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


class ResultCache:
    """mtime+sha256-keyed per-file lint results under ``.reprolint_cache/``.

    A file hits the cache when its ``(mtime_ns, size)`` pair matches the
    stored entry (fast path, no read) or — after an mtime-only touch — when
    its content sha256 still matches.  Entries store both the per-file
    violations and the project-rule facts so a fully-cached run never
    parses anything.  The whole cache is dropped when reprolint's own
    sources change (:func:`tool_fingerprint`).
    """

    def __init__(self, directory: Path, fingerprint: str | None = None) -> None:
        self.directory = directory
        self.path = directory / f"cache-v{_CACHE_SCHEMA}.json"
        self.fingerprint = fingerprint or tool_fingerprint()
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: dict[str, dict[str, Any]] = {}
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            if (
                isinstance(raw, dict)
                and raw.get("schema") == _CACHE_SCHEMA
                and raw.get("tool") == self.fingerprint
                and isinstance(raw.get("files"), dict)
            ):
                self._entries = raw["files"]
        except (OSError, ValueError):
            self._entries = {}

    def lookup(self, name: str, path: Path) -> dict[str, Any] | None:
        """Cached entry for *name* if the on-disk file is unchanged."""
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return None
        try:
            st = path.stat()
        except OSError:
            self.misses += 1
            return None
        if st.st_mtime_ns == entry.get("mtime_ns") and st.st_size == entry.get("size"):
            self.hits += 1
            return entry
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            self.misses += 1
            return None
        if digest == entry.get("sha256"):
            entry["mtime_ns"] = st.st_mtime_ns
            entry["size"] = st.st_size
            self._dirty = True
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        name: str,
        path: Path,
        violations: list[dict[str, Any]],
        facts: dict[str, Any],
        sha256: str | None = None,
    ) -> None:
        try:
            st = path.stat()
            if sha256 is None:
                sha256 = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return
        self._entries[name] = {
            "mtime_ns": st.st_mtime_ns,
            "size": st.st_size,
            "sha256": sha256,
            "violations": violations,
            "facts": facts,
        }
        self._dirty = True

    def save(self) -> None:
        """Best-effort atomic write; a read-only checkout must not fail lint."""
        if not self._dirty:
            return
        payload = {
            "schema": _CACHE_SCHEMA,
            "tool": self.fingerprint,
            "files": self._entries,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            return


# -- parallel support --------------------------------------------------------


def _resolve_parallel_map() -> Callable[..., list[Any]] | None:
    """Import ``repro.parallel.pool.parallel_map`` if available.

    The linter lives in ``tools/`` and must not hard-depend on the linted
    package; when ``repro`` is not importable (e.g. ``PYTHONPATH=tools``
    only) we try the sibling ``src/`` checkout, then fall back to serial.
    """
    try:
        from repro.parallel.pool import parallel_map
        return parallel_map
    except ImportError:
        pass
    src = Path(__file__).resolve().parents[2] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.append(str(src))
        try:
            from repro.parallel.pool import parallel_map
            return parallel_map
        except ImportError:
            return None
    return None


# -- public entry points -----------------------------------------------------


def lint_source(
    source: str, path: str, codes: Iterable[str] | None = None
) -> list[Violation]:
    """Lint one in-memory source as if it lived at *path* (for tests).

    Project-wide rules (REP005) see only this file, so registry checks run
    against whatever registrations the snippet itself contains.
    """
    rules = _select_rules(codes)
    ctx = FileContext(path=path, tree=ast.parse(source, filename=path))
    violations: list[Violation] = []
    for rule in rules:
        violations.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.finalize())
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


class LintStats:
    """Counters for one :func:`lint_paths` run (``--stats`` output)."""

    def __init__(self) -> None:
        self.files = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.broken_files = 0
        self.parallel_workers = 0
        self.wall_seconds = 0.0

    def format(self) -> str:
        return (
            f"reprolint: {self.files} file(s), "
            f"{self.cache_hits} cached, {self.cache_misses} linted"
            + (
                " (parallel)"
                if self.parallel_workers < 0
                else f" ({self.parallel_workers} workers)"
                if self.parallel_workers
                else ""
            )
            + (f", {self.broken_files} unparseable" if self.broken_files else "")
            + f", {self.wall_seconds:.2f}s"
        )


def lint_paths(
    paths: Sequence[str | Path],
    root: Path | None = None,
    codes: Iterable[str] | None = None,
    *,
    cache_dir: Path | None = None,
    workers: int | None = None,
    stats: LintStats | None = None,
) -> list[Violation]:
    """Lint files/directories; returns all violations, sorted.

    *cache_dir* enables the on-disk result cache (ignored when *codes*
    narrows the rule set — partial results must never poison the cache).
    *workers* > 1 lints cache misses through ``parallel_map`` when the
    ``repro`` package is importable; ``None`` decides automatically.
    """
    started = time.perf_counter()
    stats = stats if stats is not None else LintStats()
    rules = _select_rules(codes)
    files = collect_files(paths, root)
    stats.files = len(files)

    cache: ResultCache | None = None
    if cache_dir is not None and codes is None:
        cache = ResultCache(cache_dir)

    # Phase 1: replay cache hits, collect misses.
    per_file: dict[str, tuple[list[dict[str, Any]], dict[str, Any]]] = {}
    misses: list[tuple[str, Path]] = []
    for name, file in files:
        entry = cache.lookup(name, file) if cache is not None else None
        if entry is not None:
            per_file[name] = (entry["violations"], entry["facts"])
        else:
            misses.append((name, file))
    if cache is not None:
        stats.cache_hits = cache.hits
    stats.cache_misses = len(misses)

    # Phase 2: lint the misses (serial, or parallel_map when it pays off).
    pmap: Callable[..., list[Any]] | None = None
    effective_workers = 0
    if misses and workers != 1 and codes is None:
        wanted = workers if workers is not None else 0
        if wanted > 1 or (workers is None and len(misses) >= PARALLEL_THRESHOLD):
            pmap = _resolve_parallel_map()
            effective_workers = wanted if wanted > 1 else 0
    if pmap is not None:
        items = [(name, str(file)) for name, file in misses]
        try:
            results = pmap(
                _lint_file_task,
                items,
                workers=effective_workers or None,
                chunksize=max(1, len(items) // 32),
            )
            stats.parallel_workers = effective_workers or -1
        except Exception:
            # A broken pool (sandboxed CI, missing /dev/shm, ...) must not
            # fail lint; re-lint everything serially instead.
            results = [_lint_file_task(item) for item in items]
            stats.parallel_workers = 0
        for (name, file), result in zip(misses, results):
            per_file[name] = (result["violations"], result["facts"])
            if cache is not None and result["sha256"] is not None:
                cache.store(
                    name, file, result["violations"], result["facts"],
                    sha256=result["sha256"],
                )
    else:
        for name, file in misses:
            result = _lint_file_task((name, str(file)))
            per_file[name] = (result["violations"], result["facts"])
            if cache is not None and result["sha256"] is not None:
                cache.store(
                    name, file, result["violations"], result["facts"],
                    sha256=result["sha256"],
                )

    # Phase 3: merge in collection order (project-rule state is order-
    # dependent: duplicate class names resolve last-wins, as before).
    violations: list[Violation] = []
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    wanted_codes = {r.code for r in rules}
    for name, _file in files:
        file_violations, facts = per_file[name]
        for data in file_violations:
            if data["code"] in wanted_codes or data["code"] == "REP000":
                violations.append(Violation.from_dict(data))
        for rule in project_rules:
            if rule.code in facts:
                rule.absorb(facts[rule.code])
    for rule in project_rules:
        violations.extend(rule.finalize())

    stats.broken_files = sum(1 for v in violations if v.code == "REP000")
    if cache is not None:
        cache.save()
    stats.wall_seconds = time.perf_counter() - started
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Repo-specific static analysis for the SDSRP reproduction "
        "(determinism, buffer invariants, policy registry).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="only run these rule codes (e.g. REP001 REP004); disables the cache",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the .reprolint_cache/ result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"cache directory (default: ./{CACHE_DIR_NAME})",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="lint cache misses with N parallel workers (requires the repro "
        "package; default: auto)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print file/cache/timing counters to stderr",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.code}  {cls.title}")
        return 0

    cache_dir: Path | None = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else Path(CACHE_DIR_NAME)

    stats = LintStats()
    violations = lint_paths(
        args.paths,
        codes=args.select,
        cache_dir=cache_dir,
        workers=args.workers,
        stats=stats,
    )
    for violation in violations:
        print(violation.format())
    if args.stats:
        print(stats.format(), file=sys.stderr)
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0
