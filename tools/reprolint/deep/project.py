"""Whole-program module/symbol graph for the deep analyzer.

Loads every ``*.py`` under a source root into :class:`ModuleInfo` records
(dotted module name, parsed tree, import map) and indexes classes, methods
and attribute write sites so rules can ask cross-module questions:

* resolve a call expression to the project function(s) it may reach
  (:meth:`Project.resolve_call` / :meth:`Project.method_candidates`);
* look up a class attribute's inferred container kind (``set``/``dict``/
  ``list``) from its ``__init__`` assignments and annotations;
* enumerate every site that mutates a given attribute
  (:class:`AttrSite`, used by the snapshot-coverage rule).

Everything is stdlib-``ast`` based and best-effort: unresolvable names
return ``None``/empty rather than raising, and rules are written to fail
toward silence on unknowns (precision over recall for a lint gate).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Union

from reprolint.deep.findings import Finding
from reprolint.runner import _is_fixture, parse_blob

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "appendleft", "popleft",
    "push", "sort", "reverse", "heappush",
})


def attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name-rooted chains."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return parts
    return None


@dataclass
class AttrSite:
    """One write to ``self.<attr>`` inside a method."""

    attr: str
    method: str
    kind: str  # "assign" | "augassign" | "subscript" | "mutate" | "del"
    line: int
    col: int


@dataclass
class FunctionInfo:
    qualname: str
    name: str
    module: "ModuleInfo"
    node: FunctionNode
    cls: "ClassInfo | None" = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    def param_annotation(self, name: str) -> str | None:
        args = self.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.arg == name and a.annotation is not None:
                return ast.unparse(a.annotation)
        return None


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> inferred container kind ("set"/"dict"/"list"/"other"), from
    #: ``__init__``/``__post_init__`` assignments and annotations.
    attr_kinds: dict[str, str] = field(default_factory=dict)
    #: attr -> every method site that writes/mutates it.
    attr_sites: dict[str, list[AttrSite]] = field(default_factory=dict)

    def is_dataclass_like(self) -> bool:
        for deco in self.node.decorator_list:
            chain = attr_chain(deco.func if isinstance(deco, ast.Call) else deco)
            if chain and chain[-1] in {"dataclass", "total_ordering"}:
                return True
        return False


@dataclass
class ModuleInfo:
    name: str
    path: str  # normalized POSIX path relative to the project root
    file: Path
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def anchor(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _kind_of_value(expr: ast.expr) -> str:
    """Container kind of an initializer expression."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        name = chain[-1] if chain else ""
        if name in {"set", "frozenset"}:
            return "set"
        if name in {"dict", "defaultdict", "OrderedDict", "Counter"}:
            return "dict"
        if name in {"list", "deque"}:
            return "list"
    return "other"


def _kind_of_annotation(annotation: ast.expr) -> str:
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip().lower()
    if head in {"set", "frozenset", "abstractset", "mutableset"}:
        return "set"
    if head in {"dict", "mapping", "mutablemapping", "defaultdict", "counter"}:
        return "dict"
    if head in {"list", "deque", "sequence", "mutablesequence"}:
        return "list"
    return "other"


class _ClassScanner(ast.NodeVisitor):
    """Collect attr kinds and write sites for one class body."""

    def __init__(self, cls: ClassInfo) -> None:
        self.cls = cls
        self.method = ""

    def scan_method(self, info: FunctionInfo) -> None:
        self.method = info.name
        for stmt in info.node.body:
            self.visit(stmt)

    # Nested defs belong to their own scope; don't attribute their writes
    # to the enclosing method's self (closures over self are rare and the
    # rules prefer false negatives here).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def _self_attr(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _record(self, attr: str, kind: str, node: ast.AST) -> None:
        site = AttrSite(
            attr=attr,
            method=self.method,
            kind=kind,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
        )
        self.cls.attr_sites.setdefault(attr, []).append(site)

    def _record_target(self, target: ast.expr, kind: str, node: ast.AST) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._record(attr, kind, node)
            return
        if isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._record(attr, "subscript", node)
            return
        # self.a.b = ... mutates the object held in self.a
        if isinstance(target, ast.Attribute):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._record(attr, "mutate", node)
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, kind, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        in_init = self.method in {"__init__", "__post_init__"}
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None and in_init and attr not in self.cls.attr_kinds:
                self.cls.attr_kinds[attr] = _kind_of_value(node.value)
            self._record_target(target, "assign", node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            kind = _kind_of_annotation(node.annotation)
            if kind != "other":
                self.cls.attr_kinds[attr] = kind
            else:
                self.cls.attr_kinds.setdefault(attr, kind)
            if node.value is not None:
                self._record(attr, "assign", node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, "augassign", node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None:
                self._record(attr, "del", node)
            elif isinstance(target, ast.Subscript):
                attr = self._self_attr(target.value)
                if attr is not None:
                    self._record(attr, "subscript", node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATOR_METHODS:
            attr = self._self_attr(node.func.value)
            if attr is not None:
                self._record(attr, "mutate", node)
            elif isinstance(node.func.value, ast.Subscript):
                # self.x[k].append(...) mutates the container in self.x
                attr = self._self_attr(node.func.value.value)
                if attr is not None:
                    self._record(attr, "mutate", node)
        self.generic_visit(node)


def _module_name(rel: PurePosixPath, src_rel: str) -> str:
    parts = list(rel.parts)
    if parts and parts[0] == src_rel:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _class_anno_kinds(cls_node: ast.ClassDef, cls: ClassInfo) -> None:
    """Class-level ``x: set[...] = ...`` annotations (dataclass fields)."""
    for stmt in cls_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            cls.attr_kinds.setdefault(
                stmt.target.id, _kind_of_annotation(stmt.annotation)
            )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.attr_kinds.setdefault(target.id, _kind_of_value(stmt.value))


class Project:
    """All loaded modules plus symbol indexes and call resolution."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.broken: list[Finding] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}

    # -- loading -------------------------------------------------------------

    def add_module(self, file: Path, path: str, name: str) -> None:
        try:
            data = file.read_bytes()
        except OSError as exc:
            self.broken.append(Finding(
                code="REP000", path=path, line=0, col=0,
                message=f"unreadable file: {exc}",
            ))
            return
        tree, violation = parse_blob(path, data)
        if tree is None:
            if violation is not None:
                self.broken.append(Finding(
                    code="REP000", path=path, line=violation.line,
                    col=violation.col, message=violation.message,
                ))
            return
        source = data.decode("utf-8")
        module = ModuleInfo(
            name=name, path=path, file=file, tree=tree,
            lines=source.splitlines(),
        )
        self._index_module(module)
        self.modules[name] = module
        self.modules_by_path[path] = module

    def _index_module(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            self._index_statement(module, stmt)

    def _index_statement(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                module.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(module, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{module.name}.{stmt.name}",
                name=stmt.name, module=module, node=stmt,
            )
            module.functions[stmt.name] = info
            self.methods_by_name.setdefault(stmt.name, []).append(info)
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(module, stmt)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    self._index_statement(module, inner)

    def _import_base(self, module: ModuleInfo, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        parts = module.name.split(".") if module.name else []
        is_package = module.path.endswith("__init__.py")
        package = parts if is_package else parts[:-1]
        if stmt.level > 1:
            package = package[: max(0, len(package) - (stmt.level - 1))]
        if stmt.module:
            package = package + stmt.module.split(".")
        return ".".join(package)

    def _index_class(self, module: ModuleInfo, stmt: ast.ClassDef) -> None:
        cls = ClassInfo(
            qualname=f"{module.name}.{stmt.name}",
            name=stmt.name, module=module, node=stmt,
        )
        for base in stmt.bases:
            chain = attr_chain(base)
            if chain:
                cls.bases.append(chain[-1])
        _class_anno_kinds(stmt, cls)
        for item in stmt.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{cls.qualname}.{item.name}",
                    name=item.name, module=module, node=item, cls=cls,
                )
                cls.methods[item.name] = info
                self.methods_by_name.setdefault(item.name, []).append(info)
        scanner = _ClassScanner(cls)
        for info in cls.methods.values():
            scanner.scan_method(info)
        module.classes[stmt.name] = cls
        self.classes_by_name.setdefault(stmt.name, []).append(cls)

    # -- queries -------------------------------------------------------------

    def iter_functions(self) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.functions.values())
            for cls in module.classes.values():
                out.extend(cls.methods.values())
        return out

    def resolve_symbol(self, module: ModuleInfo, dotted: list[str]) -> FunctionInfo | ClassInfo | None:
        """Resolve a dotted name used inside *module* to a project symbol."""
        if not dotted:
            return None
        head = dotted[0]
        target: list[str]
        if head in module.imports:
            target = module.imports[head].split(".") + dotted[1:]
        elif head in module.functions and len(dotted) == 1:
            return module.functions[head]
        elif head in module.classes:
            cls = module.classes[head]
            if len(dotted) == 1:
                return cls
            if len(dotted) == 2:
                return cls.methods.get(dotted[1])
            return None
        else:
            return None
        # Longest-prefix match against loaded module names.
        for split in range(len(target), 0, -1):
            mod = self.modules.get(".".join(target[:split]))
            if mod is None:
                continue
            rest = target[split:]
            if not rest:
                return None
            if rest[0] in mod.functions and len(rest) == 1:
                return mod.functions[rest[0]]
            if rest[0] in mod.classes:
                cls = mod.classes[rest[0]]
                if len(rest) == 1:
                    return cls
                if len(rest) == 2:
                    return cls.methods.get(rest[1])
            return None
        return None

    def class_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Look up *name* on *cls* or (by bare name) its base classes."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                queue.extend(self.classes_by_name.get(base, []))
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> FunctionInfo | None:
        """Precisely resolve a call site (or its constructor's ``__init__``)."""
        chain = attr_chain(call.func)
        if chain is None:
            return None
        if chain[0] == "self" and fn.cls is not None and len(chain) == 2:
            return self.class_method(fn.cls, chain[1])
        symbol = self.resolve_symbol(fn.module, chain)
        if isinstance(symbol, FunctionInfo):
            return symbol
        if isinstance(symbol, ClassInfo):
            return symbol.methods.get("__init__")
        return None

    def method_candidates(self, name: str) -> list[FunctionInfo]:
        """All project functions/methods with this bare name (heuristic)."""
        return self.methods_by_name.get(name, [])


def load_project(root: Path, paths: list[str] | None = None, src_rel: str = "src") -> Project:
    """Load every non-fixture ``*.py`` under *root*'s source directories.

    *paths* defaults to ``["src"]`` (relative to *root*); module dotted names
    strip the leading ``src`` component, matching how the package imports.
    """
    project = Project(root)
    scan = paths if paths is not None else [src_rel]
    files: list[tuple[str, Path]] = []
    for raw in scan:
        p = root / raw if not Path(raw).is_absolute() else Path(raw)
        if p.is_dir():
            files.extend((_rel(f, root), f) for f in sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append((_rel(p, root), p))
    for path, file in files:
        if _is_fixture(Path(path).parts):
            continue
        name = _module_name(PurePosixPath(path), src_rel)
        project.add_module(file, path, name)
    return project


def _rel(path: Path, root: Path) -> str:
    try:
        return str(PurePosixPath(path.resolve().relative_to(root.resolve())))
    except ValueError:
        return str(PurePosixPath(path))
