"""Deep-analyzer entry point: ``python -m reprolint.deep [paths...]``."""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from reprolint.deep.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from reprolint.deep.engine import SummaryEngine
from reprolint.deep.findings import Finding, assign_occurrences
from reprolint.deep.output import to_json, to_sarif
from reprolint.deep.project import Project, load_project
from reprolint.deep.rules import ALL_DEEP_RULES
from reprolint.deep.suppress import (
    apply_suppressions,
    collect_suppressions,
    unused_suppressions,
)

DEFAULT_BASELINE = Path("tools/reprolint/baseline.json")


@dataclass
class AnalysisResult:
    """Everything one deep run produced, pre-baseline."""

    project: Project
    findings: list[Finding] = field(default_factory=list)  # active, unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    unused: list[Finding] = field(default_factory=list)
    broken: list[Finding] = field(default_factory=list)
    wall_seconds: float = 0.0


def analyze(
    root: Path,
    paths: list[str] | None = None,
    codes: Iterable[str] | None = None,
) -> AnalysisResult:
    """Run the deep rules over *root* (library entry point, no baseline)."""
    started = time.perf_counter()
    project = load_project(root, paths)
    engine = SummaryEngine(project)
    wanted = {c.upper() for c in codes} if codes is not None else None
    findings: list[Finding] = []
    for rule_cls in ALL_DEEP_RULES:
        if wanted is not None and rule_cls.code not in wanted:
            continue
        findings.extend(rule_cls().run(project, engine))
    assign_occurrences(findings)
    suppressions = collect_suppressions(list(project.modules.values()))
    active, suppressed = apply_suppressions(findings, suppressions)
    result = AnalysisResult(
        project=project,
        findings=active,
        suppressed=suppressed,
        unused=unused_suppressions(suppressions),
        broken=list(project.broken),
    )
    result.wall_seconds = time.perf_counter() - started
    return result


def _rule_docs() -> dict[str, tuple[str, str]]:
    return {cls.code: (cls.title, cls.explain) for cls in ALL_DEEP_RULES}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint-deep",
        description="Whole-program determinism analysis for the SDSRP "
        "reproduction (RNG provenance, order-sensitivity taint, snapshot "
        "coverage, observer purity).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="directories/files to analyze, relative to --root (default: src)",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="project root for path normalization (default: cwd)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="only run these rule codes (e.g. REP102 REP103)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} under --root, "
        "when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="write a JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="write a SARIF 2.1.0 report ('-' for stdout)",
    )
    parser.add_argument(
        "--fail-on-unused-suppressions", action="store_true",
        help="exit non-zero when stale disable comments exist (CI mode)",
    )
    parser.add_argument(
        "--explain", metavar="CODE", default=None,
        help="print the full rule description for CODE and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the deep rule set and exit",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print module/finding counts and timing to stderr",
    )
    args = parser.parse_args(argv)

    docs = _rule_docs()
    if args.list_rules:
        for code in sorted(docs):
            print(f"{code}  {docs[code][0]}")
        return 0
    if args.explain is not None:
        code = args.explain.upper()
        if code not in docs:
            known = ", ".join(sorted(docs))
            print(f"unknown rule {code}; known deep rules: {known}",
                  file=sys.stderr)
            return 2
        title, explanation = docs[code]
        print(f"{code} — {title}\n\n{explanation}")
        return 0

    root = Path(args.root).resolve()
    result = analyze(root, args.paths or None, codes=args.select)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"reprolint-deep: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline: dict[str, dict[str, object]] = {}
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"reprolint-deep: {exc}", file=sys.stderr)
            return 2
    new, baselined, stale = apply_baseline(result.findings, baseline)

    for finding in result.broken:
        print(finding.format())
    for finding in new:
        print(finding.format())
    for finding in result.unused:
        print(finding.format())

    if args.json is not None:
        payload = to_json(new, result.suppressed + baselined,
                          result.unused, stale)
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")
    if args.sarif is not None:
        sarif = to_sarif(new + result.broken, docs, unused=result.unused)
        if args.sarif == "-":
            sys.stdout.write(sarif)
        else:
            Path(args.sarif).write_text(sarif, encoding="utf-8")

    if args.stats:
        print(
            f"reprolint-deep: {len(result.project.modules)} module(s), "
            f"{len(new)} new, {len(baselined)} baselined, "
            f"{len(result.suppressed)} suppressed, "
            f"{len(result.unused)} unused suppression(s), "
            f"{len(stale)} stale baseline entr(y/ies), "
            f"{result.wall_seconds:.2f}s",
            file=sys.stderr,
        )
    if stale:
        print(
            f"reprolint-deep: {len(stale)} stale baseline entr(y/ies) — "
            "regenerate with --write-baseline to shrink the baseline",
            file=sys.stderr,
        )

    failed = bool(new or result.broken)
    if args.fail_on_unused_suppressions and result.unused:
        failed = True
    if failed:
        total = len(new) + len(result.broken)
        print(f"reprolint-deep: {total} finding(s)", file=sys.stderr)
        return 1
    return 0
