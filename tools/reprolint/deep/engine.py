"""Intraprocedural dataflow with call summaries.

Two engines live here:

* :class:`SummaryEngine` — per-function side-effect summaries (attribute
  writes/reads, whether the function mutates anything, whether it returns a
  ``set``), made transitive over *precisely* resolved calls (``self.m()``,
  direct imports) with a cycle guard.  Rules use summaries to decide whether
  a call inside an order-tainted loop is a state sink (REP102), which
  attributes the snapshot codec reads transitively (REP103), and whether an
  observer-reachable function writes foreign state (REP104).
* :class:`RngEnv` — per-function RNG provenance: classifies each local
  name / parameter / ``self`` attribute that can hold a random generator as
  stream-derived, parameter-supplied, or unknown (REP101).

Heuristic name-based resolution (:meth:`~reprolint.deep.project.Project.
method_candidates`) is deliberately **not** used for transitive summaries —
it would smear "mutates" over the whole program; rules consult candidates
only at the final sink check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Union

from reprolint.deep.project import (
    MUTATOR_METHODS,
    ClassInfo,
    FunctionInfo,
    Project,
    attr_chain,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call names treated as event/trace emission (state sinks even when no
#: attribute write is visible at this level).
EMIT_NAMES = frozenset({"emit", "record", "schedule", "schedule_every", "publish"})

#: numpy.random.Generator draw methods the provenance rule cares about.
DRAW_METHODS = frozenset({
    "random", "uniform", "integers", "choice", "exponential", "normal",
    "standard_normal", "shuffle", "permutation", "poisson", "binomial",
    "geometric", "beta", "gamma", "lognormal", "multinomial", "triangular",
    "laplace", "rayleigh", "standard_exponential",
})

#: Builtins that consume an iterable without exposing its order.
ORDER_SANITIZERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
    "heapify",
})

#: Pure builtins safe to call inside an order-tainted loop.
PURE_BUILTINS = frozenset({
    "len", "min", "max", "sum", "any", "all", "sorted", "abs", "round",
    "int", "float", "str", "bool", "repr", "hash", "isinstance", "issubclass",
    "tuple", "list", "dict", "set", "frozenset", "zip", "enumerate", "range",
    "print", "getattr", "hasattr", "id", "type", "iter", "next", "divmod",
    "format", "ord", "chr",
})


@dataclass(frozen=True)
class Summary:
    """Side-effect summary of one function (transitive over precise calls)."""

    writes: frozenset[str]
    reads: frozenset[str]
    mutates: bool
    emits: bool
    returns_set: bool


def _returns_set_annotation(node: FunctionNode) -> bool:
    if node.returns is None:
        return False
    head = ast.unparse(node.returns).split("[", 1)[0].strip().lower()
    return head in {"set", "frozenset", "abstractset"}


class _DirectFacts(ast.NodeVisitor):
    """Direct (non-transitive) facts of one function body."""

    def __init__(self) -> None:
        self.writes: set[str] = set()
        self.reads: set[str] = set()
        self.mutates = False
        self.emits = False
        self.returns_set = False
        self.calls: list[ast.Call] = []

    def _note_write_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            self.writes.add(target.attr)
            self.mutates = True
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self.writes.add(target.value.attr)
            self.mutates = True
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_write_target(elt)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_write_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_write_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._note_write_target(target)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.reads.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                if isinstance(node.func.value, ast.Attribute):
                    self.writes.add(node.func.value.attr)
                self.mutates = True
            if node.func.attr in EMIT_NAMES:
                self.emits = True
                self.mutates = True
        elif isinstance(node.func, ast.Name) and node.func.id in EMIT_NAMES:
            self.emits = True
            self.mutates = True
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and isinstance(
            node.value, (ast.Set, ast.SetComp)
        ):
            self.returns_set = True
        if isinstance(node.value, ast.Call):
            chain = attr_chain(node.value.func)
            if chain and chain[-1] in {"set", "frozenset"}:
                self.returns_set = True
        self.generic_visit(node)


class SummaryEngine:
    """Memoized transitive summaries with a cycle guard."""

    def __init__(self, project: Project, max_depth: int = 6) -> None:
        self.project = project
        self.max_depth = max_depth
        self._memo: dict[str, Summary] = {}
        self._in_progress: set[str] = set()

    def summary(self, fn: FunctionInfo, depth: int = 0) -> Summary:
        cached = self._memo.get(fn.qualname)
        if cached is not None:
            return cached
        facts = _DirectFacts()
        for stmt in fn.node.body:
            facts.visit(stmt)
        returns_set = facts.returns_set or _returns_set_annotation(fn.node)
        writes = set(facts.writes)
        reads = set(facts.reads)
        mutates = facts.mutates
        emits = facts.emits
        if depth < self.max_depth and fn.qualname not in self._in_progress:
            self._in_progress.add(fn.qualname)
            try:
                for call in facts.calls:
                    callee = self.project.resolve_call(fn, call)
                    if callee is None or callee.qualname == fn.qualname:
                        continue
                    sub = self.summary(callee, depth + 1)
                    writes |= sub.writes
                    reads |= sub.reads
                    mutates = mutates or sub.mutates
                    emits = emits or sub.emits
            finally:
                self._in_progress.discard(fn.qualname)
        result = Summary(
            writes=frozenset(writes),
            reads=frozenset(reads),
            mutates=mutates,
            emits=emits,
            returns_set=returns_set,
        )
        # Only cache fully-expanded summaries; partial ones (cycle cut-offs)
        # would otherwise stick.
        if not self._in_progress:
            self._memo[fn.qualname] = result
        return result

    def call_mutates(self, fn: FunctionInfo, call: ast.Call) -> bool:
        """Does this call site (possibly) mutate program state?

        Precise resolution first; falls back to bare-name candidates — the
        call counts as mutating only if *every* candidate mutates (split
        candidate sets are too ambiguous to flag).
        """
        callee = self.project.resolve_call(fn, call)
        if callee is not None:
            return self.summary(callee).mutates
        chain = attr_chain(call.func)
        if chain is None:
            return False
        if chain[-1] in MUTATOR_METHODS or chain[-1] in EMIT_NAMES:
            return True
        candidates = self.project.method_candidates(chain[-1])
        if candidates and all(self.summary(c).mutates for c in candidates):
            return True
        return False


def transitive_reads(
    engine: SummaryEngine, roots: list[FunctionInfo]
) -> set[str]:
    """Attribute names read by *roots* or anything they precisely call."""
    reads: set[str] = set()
    for fn in roots:
        reads |= engine.summary(fn).reads
    return reads


# -- RNG provenance ----------------------------------------------------------

#: Provenance verdicts for a generator-holding name.
STREAM = "stream"          # assigned from RngFactory(...).stream(...)
PARAM = "param"            # supplied by caller as a parameter
DEFAULT_RNG = "default_rng"  # numpy default_rng / RandomState (ambient)
UNKNOWN = "unknown"


def is_stream_call(expr: ast.expr) -> bool:
    """``<anything>.stream(...)`` or ``<anything>.spawn(...)``."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in {"stream", "spawn"}
    )


def rng_like_name(name: str) -> bool:
    lowered = name.lower()
    return (
        "rng" in lowered
        or lowered in {"gen", "generator", "stream", "rand", "random_state"}
        or lowered.endswith("_stream")
    )


def _annotation_is_generator(text: str | None) -> bool:
    if text is None:
        return False
    return "Generator" in text or "RngFactory" in text


class RngEnv:
    """Provenance of generator-holding names inside one function."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.locals: dict[str, str] = {}
        self.local_sites: dict[str, ast.expr] = {}
        self._attr_cache: dict[str, str] = {}
        for name in fn.params:
            annotation = fn.param_annotation(name)
            if _annotation_is_generator(annotation) or (
                annotation is None and rng_like_name(name)
            ):
                self.locals[name] = PARAM
        collector = _RngAssigns(self)
        for stmt in fn.node.body:
            collector.visit(stmt)

    def classify_value(self, expr: ast.expr) -> str:
        if is_stream_call(expr):
            return STREAM
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] in {"default_rng", "RandomState"}:
                return DEFAULT_RNG
        if isinstance(expr, ast.Name):
            return self.locals.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.Attribute):
            chain = attr_chain(expr)
            if chain is not None and chain[0] == "self" and len(chain) == 2:
                return self.self_attr_provenance(chain[1])
        return UNKNOWN

    def self_attr_provenance(self, attr: str) -> str:
        """Provenance of ``self.<attr>``: scan the class *and its bases*
        (by bare name) for every ``self.<attr> = ...`` bind."""
        if attr in self._attr_cache:
            return self._attr_cache[attr]
        self._attr_cache[attr] = UNKNOWN  # cycle guard
        cls = self.fn.cls
        if cls is None:
            return UNKNOWN
        verdict = UNKNOWN
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            for base in cur.bases:
                queue.extend(self.project.classes_by_name.get(base, []))
            for method in cur.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    if value is None:
                        continue
                    for target in targets:
                        chain = attr_chain(target)
                        if chain == ["self", attr]:
                            env = method_env(self.project, method)
                            kind = env.classify_value(value)
                            if kind in {STREAM, PARAM}:
                                verdict = kind
                            elif kind == DEFAULT_RNG and verdict == UNKNOWN:
                                verdict = DEFAULT_RNG
        self._attr_cache[attr] = verdict
        return verdict

    def receiver_provenance(self, receiver: ast.expr) -> str:
        return self.classify_value(receiver)


class _RngAssigns(ast.NodeVisitor):
    def __init__(self, env: RngEnv) -> None:
        self.env = env

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self.env.classify_value(node.value)
        if value != UNKNOWN:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.locals[target.id] = value
                    self.env.local_sites[target.id] = node.value
        self.generic_visit(node)


_ENV_CACHE: dict[str, RngEnv] = {}


def method_env(project: Project, fn: FunctionInfo) -> RngEnv:
    env = _ENV_CACHE.get(fn.qualname)
    if env is None or env.fn is not fn:
        env = RngEnv(project, fn)
        _ENV_CACHE[fn.qualname] = env
    return env


def find_draw_calls(fn: FunctionInfo) -> list[ast.Call]:
    """Calls that look like ``<receiver>.<draw-method>(...)``."""
    out: list[ast.Call] = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
        ):
            out.append(node)
    return out
