"""Findings baseline: accepted findings keyed by content-hash fingerprint.

The committed baseline (``tools/reprolint/baseline.json``) lets the deep
analyzer gate CI while known, justified findings are burned down.  Entries
key on :attr:`~reprolint.deep.findings.Finding.fingerprint` — a hash of
(code, path, message, anchor text, occurrence) — so reformatting that only
moves line numbers does not churn the baseline, while any change to the
flagged code invalidates its entry.

The repo's target state is an **empty** baseline (``{"findings": {}}``);
prefer fixing or inline-suppressing (with justification) over baselining.
"""

from __future__ import annotations

import json
from pathlib import Path

from reprolint.deep.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


def load_baseline(path: Path) -> dict[str, dict[str, object]]:
    """Fingerprint -> entry map from *path*; {} when the file is absent."""
    if not path.exists():
        return {}
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"{path}: unreadable baseline ({exc})") from None
    if not isinstance(raw, dict) or not isinstance(raw.get("findings"), dict):
        raise BaselineError(f"{path}: baseline must be an object with 'findings'")
    findings = raw["findings"]
    for key, entry in findings.items():
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: baseline entry {key!r} is not an object")
    return dict(findings)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted reprolint-deep findings, keyed by content fingerprint. "
            "Target state: empty. Regenerate with --write-baseline."
        ),
        "findings": {
            f.fingerprint: {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.code))
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(
    findings: list[Finding], baseline: dict[str, dict[str, object]]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split findings into (new, baselined); also return stale fingerprints.

    Stale entries (baselined fingerprints no longer produced) are reported
    so the baseline shrinks as findings are fixed.
    """
    new: list[Finding] = []
    matched: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        fp = finding.fingerprint
        if fp in baseline:
            finding.baselined = True
            matched.append(finding)
            seen.add(fp)
        else:
            new.append(finding)
    stale = sorted(fp for fp in baseline if fp not in seen)
    return new, matched, stale
