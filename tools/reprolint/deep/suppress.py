"""Inline ``# reprolint: disable=REPxxx`` suppressions.

A suppression comment on the flagged line silences matching findings for
that line only.  Unused suppressions (no finding matched) are themselves
reported as ``REP100`` so stale comments cannot quietly disable future
findings — CI fails on them via ``--fail-on-unused-suppressions``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from reprolint.deep.findings import Finding
from reprolint.deep.project import ModuleInfo

_PATTERN = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


@dataclass
class Suppression:
    path: str
    line: int
    codes: tuple[str, ...]
    used: set[str] = field(default_factory=set)


def collect_suppressions(modules: list[ModuleInfo]) -> dict[tuple[str, int], Suppression]:
    """Scan module sources for suppression comments, keyed by (path, line)."""
    out: dict[tuple[str, int], Suppression] = {}
    for module in modules:
        for lineno, text in enumerate(module.lines, start=1):
            match = _PATTERN.search(text)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if codes:
                out[(module.path, lineno)] = Suppression(
                    path=module.path, line=lineno, codes=codes
                )
    return out


def apply_suppressions(
    findings: list[Finding],
    suppressions: dict[tuple[str, int], Suppression],
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed); marks suppressions used."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        suppression = suppressions.get((finding.path, finding.line))
        if suppression is not None and finding.code in suppression.codes:
            suppression.used.add(finding.code)
            finding.suppressed = True
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def unused_suppressions(
    suppressions: dict[tuple[str, int], Suppression],
) -> list[Finding]:
    """``REP100`` findings for suppression codes that matched nothing."""
    out: list[Finding] = []
    for suppression in suppressions.values():
        for code in suppression.codes:
            if code not in suppression.used:
                out.append(Finding(
                    code="REP100",
                    path=suppression.path,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"unused suppression for {code}: no {code} finding on "
                        "this line — remove the stale comment"
                    ),
                ))
    out.sort(key=lambda f: (f.path, f.line, f.message))
    return out
