"""JSON and SARIF 2.1.0 serialization for deep findings."""

from __future__ import annotations

import json
from typing import Any

from reprolint.deep.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_json(
    findings: list[Finding],
    suppressed: list[Finding],
    unused: list[Finding],
    stale_baseline: list[str],
) -> str:
    payload: dict[str, Any] = {
        "tool": "reprolint-deep",
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
        "unused_suppressions": [f.to_dict() for f in unused],
        "stale_baseline": list(stale_baseline),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def to_sarif(
    findings: list[Finding],
    rules: dict[str, tuple[str, str]],
    unused: list[Finding] | None = None,
) -> str:
    """Findings (plus unused-suppression findings) as a SARIF log.

    *rules* maps code -> (title, full description); REP000/REP100 get
    built-in descriptions.
    """
    all_rules = dict(rules)
    all_rules.setdefault("REP000", (
        "file could not be analyzed",
        "The file is not valid UTF-8 or does not parse; fix it so the "
        "analyzer can see it.",
    ))
    all_rules.setdefault("REP100", (
        "unused suppression",
        "A # reprolint: disable=... comment matched no finding; remove it.",
    ))
    ordered_codes = sorted(all_rules)
    results: list[dict[str, Any]] = []
    for finding in list(findings) + list(unused or []):
        results.append({
            "ruleId": finding.code,
            "ruleIndex": ordered_codes.index(finding.code)
            if finding.code in ordered_codes else -1,
            "level": "error",
            "message": {"text": finding.message},
            "partialFingerprints": {"reprolintDeep/v1": finding.fingerprint},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                },
            }],
        })
    log: dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint-deep",
                    "informationUri": "docs/static_analysis.md",
                    "rules": [
                        {
                            "id": code,
                            "name": code,
                            "shortDescription": {"text": all_rules[code][0]},
                            "fullDescription": {"text": all_rules[code][1]},
                        }
                        for code in ordered_codes
                    ],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
