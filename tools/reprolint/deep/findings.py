"""Finding records for the deep analyzer.

Unlike the per-file linter's :class:`~reprolint.rules.Violation`, deep
findings carry a **content-hash fingerprint** so the baseline file keys on
*what* was found (rule, file, message, anchor line text) rather than *where*
exactly — pure line-number drift (reformatting, added imports) does not
invalidate a baselined finding, while any change to the offending line does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Finding:
    """One deep-analysis hit.

    ``anchor`` is the stripped source text of the flagged line; it feeds the
    fingerprint together with ``code``/``path``/``message`` and an occurrence
    index (so two identical lines in one file fingerprint distinctly).
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    anchor: str = ""
    occurrence: int = 0
    suppressed: bool = False
    baselined: bool = False
    #: Extra rule-specific context (e.g. the attribute a REP103 finding is
    #: about); serialized into JSON output, excluded from the fingerprint.
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for part in (
            self.code, self.path, self.message, self.anchor,
            str(self.occurrence),
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()[:20]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "detail": dict(self.detail),
        }


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Disambiguate identical (code, path, message, anchor) findings.

    Findings are numbered in (line, col) order so the fingerprint of the
    *n*-th identical hit is stable as long as their relative order is.
    Returns the findings sorted by (path, line, col, code).
    """
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    seen: dict[tuple[str, str, str, str], int] = {}
    for finding in findings:
        key = (finding.code, finding.path, finding.message, finding.anchor)
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1
    return findings
