"""The four deep rule families: REP101-REP104.

Each rule is a callable object with ``code``/``title``/``explain`` and a
``run(project, engine) -> list[Finding]``.  All four fail toward *silence*
on unresolvable constructs — a lint gate must be quiet on code it cannot
understand, and the chaos harness still covers the dynamic residue.

See ``docs/static_analysis.md`` for the property each rule proves and the
refactor it protects.
"""

from __future__ import annotations

import ast
from typing import Union

from reprolint.deep.engine import (
    DEFAULT_RNG,
    DRAW_METHODS,
    PARAM,
    STREAM,
    UNKNOWN,
    RngEnv,
    SummaryEngine,
    _returns_set_annotation,
    is_stream_call,
    method_env,
    rng_like_name,
)
from reprolint.deep.findings import Finding
from reprolint.deep.project import (
    MUTATOR_METHODS,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    attr_chain,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _finding(
    code: str, module: ModuleInfo, node: ast.AST, message: str, **detail: object
) -> Finding:
    line = getattr(node, "lineno", 0)
    return Finding(
        code=code,
        path=module.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        anchor=module.anchor(line),
        detail={k: v for k, v in detail.items()},
    )


def _function_bodies(fn: FunctionInfo) -> list[ast.stmt]:
    return list(fn.node.body)


def _walk_no_nested(node: ast.AST) -> list[ast.AST]:
    """Walk *node* without descending into nested function/class defs."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        out.append(cur)
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.append(child)
    return out


# ---------------------------------------------------------------------------
# REP101 — RNG provenance
# ---------------------------------------------------------------------------


class Rep101RngProvenance:
    code = "REP101"
    title = "random draws must trace to a named RngFactory stream"
    explain = """\
Every random draw in the simulator must be a pure function of the scenario
seed.  The repo's contract: generators come from `RngFactory(seed).stream(
"subsystem.name")`, worker processes derive child seeds with `derive_seed(
base, *components)`, and nothing draws from numpy's ambient generator
(REP001 already bans the `np.random.*` module functions).

This rule proves the cross-module half of that contract:

* a draw call (`.random()`, `.integers()`, `.choice()`, ...) whose receiver
  cannot be traced — through locals, parameters and `self` attributes — to a
  `.stream(...)`/`.spawn(...)` call or a caller-supplied Generator parameter
  is flagged;
* `RngFactory(<literal int>)` anywhere outside the factory's own module is
  flagged: a constant seed silently decouples that subsystem from the
  scenario seed (vectorizing a hot loop by hoisting a factory is exactly
  how this regresses);
* a stream created *outside* a per-node loop under a constant name and then
  drawn from *inside* the loop is flagged as shared: per-node work must use
  per-node stream names (or `derive_seed`) so node order cannot re-shuffle
  the draw sequence when the loop is sharded across processes;
* functions reachable from `repro.parallel` / `repro.service` worker entry
  points may only construct `RngFactory(...)` from a parameter, an attribute
  (e.g. `config.seed`) or a `derive_seed(...)` result — anything else means
  two workers can collide or diverge from the replay path.

Fix by threading a named stream (or the factory) into the drawing code;
suppress only where a constant seed is the documented intent (e.g. a
fallback generator that never feeds simulation state).
"""

    def run(self, project: Project, engine: SummaryEngine) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.iter_functions():
            if fn.module.name == "repro.rng":
                continue
            findings.extend(self._literal_factories(fn))
            findings.extend(self._draw_provenance(project, fn))
            findings.extend(self._shared_stream_loops(project, fn))
        findings.extend(self._worker_paths(project))
        return findings

    # -- RngFactory(<literal>) ------------------------------------------------

    def _literal_factories(self, fn: FunctionInfo) -> list[Finding]:
        out: list[Finding] = []
        for node in _walk_no_nested(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain or chain[-1] != "RngFactory" or not node.args:
                continue
            seed = node.args[0]
            if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
                out.append(_finding(
                    self.code, fn.module, node,
                    f"RngFactory seeded with literal {seed.value!r} in "
                    f"{fn.qualname}: generators must derive from the scenario "
                    "seed (accept a factory/stream argument or use "
                    "derive_seed)",
                ))
        return out

    # -- draw receiver provenance --------------------------------------------

    def _draw_provenance(self, project: Project, fn: FunctionInfo) -> list[Finding]:
        out: list[Finding] = []
        env = method_env(project, fn)
        for node in _walk_no_nested(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DRAW_METHODS
            ):
                continue
            receiver = node.func.value
            if is_stream_call(receiver):
                continue
            chain = attr_chain(receiver)
            if chain is None:
                continue
            prov = env.receiver_provenance(receiver)
            if prov in (STREAM, PARAM):
                continue
            rng_ish = rng_like_name(chain[-1])
            if prov == DEFAULT_RNG:
                out.append(_finding(
                    self.code, fn.module, node,
                    f"draw `{'.'.join(chain)}.{node.func.attr}()` in "
                    f"{fn.qualname} uses an ambient default_rng/RandomState, "
                    "not a named RngFactory stream",
                ))
            elif prov == UNKNOWN and rng_ish:
                out.append(_finding(
                    self.code, fn.module, node,
                    f"draw `{'.'.join(chain)}.{node.func.attr}()` in "
                    f"{fn.qualname} cannot be traced to a named "
                    "RngFactory.stream(...) or a Generator parameter",
                ))
        return out

    # -- streams shared across per-node loops ----------------------------------

    def _shared_stream_loops(self, project: Project, fn: FunctionInfo) -> list[Finding]:
        out: list[Finding] = []
        env = method_env(project, fn)
        for loop in _walk_no_nested(fn.node):
            if not isinstance(loop, ast.For):
                continue
            if not self._iterates_nodes(loop.iter):
                continue
            loop_end = getattr(loop, "end_lineno", loop.lineno) or loop.lineno
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in DRAW_METHODS
                ):
                    continue
                receiver = node.func.value
                site = self._stream_site(env, receiver)
                if site is None:
                    continue
                site_line = getattr(site, "lineno", 0)
                inside = loop.lineno <= site_line <= loop_end
                if inside or self._stream_is_per_entity(site, loop):
                    continue
                out.append(_finding(
                    self.code, fn.module, node,
                    f"stream drawn inside a per-node loop in {fn.qualname} is "
                    "created once outside the loop under a constant name; "
                    "per-node draws need per-node streams (name the stream "
                    "per node id or derive_seed per node) or the loop cannot "
                    "be sharded deterministically",
                ))
        return out

    def _iterates_nodes(self, iter_expr: ast.expr) -> bool:
        for node in ast.walk(iter_expr):
            if isinstance(node, ast.Name) and node.id in {"nodes", "node_ids"}:
                return True
            if isinstance(node, ast.Attribute) and node.attr in {"nodes", "node_ids"}:
                return True
        return False

    def _stream_site(self, env: RngEnv, receiver: ast.expr) -> ast.expr | None:
        """The `.stream(...)` call that bound *receiver*, if traceable."""
        if isinstance(receiver, ast.Name):
            if env.locals.get(receiver.id) != STREAM:
                return None
            return env.local_sites.get(receiver.id)
        return None

    def _stream_is_per_entity(self, site: ast.expr, loop: ast.For) -> bool:
        """Stream name varies per iteration (f-string / format / concat)?"""
        if not (isinstance(site, ast.Call) and site.args):
            return True  # unnamed / dynamic: give the benefit of the doubt
        name_arg = site.args[0]
        return not isinstance(name_arg, ast.Constant)

    # -- worker reachability ---------------------------------------------------

    WORKER_MODULE_PREFIXES = ("repro.parallel", "repro.service")

    def _worker_paths(self, project: Project) -> list[Finding]:
        roots: list[FunctionInfo] = []
        for module in project.modules.values():
            if module.name.startswith(self.WORKER_MODULE_PREFIXES):
                roots.extend(module.functions.values())
                for cls in module.classes.values():
                    roots.extend(cls.methods.values())
        visited: dict[str, FunctionInfo] = {}
        queue = list(roots)
        depth = 0
        while queue and depth < 8:
            next_queue: list[FunctionInfo] = []
            for fn in queue:
                if fn.qualname in visited:
                    continue
                visited[fn.qualname] = fn
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call):
                        callee = project.resolve_call(fn, node)
                        if callee is not None and callee.qualname not in visited:
                            next_queue.append(callee)
            queue = next_queue
            depth += 1
        out: list[Finding] = []
        for fn in visited.values():
            if fn.module.name == "repro.rng":
                continue
            out.extend(self._underived_factories(fn))
        return out

    def _underived_factories(self, fn: FunctionInfo) -> list[Finding]:
        derived: set[str] = set()
        params = set(fn.params)
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = attr_chain(node.value.func)
                if chain and chain[-1] == "derive_seed":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            derived.add(target.id)
        out: list[Finding] = []
        for node in _walk_no_nested(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain or chain[-1] != "RngFactory":
                continue
            if not node.args:
                out.append(_finding(
                    self.code, fn.module, node,
                    f"RngFactory() without a seed on a worker path "
                    f"({fn.qualname}): workers must derive their seed with "
                    "derive_seed(...)",
                ))
                continue
            seed = node.args[0]
            ok = (
                isinstance(seed, ast.Attribute)
                or isinstance(seed, ast.Subscript)
                or (isinstance(seed, ast.Name) and (
                    seed.id in params or seed.id in derived
                ))
                or (isinstance(seed, ast.Call) and (
                    (attr_chain(seed.func) or [""])[-1] in {"derive_seed", "int"}
                ))
            )
            # literal seeds are already covered by the literal-factory check
            if isinstance(seed, ast.Constant):
                ok = True
            if not ok:
                out.append(_finding(
                    self.code, fn.module, node,
                    f"RngFactory seed on a worker path ({fn.qualname}) is "
                    "neither a parameter, an attribute, nor a "
                    "derive_seed(...) result — replayed workers may diverge",
                ))
        return out


# ---------------------------------------------------------------------------
# REP102 — order-sensitivity taint
# ---------------------------------------------------------------------------

#: Call names whose result iteration order is filesystem-dependent.
FS_ORDER_SOURCES = frozenset({
    "listdir", "scandir", "walk", "glob", "iglob", "rglob", "iterdir",
})

#: Calls that consume an iterable without exposing its order downstream.
CONSUMING_SANITIZERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})

#: In-place methods that are order-safe on an unordered receiver.
SET_SAFE_MUTATORS = frozenset({"add", "discard", "remove", "update", "clear"})


class _OrderEnv:
    """Set-typedness and taint for the locals of one function."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.set_locals: set[str] = set()
        self.tainted: set[str] = set()
        for name in fn.params:
            annotation = fn.param_annotation(name)
            if annotation is not None:
                head = annotation.split("[", 1)[0].strip().lower()
                if head in {"set", "frozenset", "abstractset", "mutableset"}:
                    self.set_locals.add(name)

    # -- typedness -----------------------------------------------------------

    def is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.set_locals
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(expr.left) or self.is_set_expr(expr.right)
        if isinstance(expr, ast.Attribute):
            return self._attr_is_set(expr)
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain is None:
                return False
            if chain[-1] in {"set", "frozenset"}:
                return True
            if chain[-1] in {
                "intersection", "union", "difference", "symmetric_difference",
            }:
                return self.is_set_expr(expr.func.value) if isinstance(
                    expr.func, ast.Attribute
                ) else False
            return self._call_returns_set(expr, chain)
        return False

    def _attr_is_set(self, expr: ast.Attribute) -> bool:
        chain = attr_chain(expr)
        if chain is None:
            return False
        if chain[0] == "self" and len(chain) == 2 and self.fn.cls is not None:
            kind = self._class_attr_kind(self.fn.cls, chain[1])
            if kind is not None:
                return kind == "set"
        # Foreign attribute: unanimous verdict across every class defining it.
        kinds: set[str] = set()
        for cls_list in self.project.classes_by_name.values():
            for cls in cls_list:
                kind = cls.attr_kinds.get(chain[-1])
                if kind is not None and kind != "other":
                    kinds.add(kind)
        return kinds == {"set"}

    def _class_attr_kind(self, cls: ClassInfo, attr: str) -> str | None:
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if attr in cur.attr_kinds:
                return cur.attr_kinds[attr]
            for base in cur.bases:
                queue.extend(self.project.classes_by_name.get(base, []))
        return None

    def _call_returns_set(self, call: ast.Call, chain: list[str]) -> bool:
        callee = self.project.resolve_call(self.fn, call)
        if callee is not None:
            return _returns_set_annotation(callee.node)
        candidates = self.project.method_candidates(chain[-1])
        if not candidates:
            return False
        verdicts = {_returns_set_annotation(c.node) for c in candidates}
        return verdicts == {True}

    # -- taint ---------------------------------------------------------------

    def is_tainted(self, expr: ast.expr) -> bool:
        """Does iterating *expr* expose nondeterministic order?

        Dict views are *not* tainted: per the snapshot contract, dicts are
        insertion-ordered deterministic state (capture.py preserves their
        order); only hash-ordered sets and filesystem listings are sources.
        """
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted or expr.id in self.set_locals
        if self.is_set_expr(expr):
            return True
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain is None:
                return False
            if chain[-1] in FS_ORDER_SOURCES:
                return True
            if chain[-1] in CONSUMING_SANITIZERS and chain[-1] not in {
                "set", "frozenset"
            }:
                return False
            if chain[-1] in {"keys", "values", "items"}:
                return False  # insertion-order sanitizer model
        if isinstance(expr, ast.BinOp):
            return self.is_set_expr(expr)
        return False

    def note_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if self.is_set_expr(value):
            self.set_locals.add(target.id)
            self.tainted.discard(target.id)
        elif self.is_tainted(value):
            self.tainted.add(target.id)
        else:
            self.set_locals.discard(target.id)
            self.tainted.discard(target.id)


class Rep102OrderTaint:
    code = "REP102"
    title = "unordered iteration order must not flow into simulator state"
    explain = """\
Sets iterate in hash order, which varies with PYTHONHASHSEED and between
processes; `os.listdir`/`glob` iterate in filesystem order.  If that order
reaches simulator state — buffer contents, link transitions, RNG draws,
emitted events, dict insertion order — two runs of the same seed diverge.
This is exactly the bug class a sharded world's barrier-merge is exposed
to: each shard returns a set, and the merge loop's order becomes state.

The taint model: iterating a set-typed expression (inferred from literals,
annotations, `set()` constructors, set operators, class attribute types and
`-> set[...]` return annotations) or a filesystem listing is tainted.
`sorted(...)` (and the other order-consuming builtins: `min`, `max`, `sum`,
`len`, `any`, `all`) sanitizes.  Dict views are modeled as *insertion-order
deterministic* per the snapshot contract — the capture codec preserves dict
order, so it is state, not noise.  A tainted loop is reported when its body
writes attributes or subscripts, calls a project function whose summary
mutates state, draws from an RNG, emits/schedules events, or yields;
building an ordered sequence (`list(...)`, `tuple(...)`, a list
comprehension) or a dict from a tainted iteration is reported at the
materialization site.

Fix with `sorted(...)` at the iteration site (the repo's convention — see
`World.update`), or restructure so the loop only builds unordered results
(set/counter accumulation is safe and not flagged).
"""

    def run(self, project: Project, engine: SummaryEngine) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.iter_functions():
            findings.extend(self._check_function(project, engine, fn))
        return findings

    def _check_function(
        self, project: Project, engine: SummaryEngine, fn: FunctionInfo
    ) -> list[Finding]:
        env = _OrderEnv(project, fn)
        out: list[Finding] = []
        sanitizer_args: set[int] = set()
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] in CONSUMING_SANITIZERS:
                    for arg in node.args:
                        sanitizer_args.add(id(arg))
        for node in self._statements_in_order(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    env.note_assign(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                env.note_assign(node.target, node.value)
            elif isinstance(node, ast.For):
                if env.is_tainted(node.iter):
                    sink = self._find_sink(project, engine, env, node)
                    if sink is not None:
                        out.append(_finding(
                            self.code, fn.module, node,
                            f"iteration order of an unordered collection in "
                            f"{fn.qualname} flows into {sink} — wrap the "
                            "iterable in sorted(...) or accumulate into an "
                            "unordered result",
                        ))
        out.extend(self._materializations(fn, env, sanitizer_args))
        return out

    def _statements_in_order(self, node: FunctionNode) -> list[ast.stmt]:
        """All statements in source order, skipping nested defs."""
        out: list[ast.stmt] = []
        def visit(body: list[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                out.append(stmt)
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field_name, None)
                    if isinstance(inner, list):
                        visit(inner)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body)
        visit(list(node.body))
        out.sort(key=lambda s: (s.lineno, s.col_offset))
        return out

    # -- sink detection --------------------------------------------------------

    def _find_sink(
        self,
        project: Project,
        engine: SummaryEngine,
        env: _OrderEnv,
        loop: ast.For,
    ) -> str | None:
        """First order-sensitive effect in a tainted loop body, or None."""
        body_nodes: list[ast.AST] = []
        for stmt in loop.body + loop.orelse:
            body_nodes.extend(_walk_no_nested(stmt))
        for node in body_nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    sink = self._assignment_sink(env, target)
                    if sink is not None:
                        return sink
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                sink = self._assignment_sink(env, node.target)
                if sink is not None:
                    return sink
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                    return "augmented state update (order-dependent accumulation)"
                if isinstance(node.target, ast.Name) and not isinstance(
                    node.value, ast.Constant
                ):
                    return (
                        f"accumulation into `{node.target.id}` (float addition "
                        "is order-sensitive)"
                    )
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yielded output order"
            elif isinstance(node, ast.Call):
                sink = self._call_sink(project, engine, env, node)
                if sink is not None:
                    return sink
        return None

    def _assignment_sink(self, env: _OrderEnv, target: ast.expr) -> str | None:
        if isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            return f"attribute state `{'.'.join(chain or ['?'])}`"
        if isinstance(target, ast.Subscript):
            base = target.value
            if env.is_set_expr(base):
                return None  # cannot subscript a set; treat as unknown-safe
            chain = attr_chain(base)
            name = ".".join(chain) if chain else "container"
            return f"subscript store into `{name}` (insertion order becomes state)"
        return None

    def _call_sink(
        self,
        project: Project,
        engine: SummaryEngine,
        env: _OrderEnv,
        call: ast.Call,
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in SET_SAFE_MUTATORS and env.is_set_expr(func.value):
                return None
            if func.attr in DRAW_METHODS:
                menv = method_env(project, env.fn)
                prov = menv.receiver_provenance(func.value)
                chain = attr_chain(func.value)
                if prov != UNKNOWN or (chain and rng_like_name(chain[-1])):
                    return "RNG consumption (draw order becomes stream state)"
        chain = attr_chain(func)
        if chain is None:
            return None
        if chain[-1] in CONSUMING_SANITIZERS:
            return None
        if engine.call_mutates(env.fn, call):
            return f"state-mutating call `{'.'.join(chain)}(...)`"
        return None

    # -- ordered materializations ---------------------------------------------

    def _materializations(
        self, fn: FunctionInfo, env: _OrderEnv, sanitizer_args: set[int]
    ) -> list[Finding]:
        out: list[Finding] = []
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain
                    and chain[-1] in {"list", "tuple", "enumerate", "join"}
                    and node.args
                    and env.is_tainted(node.args[0])
                    and id(node) not in sanitizer_args
                ):
                    out.append(_finding(
                        self.code, fn.module, node,
                        f"`{chain[-1]}(...)` in {fn.qualname} materializes an "
                        "ordered sequence from an unordered iterable — sort "
                        "first (sorted(...)) so the order is reproducible",
                    ))
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if id(node) in sanitizer_args:
                    continue
                gen = node.generators[0]
                if env.is_tainted(gen.iter):
                    what = {
                        ast.ListComp: "a list",
                        ast.DictComp: "a dict (insertion order becomes state)",
                        ast.GeneratorExp: "an ordered stream",
                    }[type(node)]
                    out.append(_finding(
                        self.code, fn.module, node,
                        f"comprehension in {fn.qualname} builds {what} from an "
                        "unordered iteration — iterate sorted(...) instead",
                    ))
        return out


# ---------------------------------------------------------------------------
# REP103 — snapshot coverage drift
# ---------------------------------------------------------------------------

#: (class name, attribute) pairs that are deliberately NOT captured because
#: restore rebuilds them.  Every entry is part of the snapshot contract:
#: adding one requires explaining *how* restore reconstructs the value.
REBUILT_ON_RESTORE: dict[tuple[str, str], str] = {
    ("Simulator", "_running"): "loop-transient; always False between events",
    ("World", "positions"): "recomputed from mobility._pos by advance() on restore",
    ("EventQueue", "_heap"): "event queue is re-armed from recurring/transfer state",
    ("EventQueue", "_live"): "event queue is re-armed from recurring/transfer state",
    ("Event", "cancelled"): "events are not serialized; the queue is re-armed",
    ("PhaseProfiler", "_stack"): "empty between events (snapshots run between events)",
    ("Simulator", "queue"): "event queue is re-armed from recurring/transfer/generator cursors",
    ("DroppedListStore", "_own"): "alias of _records[own id]; captured through _records",
    ("SdsrpPolicy", "_n_nodes"): "re-derived from the buffer by attach() on rebuild",
    ("ListenerRegistry", "_listeners"): "subscriptions re-created by build_scenario wiring",
    ("FaultInjector", "_started"): "start() re-subscribes on restore; guard only blocks double-wiring",
    ("MessageBuffer", "_used"): "re-accumulated as restore re-adds the captured messages",
    ("MessageBuffer", "_pins"): "pins re-established when in-flight transfers re-arm",
    ("RandomPolicy", "_rng"): "stream re-bound by attach(); state travels with RngFactory state_dict",
    ("MessageFateReport", "fates"): "opt-in post-run report, never part of a snapshot-capable run",
    ("Node", "_world"): "re-bound via attach_world when the world is rebuilt",
    ("PeriodicSnapshotter", "latest"): "holds the snapshot payload itself; only _next_at is state",
    ("VectorWorld", "positions"): "recomputed from mobility._pos by advance() on restore (same as World)",
    ("VectorWorld", "_links_set"): "mirror of World.links; rebuilt by the links property setter on restore",
    ("VectorWorld", "_link_keys"): "int64 encoding of _links_set; lazily re-derived by _sync_keys()",
    ("VectorWorld", "_keys_dirty"): "lazy-sync flag for _link_keys; restore marks dirty and _sync_keys() rebuilds",
}


class Rep103SnapshotDrift:
    code = "REP103"
    title = "mutable simulator state must be captured by repro.snapshot"
    explain = """\
`repro.snapshot.capture.save` must read *every* mutable attribute of every
simulator-reachable class, or a snapshot/restore cycle silently resets the
missed field and the restored run diverges from the uninterrupted one —
usually long after the restore, where the chaos harness has to bisect it.

This rule diffs two sets computed statically:

* **mutable state**: attributes of classes in the simulator-state modules
  (engine, world, net, routing, policies, mobility, reports, obs, core,
  faults, sanitizer) that are assigned or mutated in place outside
  `__init__`/`__post_init__`;
* **captured fields**: attribute names read (transitively, through
  property accessors and helper methods like `Buffer.messages`) by the
  functions of `repro.snapshot.capture`.

Anything mutable-but-not-captured is reported at its first mutation site.
Attributes that restore legitimately *rebuilds* instead of deserializing
(the event queue, callback closures, derived position arrays) are listed in
`REBUILT_ON_RESTORE` with a justification — extend that table (or add an
inline `# reprolint: disable=REP103` at the mutation site) only when you
can explain how restore reconstructs the value byte-identically.
"""

    STATE_MODULE_PREFIXES = (
        "repro.engine", "repro.world", "repro.net", "repro.routing",
        "repro.policies", "repro.mobility", "repro.reports", "repro.obs",
        "repro.core", "repro.faults", "repro.analysis.sanitizer",
        "repro.snapshot.snapshotter", "repro.vector",
    )
    INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

    def run(self, project: Project, engine: SummaryEngine) -> list[Finding]:
        capture = None
        for module in project.modules.values():
            if module.name.endswith("snapshot.capture"):
                capture = module
                break
        if capture is None:
            return []
        covered = self._coverage(project, engine, capture)
        findings: list[Finding] = []
        for module in project.modules.values():
            if not module.name.startswith(self.STATE_MODULE_PREFIXES):
                continue
            for cls in module.classes.values():
                if self._exempt_class(cls):
                    continue
                findings.extend(self._check_class(project, cls, covered))
        return findings

    def _exempt_class(self, cls: ClassInfo) -> bool:
        if cls.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in cls.bases:
            if base.endswith(("Error", "Exception", "Warning", "Enum", "Protocol", "ABC")):
                return True
        return False

    def _coverage(
        self, project: Project, engine: SummaryEngine, capture: ModuleInfo
    ) -> set[str]:
        roots: list[FunctionInfo] = list(capture.functions.values())
        for cls in capture.classes.values():
            roots.extend(cls.methods.values())
        covered: set[str] = set()
        for fn in roots:
            covered |= engine.summary(fn).reads
        # Bare-name method calls in the capture module pull in the reads of
        # every project method with that name (e.g. `node.buffer.messages()`
        # covers Buffer._messages).
        called: set[str] = set()
        for fn in roots:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    called.add(node.func.attr)
        for name in called:
            for candidate in project.method_candidates(name):
                covered |= engine.summary(candidate).reads
        # Property expansion to fixpoint: reading `sim.now` covers Clock._now.
        for _ in range(4):
            grew = False
            for name in list(covered):
                for candidate in project.method_candidates(name):
                    if self._is_property(candidate):
                        reads = engine.summary(candidate).reads
                        if not reads <= covered:
                            covered |= reads
                            grew = True
            if not grew:
                break
        return covered

    def _is_property(self, fn: FunctionInfo) -> bool:
        for deco in fn.node.decorator_list:
            chain = attr_chain(deco)
            if chain and chain[-1] in {"property", "cached_property"}:
                return True
        return False

    def _check_class(
        self, project: Project, cls: ClassInfo, covered: set[str]
    ) -> list[Finding]:
        out: list[Finding] = []
        for attr, sites in sorted(cls.attr_sites.items()):
            if attr.startswith("__"):
                continue
            if attr in covered:
                continue
            if (cls.name, attr) in REBUILT_ON_RESTORE:
                continue
            mutable_sites = [
                s for s in sites if s.method not in self.INIT_METHODS
            ]
            if not mutable_sites:
                continue
            if self._only_callable_values(cls, attr):
                continue
            site = min(mutable_sites, key=lambda s: (s.line, s.col))
            node = _FakeNode(site.line, site.col)
            out.append(_finding(
                self.code, cls.module, node,
                f"mutable attribute {cls.name}.{attr} (written in "
                f"{site.method}) is never read by repro.snapshot.capture — "
                "snapshot/restore silently resets it; capture it or register "
                "it in REBUILT_ON_RESTORE with a rebuild justification",
                attribute=attr, cls=cls.qualname,
            ))
        return out

    def _only_callable_values(self, cls: ClassInfo, attr: str) -> bool:
        """Attr only ever holds lambdas/functions (callback wiring, never
        serialized per the capture contract)."""
        assigned: list[ast.expr] = []
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if attr_chain(target) == ["self", attr]:
                            assigned.append(node.value)
        return bool(assigned) and all(
            isinstance(v, ast.Lambda)
            or (isinstance(v, ast.Attribute) and v.attr.startswith("_on"))
            for v in assigned
        )


class _FakeNode(ast.AST):
    """Line/col carrier for findings anchored at recorded sites."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        super().__init__()
        self.lineno = lineno
        self.col_offset = col_offset


# ---------------------------------------------------------------------------
# REP104 — observer purity
# ---------------------------------------------------------------------------

#: Registration calls an observer may make on foreign objects during wiring.
REGISTRATION_CALLS = frozenset({
    "subscribe", "unsubscribe", "schedule_every", "schedule_at", "schedule_in",
    "register",
})


class Rep104ObserverPurity:
    code = "REP104"
    title = "repro.obs call graphs must be observation-only"
    explain = """\
Enabling an observer (trace ring, time-series collector, profiler) must not
change any simulation outcome — the determinism suite compares observed and
unobserved runs byte-for-byte, but only for the scenarios it runs.  This
rule proves the property statically for *all* code paths: a function in
`repro.obs` may write to `self`, to locals it created, and to parameters
annotated with an obs-defined type; it may call the simulator's
registration API (`subscribe`, `schedule_every`, ...) during wiring; and it
may call other obs/stdlib functions.  Everything else — assigning to a
foreign object's attributes, calling a mutator method (`append`, `update`,
...) on a non-obs receiver, or calling a project function whose summary
says it mutates state — is a purity violation.

If an observer legitimately needs a new foreign interaction, route it
through the listener registry (events are one-directional) rather than
suppressing: a suppressed write here turns the observation-only test into
a lie.
"""

    def run(self, project: Project, engine: SummaryEngine) -> list[Finding]:
        obs_classes = {
            cls.name
            for module in project.modules.values()
            if module.name.startswith("repro.obs")
            for cls in module.classes.values()
        }
        findings: list[Finding] = []
        for module in project.modules.values():
            if not module.name.startswith("repro.obs"):
                continue
            roots: list[FunctionInfo] = list(module.functions.values())
            for cls in module.classes.values():
                roots.extend(cls.methods.values())
            for fn in roots:
                findings.extend(
                    self._check_function(project, engine, fn, obs_classes)
                )
        return findings

    def _check_function(
        self,
        project: Project,
        engine: SummaryEngine,
        fn: FunctionInfo,
        obs_classes: set[str],
    ) -> list[Finding]:
        out: list[Finding] = []
        safe_roots = {"self"} | self._safe_params(fn, obs_classes)
        local_names = set(safe_roots)
        for node in self._ordered_nodes(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    out.extend(self._check_write(fn, target, local_names))
                    self._note_locals(target, local_names)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                out.extend(self._check_write(fn, node.target, local_names))
                self._note_locals(node.target, local_names)
            elif isinstance(node, ast.AugAssign):
                out.extend(self._check_write(fn, node.target, local_names))
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                self._note_locals(target, local_names)
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._note_locals(item.optional_vars, local_names)
            elif isinstance(node, ast.Call):
                out.extend(
                    self._check_call(project, engine, fn, node, local_names)
                )
        return out

    def _ordered_nodes(self, fn: FunctionInfo) -> list[ast.AST]:
        nodes = [n for n in _walk_no_nested(fn.node) if n is not fn.node]
        nodes.sort(key=lambda n: (
            getattr(n, "lineno", 0), getattr(n, "col_offset", 0)
        ))
        return nodes

    def _safe_params(self, fn: FunctionInfo, obs_classes: set[str]) -> set[str]:
        safe: set[str] = set()
        for name in fn.params:
            annotation = fn.param_annotation(name)
            if annotation is None:
                continue
            heads = {
                part.strip().split("[", 1)[0].split(".")[-1]
                for part in annotation.replace("Optional", "")
                .strip("[]").split("|")
            }
            if heads & obs_classes:
                safe.add(name)
        return safe

    def _note_locals(self, target: ast.expr, local_names: set[str]) -> None:
        if isinstance(target, ast.Name):
            local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_locals(elt, local_names)

    def _root(self, expr: ast.expr) -> str | None:
        chain = attr_chain(expr)
        return chain[0] if chain else None

    def _check_write(
        self, fn: FunctionInfo, target: ast.expr, local_names: set[str]
    ) -> list[Finding]:
        if isinstance(target, ast.Name):
            return []
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[Finding] = []
            for elt in target.elts:
                out.extend(self._check_write(fn, elt, local_names))
            return out
        root = self._root(target)
        if root is None or root in local_names:
            return []
        chain = attr_chain(target) or [root]
        return [_finding(
            self.code, fn.module, target,
            f"observer {fn.qualname} writes to foreign state "
            f"`{'.'.join(chain)}` — observers may only mutate themselves "
            "and their own locals",
        )]

    def _check_call(
        self,
        project: Project,
        engine: SummaryEngine,
        fn: FunctionInfo,
        call: ast.Call,
        local_names: set[str],
    ) -> list[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in REGISTRATION_CALLS:
                return []
            if func.attr in MUTATOR_METHODS:
                root = self._root(func.value)
                if root is not None and root not in local_names:
                    chain = attr_chain(func) or [func.attr]
                    return [_finding(
                        self.code, fn.module, call,
                        f"observer {fn.qualname} calls mutator "
                        f"`{'.'.join(chain)}(...)` on a foreign object — "
                        "observers must not mutate non-obs state",
                    )]
                return []
        callee = project.resolve_call(fn, call)
        if (
            callee is not None
            and not callee.module.name.startswith("repro.obs")
            and engine.summary(callee).mutates
        ):
            return [_finding(
                self.code, fn.module, call,
                f"observer {fn.qualname} calls {callee.qualname}, whose "
                "summary mutates simulation state — observers must stay "
                "read-only",
            )]
        return []


ALL_DEEP_RULES = (
    Rep101RngProvenance,
    Rep102OrderTaint,
    Rep103SnapshotDrift,
    Rep104ObserverPurity,
)
