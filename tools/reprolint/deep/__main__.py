"""``python -m reprolint.deep`` entry point."""

import os
import sys

from reprolint.deep.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; exit quietly instead of
        # tracebacking.  Re-point stdout at devnull so the interpreter's
        # shutdown flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
