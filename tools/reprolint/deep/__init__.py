"""reprolint-deep: whole-program determinism dataflow analysis.

Four cross-module rule families over a module/symbol graph with call
summaries (see ``docs/static_analysis.md``):

========  ==========================================================
REP101    random draws must trace to a named ``RngFactory`` stream
REP102    unordered iteration order must not reach simulator state
REP103    mutable simulator state must be captured by the snapshot codec
REP104    ``repro.obs`` call graphs must be observation-only
========  ==========================================================

Run with ``python -m reprolint.deep`` (``make lint-deep``).
"""

from reprolint.deep.cli import AnalysisResult, analyze, main
from reprolint.deep.findings import Finding
from reprolint.deep.project import Project, load_project
from reprolint.deep.rules import ALL_DEEP_RULES

__all__ = [
    "ALL_DEEP_RULES",
    "AnalysisResult",
    "Finding",
    "Project",
    "analyze",
    "load_project",
    "main",
]
