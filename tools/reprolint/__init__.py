"""reprolint — repo-specific static analysis for the SDSRP reproduction.

The simulator's headline guarantee is *byte-determinism*: the same scenario
seed must produce bit-identical runs, serial or parallel, so every figure in
the paper reproduction is an auditable function of (code, seed).  That
guarantee — and the buffer/copy-count accounting the paper's Eq. 10 priority
math rests on — rots silently: a stray ``np.random`` call or a wall-clock
read changes results without failing a single behavioural test.

``reprolint`` encodes those repo rules as AST checks (stdlib :mod:`ast`
only), one code per rule:

========  ==============================================================
REP001    no global/ambient RNG outside ``repro/rng.py``
REP002    no wall-clock reads inside ``src/repro`` simulation code
REP003    no ``==``/``!=`` on sim-time floats (use ``repro.units.time_eq``)
REP004    no mutable default arguments
REP005    policies registered + drop reasons use declared constants
REP006    no bare/silently-swallowed exceptions in engine/net/parallel
REP007    no references to the deprecated ``BufferError_`` alias
========  ==============================================================

Run it from the repo root::

    PYTHONPATH=tools python -m reprolint src tests benchmarks

See ``docs/static_analysis.md`` for each rule's rationale and example fix.
"""

from __future__ import annotations

from reprolint.runner import Violation, lint_paths, lint_source, main
from reprolint.rules import ALL_RULES

__version__ = "1.0.0"

__all__ = ["ALL_RULES", "Violation", "lint_paths", "lint_source", "main"]
