"""The REP rule set.

Each rule is a small AST check with a stable code (``REP001``…), a one-line
title, and a docstring explaining *why* the pattern is banned in this repo.
Rules receive a :class:`FileContext` (parsed tree + normalized path) and
yield :class:`Violation` records; :class:`ProjectRule` subclasses additionally
see every file before reporting (cross-file checks such as the policy
registry audit).

Path scoping conventions (all paths are repo-root-relative, POSIX slashes):

* ``src/…``            — first-party library code (strictest rules)
* ``tests/…``/``benchmarks/…`` — test code (determinism rules still apply,
  but explicit seeded ``np.random.default_rng(seed)`` construction is fine)
* any path containing a ``lint_fixtures`` directory is skipped entirely —
  that is where reprolint's own rule fixtures (deliberate violations) live.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Violation:
    """One rule hit, formatted ``path:line:col CODE message``."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (used by the result cache)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Violation":
        return cls(
            code=str(data["code"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
        )


@dataclass
class FileContext:
    """A parsed file plus the path facts rules scope on.

    The tree is walked exactly **once** per file: the first call to
    :meth:`nodes` builds a node-type index that every rule then shares,
    instead of each rule re-running ``ast.walk`` over the whole module
    (the pre-index runner spent most of its time in those redundant walks).
    """

    path: str  # repo-root-relative, POSIX separators
    tree: ast.Module
    _index: dict[type[ast.AST], list[ast.AST]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def in_src(self) -> bool:
        return self.path.startswith("src/")

    @property
    def in_repro(self) -> bool:
        return self.path.startswith("src/repro/")

    def in_dirs(self, *dirs: str) -> bool:
        return any(self.path.startswith(f"src/repro/{d}/") for d in dirs)

    def nodes(self, *types: type[ast.AST]) -> Iterator[ast.AST]:
        """All nodes of the given AST types, in source (line) order."""
        if not self._index:
            for node in ast.walk(self.tree):
                self._index.setdefault(type(node), []).append(node)
        if len(types) == 1:
            yield from self._index.get(types[0], [])
            return
        merged: list[ast.AST] = []
        for t in types:
            merged.extend(self._index.get(t, []))
        merged.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
        yield from merged


class Rule:
    """Base per-file rule."""

    code = "REP000"
    title = "abstract"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole file set before it can report.

    Split into two halves so the result cache can replay a file's
    contribution without re-parsing it:

    * :meth:`collect_facts` extracts a **JSON-safe** per-file fact dict;
    * :meth:`absorb` merges one fact dict (fresh or cached) into the
      rule's project-wide state, which :meth:`finalize` reports from.
    """

    def collect_facts(self, ctx: FileContext) -> dict[str, Any]:
        raise NotImplementedError

    def absorb(self, facts: dict[str, Any]) -> None:
        raise NotImplementedError

    def finalize(self) -> Iterator[Violation]:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        self.absorb(self.collect_facts(ctx))
        return iter(())


# -- helpers -----------------------------------------------------------------


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


_NUMPY_NAMES = {"np", "numpy"}


def _is_np_random(chain: list[str]) -> bool:
    """True for ``np.random.X`` / ``numpy.random.X`` chains."""
    return len(chain) >= 3 and chain[0] in _NUMPY_NAMES and chain[1] == "random"


# -- REP001 ------------------------------------------------------------------


class Rep001AmbientRng(Rule):
    """All randomness must flow through the seeded stream registry.

    Bit-reproducibility is the repo's core guarantee: the same scenario seed
    yields identical runs, serial or parallel.  Global RNG state (stdlib
    ``random``, ``np.random.seed``, draws from ``np.random``'s ambient
    generator) breaks that silently — results depend on import order, other
    components' draws, or nothing at all.  Library code must take an
    ``np.random.Generator`` argument or request a named stream from
    :class:`repro.rng.RngFactory`; only ``repro/rng.py`` may construct
    generators.  Tests may build explicit seeded generators
    (``np.random.default_rng(seed)``) to pass into components.
    """

    code = "REP001"
    title = "ambient/global RNG outside repro/rng.py"

    #: np.random attributes that are types/seeding machinery, not draws.
    _NON_DRAWS = {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "RandomState",
        "default_rng",
    }

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        is_rng_module = ctx.path == "src/repro/rng.py"
        for node in ctx.nodes(ast.Import, ast.ImportFrom, ast.Call):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            ctx, node,
                            "stdlib `random` is ambient global state; use a "
                            "seeded np.random.Generator from repro.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        ctx, node,
                        "stdlib `random` is ambient global state; use a "
                        "seeded np.random.Generator from repro.rng",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if not _is_np_random(chain):
                    continue
                leaf = chain[2]
                if leaf == "seed":
                    yield self.violation(
                        ctx, node,
                        "np.random.seed mutates global RNG state; seed a "
                        "Generator via repro.rng instead",
                    )
                elif leaf == "default_rng":
                    if ctx.in_src and not is_rng_module:
                        yield self.violation(
                            ctx, node,
                            "np.random.default_rng outside repro/rng.py "
                            "bypasses the seeded stream registry; accept a "
                            "Generator argument or use RngFactory.stream()",
                        )
                elif leaf not in self._NON_DRAWS:
                    yield self.violation(
                        ctx, node,
                        f"np.random.{leaf}() draws from the ambient global "
                        "generator; draw from a seeded Generator instead",
                    )


# -- REP002 ------------------------------------------------------------------


class Rep002WallClock(Rule):
    """Simulation code must read :attr:`Simulator.now`, never the wall clock.

    A wall-clock read inside ``src/repro`` makes behaviour depend on host
    speed and run timing — the same seed would produce different traces on
    different machines, invalidating every reproduced figure.  Banned calls:
    ``time.time``/``time.time_ns``, ``time.monotonic``/``time.monotonic_ns``,
    ``datetime.now``/``utcnow``/``today``.  (``time.perf_counter`` is
    allowed: it feeds the *diagnostic* ``wall_seconds`` field of run
    summaries and never influences simulation state.)
    """

    code = "REP002"
    title = "wall-clock read in simulation code"

    _TIME_FNS = {"time", "time_ns", "monotonic", "monotonic_ns"}
    _DATETIME_FNS = {"now", "utcnow", "today"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro:
            return
        for node in ctx.nodes(ast.ImportFrom, ast.Call):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FNS:
                        yield self.violation(
                            ctx, node,
                            f"importing time.{alias.name} into sim code; "
                            "use Simulator.now for simulated time",
                        )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) < 2:
                    continue
                if chain[0] == "time" and chain[1] in self._TIME_FNS:
                    yield self.violation(
                        ctx, node,
                        f"time.{chain[1]}() is a wall-clock read; use "
                        "Simulator.now for simulated time",
                    )
                elif chain[-1] in self._DATETIME_FNS and "datetime" in chain[:-1]:
                    yield self.violation(
                        ctx, node,
                        f"datetime {chain[-1]}() is a wall-clock read; use "
                        "Simulator.now for simulated time",
                    )


# -- REP003 ------------------------------------------------------------------


class Rep003TimeFloatEquality(Rule):
    """Sim-time floats accumulate error; exact ``==`` comparisons are traps.

    Simulation timestamps are sums of float intervals (ticks, transfer
    durations, exponential gaps).  ``a == b`` on two times that are
    *logically* simultaneous fails once either went through different
    arithmetic, and such bugs appear only at specific seeds.  Compare with
    an explicit tolerance via :func:`repro.units.time_eq`, or restructure to
    use ordering (``<=``) which is robust.  The rule flags ``==``/``!=``
    where either operand is a recognizably time-valued expression
    (``now``, ``.eta``, ``.created_at``, ``.started_at``, ``.end_time``,
    ``.sim_time``, ``.expires_at()``, ``.remaining_ttl()``, ``.elapsed()``).
    """

    code = "REP003"
    title = "==/!= on sim-time floats"

    _TIME_NAMES = {
        "now", "eta", "created_at", "started_at", "end_time", "sim_time",
    }
    _TIME_CALLS = {"expires_at", "remaining_ttl", "elapsed"}

    def _is_time_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._TIME_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._TIME_NAMES
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return bool(chain) and chain[-1] in self._TIME_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src:
            return
        for node in ctx.nodes(ast.Compare):
            assert isinstance(node, ast.Compare)
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                if any(
                    isinstance(o, ast.Constant) and o.value is None for o in pair
                ):
                    continue  # `x == None` is a different mistake
                if any(self._is_time_expr(o) for o in pair):
                    yield self.violation(
                        ctx, node,
                        "exact ==/!= on a sim-time float; use "
                        "repro.units.time_eq(a, b) or an ordering comparison",
                    )
                    break


# -- REP004 ------------------------------------------------------------------


class Rep004MutableDefault(Rule):
    """Mutable default arguments are shared across calls.

    A ``def f(xs=[])`` default is evaluated once at function definition and
    shared by every call — state leaks between invocations (and between
    *nodes*, when the function is a policy method), which is both a classic
    bug and a determinism hazard.  Use ``None`` plus an in-body default, or
    ``dataclasses.field(default_factory=...)``.
    """

    code = "REP004"
    title = "mutable default argument"

    def _is_mutable(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"}
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx, default,
                        f"mutable default argument in {node.name}(); use "
                        "None and assign inside the body",
                    )


# -- REP005 ------------------------------------------------------------------


class Rep005PolicyRegistry(ProjectRule):
    """Concrete buffer policies must be registered; drops must use constants.

    The experiment harness, CLI and sweep engine reach policies exclusively
    through :mod:`repro.policies.registry` — an unregistered
    :class:`BufferPolicy` subclass is dead code that silently falls out of
    every figure.  Likewise, drop-reason strings feed
    ``RunSummary.drops`` and SDSRP's dropped-list gossip; a typo'd literal
    (``"overflw"``) would split the counters without any error, so drop
    sites must reference the ``DROP_*`` constants declared in
    :mod:`repro.net.outcomes`.
    """

    code = "REP005"
    title = "unregistered policy / literal drop reason"

    #: Root classes of the policy hierarchy (abstract, never registered).
    _ROOTS = {"BufferPolicy", "StaticRankPolicy"}
    _DROP_CALLS = {"drop_message": 1, "on_message_dropped": 2}

    def __init__(self) -> None:
        #: class name -> (base names, is_abstract, path, line)
        self._classes: dict[str, tuple[list[str], bool, str, int]] = {}
        self._registered: set[str] = set()
        self._literal_hits: list[Violation] = []

    def collect_facts(self, ctx: FileContext) -> dict[str, Any]:
        classes: dict[str, list[Any]] = {}
        registered: list[str] = []
        literals: list[dict[str, Any]] = []
        if ctx.in_src:
            for node in ctx.nodes(ast.ClassDef):
                assert isinstance(node, ast.ClassDef)
                bases = [
                    _attr_chain(b)[-1] if _attr_chain(b) else ""
                    for b in node.bases
                ]
                classes[node.name] = [
                    bases, self._is_abstract(node, bases), ctx.path, node.lineno
                ]
            for node in ctx.nodes(ast.Call):
                assert isinstance(node, ast.Call)
                self._collect_registration(node, registered)
                literal = self._drop_literal(ctx, node)
                if literal is not None:
                    literals.append(literal.to_dict())
        return {"classes": classes, "registered": registered, "literals": literals}

    def absorb(self, facts: dict[str, Any]) -> None:
        for name, entry in facts["classes"].items():
            bases, is_abstract, path, line = entry
            self._classes[name] = (
                list(bases), bool(is_abstract), str(path), int(line)
            )
        self._registered.update(facts["registered"])
        self._literal_hits.extend(
            Violation.from_dict(d) for d in facts["literals"]
        )

    @staticmethod
    def _is_abstract(node: ast.ClassDef, bases: list[str]) -> bool:
        if "ABC" in bases:
            return True
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    if _attr_chain(deco)[-1:] == ["abstractmethod"]:
                        return True
        return False

    def _collect_registration(
        self, node: ast.Call, registered: list[str]
    ) -> None:
        chain = _attr_chain(node.func)
        if chain[-1:] == ["register_policy"] and len(node.args) >= 2:
            factory = _attr_chain(node.args[1])
            if factory:
                registered.append(factory[-1])
        elif chain[-1:] == ["update"] and len(node.args) == 1:
            # `_REGISTRY.update({...: Factory})` in policies/registry.py.
            if not (len(chain) >= 2 and "REGISTRY" in chain[-2].upper()):
                return
            arg = node.args[0]
            if isinstance(arg, ast.Dict):
                for value in arg.values:
                    factory = _attr_chain(value)
                    if factory:
                        registered.append(factory[-1])

    def _drop_literal(
        self, ctx: FileContext, node: ast.Call
    ) -> Violation | None:
        chain = _attr_chain(node.func)
        if not chain:
            return None
        reason: ast.expr | None = None
        if chain[-1] in self._DROP_CALLS:
            idx = self._DROP_CALLS[chain[-1]]
            if len(node.args) > idx:
                reason = node.args[idx]
        elif chain[-1] == "emit" and node.args:
            topic = node.args[0]
            if (
                isinstance(topic, ast.Constant)
                and topic.value == "message.dropped"
                and len(node.args) >= 4
            ):
                reason = node.args[3]
        for kw in node.keywords:
            if kw.arg == "reason":
                reason = kw.value
        if isinstance(reason, ast.Constant) and isinstance(reason.value, str):
            return Violation(
                code=self.code,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"drop reason {reason.value!r} is a string literal; "
                    "use a DROP_* constant from repro.net.outcomes"
                ),
            )
        return None

    def finalize(self) -> Iterator[Violation]:
        yield from self._literal_hits
        policy_classes = set(self._ROOTS)
        changed = True
        while changed:
            changed = False
            for name, (bases, _, _, _) in self._classes.items():
                if name not in policy_classes and policy_classes & set(bases):
                    policy_classes.add(name)
                    changed = True
        for name in sorted(policy_classes - self._ROOTS):
            bases, is_abstract, path, line = self._classes[name]
            if is_abstract or name in self._registered:
                continue
            yield Violation(
                code=self.code,
                path=path,
                line=line,
                col=0,
                message=(
                    f"BufferPolicy subclass {name} is not registered in "
                    "policies/registry.py (register_policy or _REGISTRY)"
                ),
            )


# -- REP006 ------------------------------------------------------------------


class Rep006SwallowedException(Rule):
    """Engine/net/parallel code must fail loudly.

    A swallowed exception in the event loop, the transfer manager or the
    worker pool does not crash the run — it silently skews delivery ratios
    and copy counts, which is the worst possible failure mode for a
    reproduction.  Bare ``except:`` additionally catches
    ``KeyboardInterrupt``/``SystemExit`` and can hang sweeps.  Catch the
    narrowest type and either handle, re-raise, or record the failure
    (``FailedRun``).
    """

    code = "REP006"
    title = "bare/silently-swallowed exception"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_dirs("engine", "net", "parallel"):
            return
        for node in ctx.nodes(ast.ExceptHandler):
            assert isinstance(node, ast.ExceptHandler)
            if node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare `except:` (catches KeyboardInterrupt/SystemExit); "
                    "name the exception type",
                )
            elif all(self._is_noop(stmt) for stmt in node.body):
                yield self.violation(
                    ctx, node,
                    "exception silently swallowed (handler body is only "
                    "pass/...); handle, re-raise, or record the failure",
                )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )


# -- REP007 ------------------------------------------------------------------


class Rep007DeprecatedAlias(Rule):
    """The ``BufferError_`` alias is deprecated — use ``ReproBufferError``.

    The old trailing-underscore name confusingly shadowed the builtin
    :class:`BufferError`; it now lives behind a module ``__getattr__`` that
    emits :class:`DeprecationWarning` for external users.  First-party code
    must not reference it at all (tests exercising the deprecation path use
    ``getattr`` with a string, which this rule deliberately cannot see).
    """

    code = "REP007"
    title = "reference to deprecated BufferError_ alias"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.nodes(ast.Name, ast.Attribute, ast.ImportFrom):
            name: str | None = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "BufferError_":
                        name = alias.name
                        break
            if name == "BufferError_":
                yield self.violation(
                    ctx, node,
                    "BufferError_ is deprecated; use ReproBufferError",
                )


# -- REP008 ------------------------------------------------------------------


class Rep008PickledState(Rule):
    """Simulator state must be snapshotted via ``repro.snapshot``, not pickled.

    ``pickle``/``marshal`` payloads are not a stable format: they embed class
    import paths and memory layout, break across refactors and Python
    versions, silently capture unpicklable members as garbage, and carry no
    schema version or checksum — the opposite of what a reproducible
    checkpoint needs (and ``pickle.load`` on an untrusted file executes
    arbitrary code).  The sanctioned path is :mod:`repro.snapshot`, which
    serializes state to versioned, checksummed, JSON-safe structures;
    only that package may choose its own encoding.
    """

    code = "REP008"
    title = "pickle/marshal of simulator state outside repro.snapshot"

    _BANNED = {"pickle", "cPickle", "marshal"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src or ctx.path.startswith("src/repro/snapshot/"):
            return
        for node in ctx.nodes(ast.Import, ast.ImportFrom, ast.Call):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in self._BANNED:
                        yield self.violation(
                            ctx, node,
                            f"`import {alias.name}` in simulation code; "
                            "serialize state via repro.snapshot, not "
                            f"{root}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in self._BANNED:
                    yield self.violation(
                        ctx, node,
                        f"`from {node.module} import ...` in simulation "
                        "code; serialize state via repro.snapshot, not "
                        f"{root}",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) >= 2 and chain[0] in self._BANNED:
                    yield self.violation(
                        ctx, node,
                        f"{chain[0]}.{chain[-1]}() serializes by memory "
                        "layout, not schema; use repro.snapshot "
                        "save/restore instead",
                    )


# -- REP009 ------------------------------------------------------------------


class Rep009SwallowedInvariant(Rule):
    """Invariant violations must propagate to the oracles.

    The runtime sanitizer's :class:`repro.errors.InvariantViolation` is the
    chaos harness's primary signal: a handler that catches it (directly, or
    hidden inside ``except Exception`` / a ``ReproError`` superclass / a
    bare ``except``) and does not re-raise the *same* exception converts a
    detected simulator bug into a silently-wrong run — the exact failure
    mode the oracle stack exists to prevent.  Only the designated failure
    boundaries may absorb broad exceptions: the chaos runner (it *is* the
    oracle), the sweep engine's crash-safe paths (failures become
    ``FailedRun`` records) and the worker pool.  Everywhere else in
    ``src/repro``, either catch something narrower than
    ``InvariantViolation`` or re-raise it unchanged (bare ``raise`` or
    ``raise <bound name>``; wrapping it in another exception type hides the
    invariant from the oracles and is equally flagged).
    """

    code = "REP009"
    title = "handler swallows or re-wraps InvariantViolation"

    #: Exception names that catch InvariantViolation (itself or a
    #: superclass, including the builtins).
    _BROAD = {
        "InvariantViolation", "SimulationError", "ReproError",
        "Exception", "BaseException",
    }
    #: Failure boundaries allowed to absorb broad exceptions (they turn
    #: them into oracle verdicts / FailedRun records by design).
    _ALLOWED_PREFIXES = ("src/repro/chaos/", "src/repro/service/")
    _ALLOWED_FILES = {
        "src/repro/experiments/runner.py",
        "src/repro/experiments/sweep.py",
        "src/repro/parallel/pool.py",
    }

    def _catches_broadly(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            chain = _attr_chain(t)
            if chain and chain[-1] in self._BROAD:
                return True
        return False

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(handler):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                return True  # bare `raise`
            if (
                bound is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == bound
            ):
                return True  # `raise exc` unchanged
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro:
            return
        if ctx.path in self._ALLOWED_FILES or ctx.path.startswith(
            self._ALLOWED_PREFIXES
        ):
            return
        for node in ctx.nodes(ast.ExceptHandler):
            assert isinstance(node, ast.ExceptHandler)
            if self._catches_broadly(node) and not self._reraises(node):
                caught = (
                    "bare except"
                    if node.type is None
                    else ast.unparse(node.type)
                )
                yield self.violation(
                    ctx, node,
                    f"`except {caught}` swallows InvariantViolation; "
                    "re-raise it unchanged or catch a narrower type "
                    "(violations must reach the chaos oracles)",
                )


# -- REP010 ------------------------------------------------------------------


class Rep010AmbientSleep(Rule):
    """Library code must not block on the wall clock.

    An ambient ``time.sleep`` inside ``src/repro`` makes behaviour (and
    test wall-time) depend on host speed and hides a missing abstraction:
    simulation code advances via :attr:`Simulator.now`, and anything that
    genuinely needs to pace itself against real time must take an
    injectable ``sleep`` callable so tests and chaos campaigns can run it
    on a fake clock.  Only the two sanctioned pacing sites may call it:
    the sweep engine's retry backoff (``experiments/sweep.py``) and the
    scenario service's drain loop (``src/repro/service/``) — both of which
    expose the delay schedule / sleep hook for deterministic testing.
    Flagged: ``time.sleep(...)`` calls and ``from time import sleep``.
    """

    code = "REP010"
    title = "ambient time.sleep outside the sanctioned pacing sites"

    _ALLOWED_PREFIXES = ("src/repro/service/",)
    _ALLOWED_FILES = {"src/repro/experiments/sweep.py"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro:
            return
        if ctx.path in self._ALLOWED_FILES or ctx.path.startswith(
            self._ALLOWED_PREFIXES
        ):
            return
        for node in ctx.nodes(ast.ImportFrom, ast.Call):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        yield self.violation(
                            ctx, node,
                            "`from time import sleep` in library code; "
                            "accept an injectable sleep callable (see "
                            "repro.service) or restructure to event-driven "
                            "waiting",
                        )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain[-2:] == ["time", "sleep"]:
                    yield self.violation(
                        ctx, node,
                        "time.sleep() blocks on the wall clock in library "
                        "code; accept an injectable sleep callable (see "
                        "repro.service) or restructure to event-driven "
                        "waiting",
                    )


#: Rule classes in code order; the runner instantiates fresh per invocation.
ALL_RULES: tuple[type[Rule], ...] = (
    Rep001AmbientRng,
    Rep002WallClock,
    Rep003TimeFloatEquality,
    Rep004MutableDefault,
    Rep005PolicyRegistry,
    Rep006SwallowedException,
    Rep007DeprecatedAlias,
    Rep008PickledState,
    Rep009SwallowedInvariant,
    Rep010AmbientSleep,
)
