"""Analytic backend benchmarks: query latency at scale and honest speedup.

Two kinds of numbers, recorded into ``bench_results.json``:

* **query latency** — wall time of one full analytic evaluation
  (meeting rate, delay-model build including the blocking fixed point,
  RunSummary rendering) at fleet sizes no discrete simulator could touch:
  1 k, 100 k and 1 M nodes.  The spray chain is truncated at 512 states
  and propagated by matrix exponential, so cost is *flat* in N — the
  1 M-node query carries a hard <50 ms gate (ISSUE 9 acceptance).
* **sim-vs-analytic speedup** — the same 20-node Table-II scenario on the
  scalar simulator and on the analytic backend.  The ratio is what a
  parameter sweep saves per grid point by switching engines; it divides
  two numbers from the same machine and run, so it is hardware-portable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import best_of, run_once
from repro.analytic.runner import run_analytic
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig

#: Hard latency gate for the largest fleet (ISSUE 9 acceptance criterion).
MAX_QUERY_SECONDS_1M = 0.050

_measured: dict[str, float] = {}


def analytic_config(n_nodes: int, backend: str = "analytic") -> ScenarioConfig:
    """Table-II-flavoured RWP spray scenario at density ~5 nodes/km²."""
    side = 350.0 * float(n_nodes) ** 0.5
    return ScenarioConfig(
        name=f"bench-analytic-{n_nodes}",
        n_nodes=n_nodes,
        sim_time=6000.0,
        mobility="rwp",
        area=(side, side),
        speed_range=(2.0, 3.0),
        pause_range=(0.0, 10.0),
        radio_range=100.0,
        buffer_bytes=40 * 10_000,
        message_size=10_000,
        interval_range=(50.0, 70.0),
        ttl=3000.0,
        initial_copies=16,
        router="snw",
        policy="fifo",
        engine_backend=backend,
        seed=1,
    )


@pytest.mark.benchmark(group="analytic-query")
@pytest.mark.parametrize("n_nodes", [1_000, 100_000, 1_000_000])
def test_query_latency(benchmark, record_figure, n_nodes):
    """One full analytic evaluation; flat in fleet size by construction."""
    config = analytic_config(n_nodes)

    def query():
        return run_analytic(config).summary()

    summary = run_once(benchmark, query)
    assert 0.0 < summary.delivery_ratio <= 1.0
    seconds = best_of(query)
    _measured[f"query_seconds_n{n_nodes}"] = seconds
    if n_nodes == 1_000_000:
        assert seconds < MAX_QUERY_SECONDS_1M, (
            f"1M-node analytic query took {seconds * 1e3:.1f} ms "
            f"(gate: {MAX_QUERY_SECONDS_1M * 1e3:.0f} ms)"
        )
    record_figure(
        "analytic_query_latency",
        {
            "figure": "analytic-query-latency",
            "x_label": "fleet size (nodes)",
            "gate_seconds_1M": MAX_QUERY_SECONDS_1M,
            "measurements": dict(_measured),
        },
    )


@pytest.mark.benchmark(group="analytic-speedup")
def test_sim_vs_analytic_speedup(benchmark, record_figure):
    """Scalar simulator vs analytic expectation on the same 20-node case."""
    sim_config = analytic_config(20, backend="scalar")
    ana_config = analytic_config(20)

    sim_seconds = best_of(lambda: run_scenario(sim_config), repeats=2)
    ana_seconds = run_once(benchmark, lambda: best_of(
        lambda: run_scenario(ana_config)
    ))
    speedup = sim_seconds / ana_seconds
    # The analytic query must beat the discrete run by a wide margin —
    # that headroom is the whole point of the surrogate.
    assert speedup > 10.0
    record_figure(
        "analytic_speedup",
        {
            "figure": "analytic-vs-scalar-speedup",
            "scenario": "table2-rwp-20n-snw",
            "scalar_seconds": sim_seconds,
            "analytic_seconds": ana_seconds,
            "speedup": speedup,
        },
    )
