"""Fig. 3: intermeeting-time distributions fit an exponential.

Regenerates the paper's distribution check for both scenarios: run mobility
without traffic, collect pair intermeeting samples, fit by MLE, and verify
the fit is close in Kolmogorov-Smirnov distance (the paper's claim is
"approximately follow an exponential distribution", not an exact fit —
rejecting H0 at huge sample sizes is expected; the KS *statistic* is the
meaningful closeness measure).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig3_intermeeting

#: Max acceptable KS distance for "approximately exponential".
KS_BOUND = 0.25


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("scenario", ["rwp", "epfl"])
def test_fig3_distribution(benchmark, record_figure, scenario):
    fit, samples = run_once(
        benchmark, lambda: fig3_intermeeting(scenario=scenario, seed=4)
    )
    print(
        f"\nfig3 ({scenario}): n={fit.n_samples}  E(I)={fit.mean:.0f}s  "
        f"lambda={fit.rate:.3e}/s  KS D={fit.ks_statistic:.3f} "
        f"(p={fit.ks_pvalue:.3g})"
    )
    record_figure(
        f"fig3_{scenario}",
        {
            "n_samples": fit.n_samples,
            "mean_intermeeting_s": fit.mean,
            "lambda_per_s": fit.rate,
            "ks_statistic": fit.ks_statistic,
            "ks_pvalue": fit.ks_pvalue,
        },
    )
    assert fit.n_samples > 50
    assert fit.ks_statistic < KS_BOUND
    assert samples.min() > 0
