"""Vector engine benchmarks: kernel speedups, throughput, regression gate.

Three kinds of numbers, recorded into ``bench_results.json`` (see
docs/vectorization.md for what each one honestly measures):

* **kernel speedups** — the NumPy contact and priority kernels against the
  pure-Python per-pair/per-message reference loops that double as the
  oracles in ``tests/vector/test_kernels.py``.  This is where
  vectorization pays by an order of magnitude.
* **end-to-end throughput** — ``ticks_per_sec`` for the same scenario on
  both engine backends.  Whole runs are routing/transfer bound (Amdahl),
  so the honest end-to-end ratio is modest; it is recorded, not inflated.
* **the regression gate** — measured *speedup ratios* are compared against
  ``benchmarks/results/vector_baseline.json``.  Ratios divide two numbers
  from the same machine and run, so the gate is hardware-independent; a
  ratio more than 20% below its committed baseline fails the suite.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import best_of, run_once
from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.runner import build_scenario
from repro.vector.kernels import contact_keys_matrix, sdsrp_priority_batch
from repro.core.priority import priority_closed_form

BASELINE_PATH = Path(__file__).parent / "results" / "vector_baseline.json"

#: Gate threshold: a measured speedup ratio may degrade to this fraction of
#: its committed baseline before the benchmark fails.
ALLOWED_REGRESSION = 0.8

_measured: dict[str, float] = {}


def reference_contact_loop(positions: np.ndarray, radius: float) -> list[int]:
    """The pure-Python O(n^2) oracle from tests/vector/test_kernels.py."""
    n = positions.shape[0]
    keys = []
    for i in range(n):
        for j in range(i + 1, n):
            diff = positions[i] - positions[j]
            if float(diff @ diff) <= radius * radius:
                keys.append(i * n + j)
    return keys


@pytest.mark.benchmark(group="vector-kernels")
def test_contact_kernel_speedup(benchmark, record_figure):
    """Dense contact kernel vs the per-pair Python loop at n=500."""
    rng = np.random.default_rng(0)
    positions = rng.uniform(0.0, 5000.0, size=(500, 2))
    radius = 100.0
    want = reference_contact_loop(positions, radius)
    got = run_once(benchmark, lambda: contact_keys_matrix(positions, radius))
    assert got.tolist() == want, "kernel and reference disagree"

    python_s = best_of(lambda: reference_contact_loop(positions, radius))
    numpy_s = best_of(lambda: contact_keys_matrix(positions, radius))
    speedup = python_s / numpy_s
    _measured["contact_kernel_speedup"] = speedup
    record_figure("vector_contact_kernel", {
        "n": 500,
        "python_reference_s": python_s,
        "vector_kernel_s": numpy_s,
        "speedup": speedup,
    })
    print(f"\ncontact kernel: {speedup:.1f}x over the Python loop")
    assert speedup >= 5.0, (
        f"contact kernel only {speedup:.1f}x over the per-pair loop"
    )


@pytest.mark.benchmark(group="vector-kernels")
def test_priority_kernel_speedup(benchmark, record_figure):
    """Batched SDSRP priority (Eq. 10) vs per-message scalar calls."""
    rng = np.random.default_rng(1)
    size = 5000
    copies = rng.integers(1, 33, size=size)
    remaining = rng.uniform(0.0, 18000.0, size=size)
    m_seen = rng.integers(0, 10, size=size)
    n_holders = np.maximum(1, m_seen + 1 - rng.integers(0, 3, size=size))
    lam, n_nodes = 0.0004, 100

    def scalar():
        return [
            float(priority_closed_form(
                int(c), float(r), int(m), int(n), lam, n_nodes
            ))
            for c, r, m, n in zip(copies, remaining, m_seen, n_holders)
        ]

    def batched():
        return sdsrp_priority_batch(
            copies, remaining, m_seen, n_holders, lam, n_nodes
        )

    got = run_once(benchmark, batched)
    assert got.tolist() == scalar(), "batched and scalar priorities disagree"

    scalar_s = best_of(scalar)
    batch_s = best_of(batched)
    speedup = scalar_s / batch_s
    _measured["priority_kernel_speedup"] = speedup
    record_figure("vector_priority_kernel", {
        "messages": size,
        "scalar_s": scalar_s,
        "batched_s": batch_s,
        "speedup": speedup,
    })
    print(f"\npriority kernel: {speedup:.1f}x over per-message calls")
    assert speedup >= 5.0, (
        f"priority kernel only {speedup:.1f}x over per-message calls"
    )


@pytest.mark.benchmark(group="vector-engine")
def test_backend_ticks_per_sec(benchmark, record_figure):
    """End-to-end throughput of the same scenario on both backends."""
    base = scale_scenario(
        random_waypoint_scenario(policy="sdsrp", seed=5),
        node_factor=0.25,
        time_factor=0.2,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )

    def run(backend: str) -> float:
        config = base.replace(engine_backend=backend)

        def work():
            built = build_scenario(config)
            built.sim.run()
            return built

        elapsed = best_of(work, repeats=2)
        return (config.sim_time / config.tick) / elapsed

    scalar_tps = run("scalar")

    def vector_work():
        built = build_scenario(base.replace(engine_backend="vector"))
        built.sim.run()
        return built

    built = run_once(benchmark, vector_work)
    assert built.metrics.created > 0
    vector_tps = run("vector")
    ratio = vector_tps / scalar_tps
    _measured["engine_ticks_ratio"] = ratio
    record_figure("vector_engine_throughput", {
        "scenario": base.name,
        "ticks_per_sec": {"scalar": scalar_tps, "vector": vector_tps},
        "vector_over_scalar": ratio,
    })
    print(
        f"\nticks/sec: scalar {scalar_tps:.0f}, vector {vector_tps:.0f} "
        f"({ratio:.2f}x)"
    )
    # End-to-end is routing/transfer bound; the vector path must at least
    # not regress the whole-run throughput materially.
    assert ratio >= 0.8, f"vector backend slowed the whole run: {ratio:.2f}x"


@pytest.mark.benchmark(group="vector-engine")
def test_speedups_hold_against_committed_baseline(record_figure):
    """CI gate: every measured speedup ratio stays within 20% of the
    committed baseline (``vector_baseline.json``)."""
    if not _measured:
        pytest.skip("speedup benchmarks did not run in this session")
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    record_figure("vector_speedup_gate", {
        "baseline": baseline,
        "measured": dict(_measured),
        "allowed_regression": ALLOWED_REGRESSION,
    })
    failures = []
    for key, floor in baseline.items():
        measured = _measured.get(key)
        if measured is None:
            failures.append(f"{key}: not measured this session")
        elif measured < floor * ALLOWED_REGRESSION:
            failures.append(
                f"{key}: measured {measured:.2f} < {ALLOWED_REGRESSION:.0%} "
                f"of baseline {floor:.2f}"
            )
    assert not failures, "; ".join(failures)
