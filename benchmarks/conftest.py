"""Benchmark-suite configuration.

Simulation benchmarks run exactly once (``rounds=1``) — a DTN run is
deterministic given its seed, and the interesting output is the *figure
data*, which each benchmark prints and also appends to
``benchmarks/results/bench_results.json`` so EXPERIMENTS.md can be refreshed
from a single bench run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_collected: dict[str, object] = {}


@pytest.fixture()
def record_figure():
    """Store one figure's series for the end-of-session JSON dump."""

    def _record(key: str, payload: object) -> None:
        _collected[key] = payload

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _collected:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "bench_results.json"
        merged: dict[str, object] = {}
        if out.exists():  # partial sessions accumulate into one record
            try:
                merged = json.loads(out.read_text())
            except ValueError:
                merged = {}
        merged.update(_collected)
        with out.open("w") as fh:
            json.dump(merged, fh, indent=2, default=str)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time of *repeats* calls (noise-robust point estimate
    for the speedup-ratio figures)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def figure_payload(data):
    """JSON-friendly dump of a FigureData."""
    return {
        "figure": data.figure,
        "x_label": data.x_label,
        "x_values": [list(x) if isinstance(x, tuple) else x for x in data.x_values],
        "series": data.series,
    }
