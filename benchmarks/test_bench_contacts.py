"""Micro-benchmarks of the contact-detection hot path.

Per the hpc guides: the movement + detection loop dominates large-fleet
runs, so the three detector strategies are measured head-to-head at several
fleet sizes (this is the data behind ``make_detector``'s size-based default).
These use normal pytest-benchmark statistics (many rounds) since they are
pure functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.contacts import BruteForceDetector, GridDetector, KDTreeDetector

RADIUS = 100.0
AREA = 5000.0

DETECTORS = {
    "brute": BruteForceDetector(),
    "grid": GridDetector(),
    "kdtree": KDTreeDetector(),
}


def positions(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, AREA, size=(n, 2))


@pytest.mark.benchmark(group="contacts-n100")
@pytest.mark.parametrize("kind", list(DETECTORS))
def test_detector_n100(benchmark, kind):
    pts = positions(100)
    expected = DETECTORS["brute"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected


@pytest.mark.benchmark(group="contacts-n500")
@pytest.mark.parametrize("kind", list(DETECTORS))
def test_detector_n500(benchmark, kind):
    pts = positions(500)
    expected = DETECTORS["brute"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected


@pytest.mark.benchmark(group="contacts-n2000")
@pytest.mark.parametrize("kind", ["grid", "kdtree"])
def test_detector_n2000(benchmark, kind):
    pts = positions(2000)
    expected = DETECTORS["kdtree"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected
