"""Micro-benchmarks of the contact-detection hot path.

Per the hpc guides: the movement + detection loop dominates large-fleet
runs, so the three detector strategies are measured head-to-head at several
fleet sizes (this is the data behind ``make_detector``'s size-based default).
These use normal pytest-benchmark statistics (many rounds) since they are
pure functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.contacts import BruteForceDetector, GridDetector, KDTreeDetector

RADIUS = 100.0
AREA = 5000.0

DETECTORS = {
    "brute": BruteForceDetector(),
    "grid": GridDetector(),
    "kdtree": KDTreeDetector(),
}


def positions(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, AREA, size=(n, 2))


@pytest.mark.benchmark(group="contacts-n100")
@pytest.mark.parametrize("kind", list(DETECTORS))
def test_detector_n100(benchmark, kind):
    pts = positions(100)
    expected = DETECTORS["brute"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected


@pytest.mark.benchmark(group="contacts-n500")
@pytest.mark.parametrize("kind", list(DETECTORS))
def test_detector_n500(benchmark, kind):
    pts = positions(500)
    expected = DETECTORS["brute"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected


@pytest.mark.benchmark(group="contacts-n2000")
@pytest.mark.parametrize("kind", ["grid", "kdtree"])
def test_detector_n2000(benchmark, kind):
    pts = positions(2000)
    expected = DETECTORS["kdtree"].pairs(pts, RADIUS)
    result = benchmark(DETECTORS[kind].pairs, pts, RADIUS)
    assert result == expected


def _python_pair_loop(pts: np.ndarray, radius: float) -> set[tuple[int, int]]:
    """The per-pair Python loop vectorization replaced (and the oracle the
    vector kernels are property-tested against)."""
    n = pts.shape[0]
    found = set()
    for i in range(n):
        for j in range(i + 1, n):
            diff = pts[i] - pts[j]
            if float(diff @ diff) <= radius * radius:
                found.add((i, j))
    return found


@pytest.mark.benchmark(group="contacts-speedup")
def test_vectorized_speedup_over_python_loop(benchmark, record_figure):
    """Upper-triangle NumPy detection vs the per-pair Python loop, n=500.

    Records the speedup into bench_results.json; the vector regression
    gate (test_bench_vector.py) tracks the same ratio across PRs.
    """
    from benchmarks.conftest import best_of

    pts = positions(500)
    detector = DETECTORS["brute"]
    expected = _python_pair_loop(pts, RADIUS)
    result = benchmark(detector.pairs, pts, RADIUS)
    assert result == expected

    python_s = best_of(lambda: _python_pair_loop(pts, RADIUS))
    numpy_s = best_of(lambda: detector.pairs(pts, RADIUS))
    speedup = python_s / numpy_s
    record_figure("contacts_vectorization", {
        "n": 500,
        "python_loop_s": python_s,
        "vectorized_s": numpy_s,
        "speedup": speedup,
    })
    print(f"\nvectorized contacts: {speedup:.1f}x over the Python loop")
    assert speedup >= 5.0
