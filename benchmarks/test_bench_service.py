"""Service-layer benchmarks: submit→result latency and cache-hit throughput.

Both paths matter operationally: submit→result latency bounds how much the
service machinery (journal fsyncs, admission, dispatch, settle) adds on
top of a computation, and cache-hit throughput is the rate the degraded
mode can serve duplicates at when the pool is gone.  The runs use a stub
``run_fn`` so the numbers isolate the service overhead, not the simulator.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.scenario import ScenarioConfig
from repro.reports.summary import RunSummary
from repro.service.api import ScenarioService


def _config(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        name="bench-service", n_nodes=4, sim_time=20.0, policy="fifo",
        router="snw", seed=seed,
    )


def _stub_run(config: ScenarioConfig) -> RunSummary:
    return RunSummary(
        scenario=config.name, policy=config.policy, seed=config.seed,
        sim_time=config.sim_time, initial_copies=config.initial_copies,
        buffer_bytes=config.buffer_bytes,
        interval_range=config.interval_range,
        created=10, delivered=7, relayed=20, delivery_ratio=0.7,
        average_hopcount=1.5, overhead_ratio=2.0, average_latency=30.0,
    )


SUBMITS = 50


@pytest.mark.benchmark(group="service")
def test_submit_to_result_latency(benchmark, tmp_path, record_figure):
    """Full fresh-job round trips: journal + queue + dispatch + settle."""

    def work():
        with ScenarioService(
            tmp_path / "lat", workers=0, run_fn=_stub_run
        ) as service:
            tickets = [
                service.submit(_config(seed)) for seed in range(SUBMITS)
            ]
            assert service.drain()
            return [service.result(t.job_id) for t in tickets]

    results = run_once(benchmark, work)
    assert len(results) == SUBMITS
    assert all(isinstance(r, RunSummary) for r in results)
    per_job_ms = benchmark.stats["mean"] / SUBMITS * 1e3
    record_figure(
        "bench_service_latency",
        {
            "submits": SUBMITS,
            "wall_s": benchmark.stats["mean"],
            "per_job_ms": per_job_ms,
        },
    )
    print(f"\nsubmit->result: {per_job_ms:.2f} ms/job over {SUBMITS} jobs")


@pytest.mark.benchmark(group="service")
def test_cache_hit_throughput(benchmark, tmp_path, record_figure):
    """Duplicate submissions against a warmed cache (the degraded path)."""
    with ScenarioService(
        tmp_path / "hit", workers=0, run_fn=_stub_run
    ) as service:
        warm = service.submit(_config(0))
        assert service.drain()
        service.supervisor.mark_dead()  # degraded: pool gone, cache serves

        def work():
            tickets = [service.submit(_config(0)) for _ in range(SUBMITS)]
            assert all(t.cached for t in tickets)
            return tickets

        tickets = run_once(benchmark, work)
        assert all(t.fingerprint == warm.fingerprint for t in tickets)
        assert service.stats.degraded_hits >= SUBMITS
    hits_per_s = SUBMITS / benchmark.stats["mean"]
    record_figure(
        "bench_service_cache_hits",
        {
            "hits": SUBMITS,
            "wall_s": benchmark.stats["mean"],
            "hits_per_s": hits_per_s,
        },
    )
    print(f"\ncache hits: {hits_per_s:.0f} submissions/s (degraded mode)")
