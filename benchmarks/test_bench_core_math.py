"""Micro-benchmarks of the SDSRP math hot paths.

The policy ranks a buffer on every scheduling and drop decision; these
benches measure the vectorized equation kernels and the mobility engine step
so regressions in the inner loops are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priority import (
    priority_closed_form,
    priority_taylor,
)
from repro.core.spray_tree import estimate_infected
from repro.mobility.random_waypoint import RandomWaypoint

N = 100
LAM = 5e-5
RNG = np.random.default_rng(7)

BATCH = {
    "copies": RNG.choice([1, 2, 4, 8, 16, 32], size=1000),
    "r": RNG.uniform(10.0, 18000.0, size=1000),
    "m": RNG.integers(0, 99, size=1000),
    "n": RNG.integers(1, 40, size=1000),
}


@pytest.mark.benchmark(group="math")
def test_priority_closed_form_batch(benchmark):
    out = benchmark(
        priority_closed_form, BATCH["copies"], BATCH["r"], BATCH["m"],
        BATCH["n"], LAM, N,
    )
    assert np.all(np.isfinite(out))


@pytest.mark.benchmark(group="math")
def test_priority_taylor_batch(benchmark):
    p_r = RNG.uniform(0.0, 0.99, size=1000)
    p_t = RNG.uniform(0.0, 0.9, size=1000)
    out = benchmark(priority_taylor, p_t, p_r, BATCH["n"], 8)
    assert np.all(out >= 0)


@pytest.mark.benchmark(group="math")
def test_spray_tree_estimate(benchmark):
    sprays = sorted(RNG.uniform(0, 5000, size=6).tolist())

    def work():
        return estimate_infected(sprays, now=5000.0,
                                 mean_min_intermeeting=220.0, n_nodes=N)

    assert benchmark(work) >= 6


@pytest.mark.benchmark(group="engine")
def test_mobility_step_100_nodes(benchmark):
    model = RandomWaypoint(100, (4500.0, 3400.0))
    model.initialize(np.random.default_rng(0))
    state = {"t": 0.0}

    def step():
        state["t"] += 1.0
        return model.advance(state["t"])

    out = benchmark(step)
    assert out.shape == (100, 2)
