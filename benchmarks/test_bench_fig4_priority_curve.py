"""Fig. 4: the U(P(R)) priority curve and its Taylor truncations.

Checks the two analytic claims: the idealization (Eq. 11) peaks at
P(R) = 1 − 1/e, and the Eq. 13 truncations converge monotonically to it as
the term count grows.  Also micro-benchmarks the vectorized curve evaluation
(the same code path the policy uses to rank whole buffers).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.taylor import peak_location, priority_curve, taylor_convergence
from repro.core.priority import PEAK_P_R


@pytest.mark.benchmark(group="fig4")
def test_fig4_curves(benchmark, record_figure):
    curves = run_once(
        benchmark,
        lambda: priority_curve(taylor_term_counts=(1, 2, 4, 8, 16, 32)),
    )
    peak = peak_location(curves["p_r"], curves["ideal"])
    errors = {
        k: float(np.max(np.abs(curves[k] - curves["ideal"])))
        for k in curves
        if k.startswith("taylor")
    }
    print(f"\nfig4: ideal peak at P(R)={peak:.4f} (theory {PEAK_P_R:.4f})")
    for k in sorted(errors, key=lambda s: int(s.split("k")[-1])):
        print(f"  {k:<12} max error {errors[k]:.4f}")
    record_figure("fig4", {"peak": peak, "taylor_errors": errors})
    assert peak == pytest.approx(PEAK_P_R, abs=5e-3)
    ordered = [errors[f"taylor_k{k}"] for k in (1, 2, 4, 8, 16, 32)]
    assert all(b <= a + 1e-12 for a, b in zip(ordered, ordered[1:]))


@pytest.mark.benchmark(group="fig4")
def test_fig4_convergence_table(benchmark, record_figure):
    errors = run_once(benchmark, lambda: taylor_convergence(max_terms=64))
    record_figure("fig4_convergence", errors)
    assert errors[64] < errors[1]
