"""Sharded contact-plane throughput at fleet scale.

Runs a 10k-node fleet (grid detector, paper-like density) end-to-end under
shard_count 1, 2 and 4 and records ticks/sec for each — the tracked number
for the crash-tolerant sharded engine (docs/sharding.md).

The replicated-movement design buys byte-identity and crash recovery, not
raw speed: every barrier ships owned pairs plus a position digest over the
pipe, so at this density the sharded runs are *slower* than single-process.
The benchmark exists to keep that overhead visible and bounded, and to
catch regressions in the barrier loop itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import ScenarioConfig


def fleet_config(shard_count: int) -> ScenarioConfig:
    return ScenarioConfig(
        name="shard-bench",
        n_nodes=10_000,
        sim_time=30.0,
        mobility="rwp",
        area=(12_000.0, 12_000.0),
        speed_range=(1.0, 3.0),
        radio_range=100.0,
        buffer_bytes=10_000,
        message_size=1000,
        interval_range=(20.0, 40.0),
        ttl=600.0,
        initial_copies=8,
        router="snw",
        policy="sdsrp",
        detector="grid",
        shard_count=shard_count,
        seed=7,
    )


@pytest.mark.benchmark(group="shard")
@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_fleet_ticks_per_sec(benchmark, record_figure, shard_count):
    """End-to-end ticks/sec of the 10k-node fleet per shard count
    (accumulates one key per count in bench_results.json)."""
    config = fleet_config(shard_count)

    def work():
        built = build_scenario(config)
        return run_built(built)

    summary = run_once(benchmark, work)
    assert summary.created > 0
    elapsed = summary.wall_seconds
    ticks_per_sec = (config.sim_time / config.tick) / elapsed
    record_figure(f"shard_ticks_per_sec_{shard_count}", {
        "scenario": config.name,
        "n_nodes": config.n_nodes,
        "shard_count": shard_count,
        "ticks_per_sec": ticks_per_sec,
    })
    print(f"\n{shard_count} shard(s): {ticks_per_sec:.1f} ticks/sec "
          f"({summary.created} messages)")
