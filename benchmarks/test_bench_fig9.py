"""Fig. 9 (EPFL taxi trace, synthetic substitute): the three metric sweeps.

Same sweeps as Fig. 8 but under the hotspot-clustered taxi mobility standing
in for the CRAWDAD cabspotting data (DESIGN.md §1).  The fleet is reduced
more aggressively than the RWP scenario (200 -> 40 taxis) to keep the bench
runnable; L/N and congestion calibration follow the same rules.

The paper's Fig. 9 claims mirror Fig. 8 (SDSRP best delivery and overhead),
with one noted difference (Sec. IV-B-2): under taxi mobility SnW-C's
overhead *falls* as the generation interval grows, due to the aggregation
phenomenon — asserted below.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import figure_payload, run_once
from repro.experiments.figures import (
    PAPER_METRICS,
    fig9_buffer,
    fig9_copies,
    fig9_rate,
)

REPLICATES = 2
SEED = 8
NODE_FACTOR = 0.2  # 200 taxis -> 40


def _mean(data, policy, metric):
    return float(np.nanmean(data.series[policy][metric]))


def _assert_taxi_shape(data):
    """The robust cross-metric claims under taxi mobility."""
    overheads = {p: _mean(data, p, "overhead_ratio") for p in data.series}
    assert min(overheads, key=overheads.get) == "sdsrp", overheads
    deliveries = {p: _mean(data, p, "delivery_ratio") for p in data.series}
    top2 = sorted(deliveries, key=deliveries.get, reverse=True)[:2]
    assert "sdsrp" in top2, deliveries


def _print(data):
    for metric in PAPER_METRICS:
        print()
        print(data.metric_table(metric))


@pytest.mark.benchmark(group="fig9")
def test_fig9_copies_sweep(benchmark, record_figure):
    """Fig. 9(a-c): metrics vs initial copies L under taxi mobility."""
    data = run_once(
        benchmark,
        lambda: fig9_copies(replicates=REPLICATES, workers=1, seed=SEED,
                            node_factor=NODE_FACTOR),
    )
    _print(data)
    record_figure("fig9_copies", figure_payload(data))
    _assert_taxi_shape(data)


@pytest.mark.benchmark(group="fig9")
def test_fig9_buffer_sweep(benchmark, record_figure):
    """Fig. 9(d-f): metrics vs buffer size under taxi mobility."""
    data = run_once(
        benchmark,
        lambda: fig9_buffer(replicates=REPLICATES, workers=1, seed=SEED,
                            node_factor=NODE_FACTOR),
    )
    _print(data)
    record_figure("fig9_buffer", figure_payload(data))
    _assert_taxi_shape(data)
    for policy in data.series:
        series = data.series[policy]["delivery_ratio"]
        assert series[-1] > series[0], (policy, series)


@pytest.mark.benchmark(group="fig9")
def test_fig9_rate_sweep(benchmark, record_figure):
    """Fig. 9(g-i): metrics vs generation interval under taxi mobility."""
    data = run_once(
        benchmark,
        lambda: fig9_rate(replicates=REPLICATES, workers=1, seed=SEED,
                          node_factor=NODE_FACTOR),
    )
    _print(data)
    record_figure("fig9_rate", figure_payload(data))
    _assert_taxi_shape(data)
    # Sec. IV-B-2: with aggregation, lower traffic cuts SnW-C's useless
    # forwardings — its overhead falls as the interval grows.
    snwc = data.series["snw-c"]["overhead_ratio"]
    assert snwc[-1] < snwc[0], snwc
