"""Fig. 8 (random-waypoint): the paper's three metric sweeps.

Each benchmark regenerates one row of Fig. 8 at reduced scale (see
DESIGN.md §4 and EXPERIMENTS.md) and checks the *shape* claims the paper
makes:

* SDSRP: lowest overhead ratio at every sweep point; delivery ratio in the
  top two (its lead over plain SnW is within seed noise at reduced scale —
  the oracle ablation in test_bench_ablations.py shows the full gap);
* SnW-C: lowest average hopcounts;
* plain SnW (FIFO): highest average hopcounts;
* delivery rises with buffer size and with the generation interval.

Run with: pytest benchmarks/test_bench_fig8.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import figure_payload, run_once
from repro.experiments.figures import (
    PAPER_METRICS,
    fig8_buffer,
    fig8_copies,
    fig8_rate,
)

REPLICATES = 2
SEED = 8


def _mean(data, policy, metric):
    return float(np.nanmean(data.series[policy][metric]))


def _assert_paper_shape(data):
    # SDSRP: strictly lowest overhead, delivery in the top 2 on average.
    overheads = {p: _mean(data, p, "overhead_ratio") for p in data.series}
    assert min(overheads, key=overheads.get) == "sdsrp", overheads
    deliveries = {p: _mean(data, p, "delivery_ratio") for p in data.series}
    top2 = sorted(deliveries, key=deliveries.get, reverse=True)[:2]
    assert "sdsrp" in top2, deliveries
    # Hopcounts bracket: SnW-C lowest, plain SnW highest.
    hops = {p: _mean(data, p, "average_hopcount") for p in data.series}
    assert min(hops, key=hops.get) == "snw-c", hops
    assert max(hops, key=hops.get) == "fifo", hops


def _print(data):
    for metric in PAPER_METRICS:
        print()
        print(data.metric_table(metric))


@pytest.mark.benchmark(group="fig8")
def test_fig8_copies_sweep(benchmark, record_figure):
    """Fig. 8(a-c): metrics vs initial copies L."""
    data = run_once(
        benchmark,
        lambda: fig8_copies(replicates=REPLICATES, workers=1, seed=SEED),
    )
    _print(data)
    record_figure("fig8_copies", figure_payload(data))
    _assert_paper_shape(data)
    # Paper: SnW-O's delivery declines as L grows.
    snwo = data.series["snw-o"]["delivery_ratio"]
    assert snwo[-1] < snwo[0]
    # Paper: plain SnW's hopcount rises with L.
    fifo_hops = data.series["fifo"]["average_hopcount"]
    assert fifo_hops[-1] > fifo_hops[0]


@pytest.mark.benchmark(group="fig8")
def test_fig8_buffer_sweep(benchmark, record_figure):
    """Fig. 8(d-f): metrics vs buffer size."""
    data = run_once(
        benchmark,
        lambda: fig8_buffer(replicates=REPLICATES, workers=1, seed=SEED),
    )
    _print(data)
    record_figure("fig8_buffer", figure_payload(data))
    _assert_paper_shape(data)
    # Paper: delivery ratio rises with buffer size for every policy.
    for policy in data.series:
        series = data.series[policy]["delivery_ratio"]
        assert series[-1] > series[0], (policy, series)


@pytest.mark.benchmark(group="fig8")
def test_fig8_rate_sweep(benchmark, record_figure):
    """Fig. 8(g-i): metrics vs message generation interval."""
    data = run_once(
        benchmark,
        lambda: fig8_rate(replicates=REPLICATES, workers=1, seed=SEED),
    )
    _print(data)
    record_figure("fig8_rate", figure_payload(data))
    _assert_paper_shape(data)
    # Paper: less traffic (larger interval) -> higher delivery ratio.
    for policy in data.series:
        series = data.series[policy]["delivery_ratio"]
        assert series[-1] > series[0], (policy, series)
