"""Ablations of the SDSRP design choices (DESIGN.md §3).

Each benchmark runs the reduced Table-II scenario with one knob flipped and
prints the deltas, so the contribution of each mechanism is measurable:

* distributed estimators vs the global-knowledge oracle;
* Eq. 15 reference time (latest spray vs extrapolate-to-now);
* dropped-list rejection rule (own / any / off);
* closed-form priority (Eq. 10) vs Taylor truncations (Eq. 13);
* strict Algorithm-1 scheduling vs ONE's deliverable-first.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.sweep import replicate, run_many, summarize_replicates

REPLICATES = 3
SEED = 8


def base_config(policy: str = "sdsrp", **kw):
    cfg = scale_scenario(
        random_waypoint_scenario(policy=policy, seed=SEED),
        node_factor=0.4,
        time_factor=1 / 3,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )
    return cfg.replace(**kw) if kw else cfg


def run_variant(config):
    summaries = run_many(replicate(config, REPLICATES), workers=1)
    return {
        "delivery_ratio": summarize_replicates(summaries, "delivery_ratio"),
        "overhead_ratio": summarize_replicates(summaries, "overhead_ratio"),
        "average_hopcount": summarize_replicates(summaries, "average_hopcount"),
    }


def _print_rows(rows: dict[str, dict[str, float]]) -> None:
    print()
    print(f"{'variant':<26}{'delivery':>10}{'overhead':>10}{'hops':>8}")
    for label, row in rows.items():
        print(f"{label:<26}{row['delivery_ratio']:>10.3f}"
              f"{row['overhead_ratio']:>10.2f}"
              f"{row['average_hopcount']:>8.2f}")


@pytest.mark.benchmark(group="ablation")
def test_ablation_estimators(benchmark, record_figure):
    """Distributed estimation (the paper's contribution) vs oracle truth."""

    def work():
        return {
            "sdsrp (distributed)": run_variant(base_config("sdsrp")),
            "sdsrp (oracle)": run_variant(base_config("sdsrp-oracle")),
            "fifo (reference)": run_variant(base_config("fifo")),
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_estimators", rows)
    # Exact knowledge must not be worse than distributed estimates.
    assert (
        rows["sdsrp (oracle)"]["overhead_ratio"]
        <= rows["sdsrp (distributed)"]["overhead_ratio"]
    )
    # The oracle shows the policy's full delivery headroom over plain SnW.
    assert (
        rows["sdsrp (oracle)"]["delivery_ratio"]
        > rows["fifo (reference)"]["delivery_ratio"]
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_spray_tree_reference(benchmark, record_figure):
    """Eq. 15 reference: latest spray (paper) vs extrapolate-to-now."""

    def work():
        return {
            "ref = latest spray": run_variant(base_config("sdsrp")),
            "ref = now": run_variant(
                base_config("sdsrp",
                            policy_kwargs={"extrapolate_spray_tree": True})
            ),
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_spray_tree", rows)
    # Extrapolation saturates m-hat and collapses priorities to ties; the
    # paper-literal reference must not be worse on overhead.
    assert (
        rows["ref = latest spray"]["overhead_ratio"]
        <= rows["ref = now"]["overhead_ratio"] * 1.25
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_reject_rule(benchmark, record_figure):
    """Dropped-list rejection: own (paper) / any / off."""

    def work():
        return {
            f"reject = {rule}": run_variant(
                base_config("sdsrp", policy_kwargs={"reject_rule": rule})
            )
            for rule in ("own", "any", "off")
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_reject_rule", rows)
    # Rejecting re-infections must reduce relay overhead vs not rejecting.
    assert (
        rows["reject = own"]["overhead_ratio"]
        <= rows["reject = off"]["overhead_ratio"] * 1.1
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_taylor_terms(benchmark, record_figure):
    """Eq. 13 truncations vs the closed form (Eq. 10)."""

    def work():
        rows = {"closed form (Eq.10)": run_variant(base_config("sdsrp"))}
        for k in (1, 2, 8):
            rows[f"taylor k={k}"] = run_variant(
                base_config(
                    "sdsrp",
                    policy_kwargs={"priority_form": "taylor",
                                   "taylor_terms": k},
                )
            )
        return rows

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_taylor", rows)
    values = np.array(
        [r["delivery_ratio"] for r in rows.values()], dtype=float
    )
    # All forms are rank-equivalent enough to land in one delivery band.
    assert values.max() - values.min() < 0.12


@pytest.mark.benchmark(group="ablation")
def test_ablation_scheduling_mode(benchmark, record_figure):
    """Strict Algorithm-1 priority order vs ONE's deliverable-first."""

    def work():
        return {
            "strict Algorithm 1": run_variant(base_config("sdsrp")),
            "deliverable-first": run_variant(
                base_config("sdsrp", deliverable_first=True)
            ),
            "fifo deliverable-first": run_variant(
                base_config("fifo", deliverable_first=True)
            ),
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_scheduling", rows)


@pytest.mark.benchmark(group="ablation")
def test_ablation_knapsack_mixed_sizes(benchmark, record_figure):
    """Knapsack victim selection vs single-victim ranking (mixed sizes).

    With the paper's fixed 0.5 MB messages the two coincide; with uniform
    0.2-0.8 MB messages the set-based selection can keep two small strong
    messages over one big weak one.
    """
    from repro.units import megabytes

    mixed = {"message_size_range": (megabytes(0.2), megabytes(0.8))}

    def work():
        return {
            "sdsrp (mixed sizes)": run_variant(base_config("sdsrp", **mixed)),
            "sdsrp-knapsack (mixed)": run_variant(
                base_config("sdsrp-knapsack", **mixed)
            ),
            "fifo (mixed sizes)": run_variant(base_config("fifo", **mixed)),
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_knapsack", rows)
    for row in rows.values():
        assert 0.0 <= row["delivery_ratio"] <= 1.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_world_tick(benchmark, record_figure):
    """Time-step sensitivity: the paper's results must not hinge on the
    update granularity (ONE uses sub-second ticks; we default to 1 s)."""

    def work():
        return {
            f"tick = {tick}s": run_variant(base_config("sdsrp", tick=tick))
            for tick in (0.5, 1.0, 2.0)
        }

    rows = run_once(benchmark, work)
    _print_rows(rows)
    record_figure("ablation_tick", rows)
    values = [r["delivery_ratio"] for r in rows.values()]
    assert max(values) - min(values) < 0.08  # granularity-robust
