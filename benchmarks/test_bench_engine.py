"""End-to-end simulator throughput benchmarks.

Measures whole-run wall time for a small Table-II-shaped scenario per
policy — the number that determines how long the full paper-scale sweeps
take (events/second is printed for context).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.engine.events import EventQueue
from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.runner import build_scenario


def small_config(policy: str):
    return scale_scenario(
        random_waypoint_scenario(policy=policy, seed=5),
        node_factor=0.25,
        time_factor=0.2,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("policy", ["fifo", "sdsrp"])
def test_full_run_throughput(benchmark, policy):
    def work():
        built = build_scenario(small_config(policy))
        built.sim.run()
        return built

    built = run_once(benchmark, work)
    print(f"\n{policy}: {built.sim.events_processed} events, "
          f"{built.metrics.created} messages, "
          f"{built.contacts.contact_count} contacts")
    assert built.metrics.created > 0


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput(benchmark):
    """Schedule + pop 10k events (the engine's raw overhead)."""

    def work():
        q = EventQueue()
        for i in range(10_000):
            q.schedule(float(i % 997), lambda: None)
        count = 0
        while q.pop() is not None:
            count += 1
        return count

    assert benchmark(work) == 10_000
