"""End-to-end simulator throughput benchmarks.

Measures whole-run wall time for a small Table-II-shaped scenario per
policy — the number that determines how long the full paper-scale sweeps
take (events/second is printed for context).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import best_of, run_once
from repro.engine.events import EventQueue
from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.runner import build_scenario


def small_config(policy: str):
    return scale_scenario(
        random_waypoint_scenario(policy=policy, seed=5),
        node_factor=0.25,
        time_factor=0.2,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("policy", ["fifo", "sdsrp"])
def test_full_run_throughput(benchmark, policy):
    def work():
        built = build_scenario(small_config(policy))
        built.sim.run()
        return built

    built = run_once(benchmark, work)
    print(f"\n{policy}: {built.sim.events_processed} events, "
          f"{built.metrics.created} messages, "
          f"{built.contacts.contact_count} contacts")
    assert built.metrics.created > 0


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_backend_ticks_per_sec(benchmark, record_figure, backend):
    """End-to-end ticks/sec per engine backend — the tracked throughput
    metric (accumulates one key per backend in bench_results.json)."""
    config = small_config("sdsrp").replace(engine_backend=backend)

    def work():
        built = build_scenario(config)
        built.sim.run()
        return built

    built = run_once(benchmark, work)
    assert built.metrics.created > 0
    elapsed = best_of(work, repeats=2)
    ticks_per_sec = (config.sim_time / config.tick) / elapsed
    record_figure(f"engine_ticks_per_sec_{backend}", {
        "scenario": config.name,
        "backend": backend,
        "ticks_per_sec": ticks_per_sec,
    })
    print(f"\n{backend}: {ticks_per_sec:.0f} ticks/sec")


@pytest.mark.benchmark(group="engine")
def test_routing_prepass_speedup(benchmark, record_figure):
    """Batched SDSRP ranking (Eqs. 4-13, the vector routing pre-pass) vs
    per-message scalar evaluation over a sweep-sized population."""
    import numpy as np

    from repro.core.priority import priority_closed_form
    from repro.vector.kernels import sdsrp_priority_batch

    rng = np.random.default_rng(2)
    size = 5000
    copies = rng.integers(1, 33, size=size)
    remaining = rng.uniform(0.0, 18000.0, size=size)
    m_seen = rng.integers(0, 10, size=size)
    n_holders = np.maximum(1, m_seen + 1 - rng.integers(0, 3, size=size))
    lam, n_nodes = 0.0004, 100

    def scalar():
        return [
            float(priority_closed_form(
                int(c), float(r), int(m), int(n), lam, n_nodes
            ))
            for c, r, m, n in zip(copies, remaining, m_seen, n_holders)
        ]

    def batched():
        return sdsrp_priority_batch(
            copies, remaining, m_seen, n_holders, lam, n_nodes
        )

    got = run_once(benchmark, batched)
    assert got.tolist() == scalar()
    speedup = best_of(scalar) / best_of(batched)
    record_figure("engine_routing_prepass", {
        "messages": size,
        "speedup": speedup,
    })
    print(f"\nrouting pre-pass: {speedup:.1f}x over per-message calls")
    assert speedup >= 5.0


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput(benchmark):
    """Schedule + pop 10k events (the engine's raw overhead)."""

    def work():
        q = EventQueue()
        for i in range(10_000):
            q.schedule(float(i % 997), lambda: None)
        count = 0
        while q.pop() is not None:
            count += 1
        return count

    assert benchmark(work) == 10_000
