"""Snapshot subsystem benchmarks: capture/restore cost and file size.

Measures, as a function of fleet size, what checkpointing actually costs a
sweep: the in-memory ``save`` capture (paid every ``snapshot_every`` sim
seconds), the atomic gzip write, the read+``restore`` path a resumed worker
pays once, and the on-disk snapshot size.  The series lands in
``bench_results.json`` under ``snapshot_scaling`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.runner import build_scenario
from repro.snapshot import read_snapshot, restore, save, write_snapshot

#: Accumulates one point per parametrization; each call re-records the
#: superset so the session dump always holds every completed fleet size.
_POINTS: dict[int, dict[str, float]] = {}


def snapshot_config(node_factor: float):
    return scale_scenario(
        random_waypoint_scenario(policy="sdsrp", seed=5),
        node_factor=node_factor,
        time_factor=0.05,
    )


@pytest.mark.benchmark(group="snapshot")
@pytest.mark.parametrize("node_factor", [0.1, 0.25, 0.5])
def test_snapshot_save_restore_scaling(
    benchmark, record_figure, tmp_path, node_factor
):
    built = build_scenario(snapshot_config(node_factor))
    built.sim.run()
    n_nodes = built.config.n_nodes

    snap = run_once(benchmark, lambda: save(built))

    path = tmp_path / "bench.snap.gz"
    t0 = time.perf_counter()
    write_snapshot(snap, path)
    write_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    restored = restore(read_snapshot(path))
    restore_seconds = time.perf_counter() - t0
    assert restored.sim.now == pytest.approx(built.sim.now)
    assert len(restored.nodes) == n_nodes

    _POINTS[n_nodes] = {
        "save_seconds": benchmark.stats.stats.mean,
        "write_seconds": write_seconds,
        "restore_seconds": restore_seconds,
        "size_bytes": path.stat().st_size,
        "buffered_messages": sum(
            len(node["buffer"]) for node in snap.state["nodes"]
        ),
    }
    record_figure("snapshot_scaling", {
        "x_label": "n_nodes",
        "x_values": sorted(_POINTS),
        "points": {str(n): _POINTS[n] for n in sorted(_POINTS)},
    })
    point = _POINTS[n_nodes]
    print(f"\nn={n_nodes}: save {point['save_seconds'] * 1e3:.1f} ms, "
          f"restore {point['restore_seconds'] * 1e3:.1f} ms, "
          f"{point['size_bytes'] / 1024:.0f} KiB on disk")
