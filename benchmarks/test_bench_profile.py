"""Per-phase wall-time profile of one reduced run (observability layer).

Runs the reduced random-waypoint scenario with :class:`PhaseProfiler`
attached and records the per-subsystem self-time breakdown into
``bench_results.json`` (key ``profile_phases``), so performance work can see
*where* simulation time goes — movement integration, contact detection,
routing selection, policy decisions — not just the end-to-end wall clock.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import reduced
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import random_waypoint_scenario

SEED = 8


@pytest.mark.benchmark(group="profile")
def test_profile_phases(benchmark, record_figure):
    """Where does a reduced SDSRP run spend its wall time?"""
    config = reduced(random_waypoint_scenario(policy="sdsrp", seed=SEED))
    config = config.replace(profile=True)
    summary = run_once(benchmark, lambda: run_scenario(config))
    assert summary.profile, "profiling enabled but no phases recorded"
    total = sum(summary.profile.values())
    assert total > 0
    print()
    for phase, seconds in sorted(
        summary.profile.items(), key=lambda kv: kv[1], reverse=True
    ):
        print(f"  {phase:<12} {seconds:>8.4f} s  {seconds / total:>6.1%}")
    record_figure("profile_phases", {
        "scenario": config.name,
        "policy": config.policy,
        "seed": config.seed,
        "wall_seconds": summary.wall_seconds,
        "self_seconds": summary.profile,
    })
