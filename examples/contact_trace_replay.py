#!/usr/bin/env python
"""Record a contact trace from a mobility run, then replay it exactly.

Demonstrates the contact-trace workflow: run a normal mobility simulation
while recording every link up/down, save the trace to disk (ONE-style
``CONN`` lines), rebuild the experiment on a :class:`TraceWorld` that
replays the recorded connectivity without any mobility, and verify the
replay reproduces the original run's message metrics bit-for-bit.

This is also the entry point for *real* contact datasets (many DTN traces
are published as contact lists, not GPS logs).

Run:  python examples/contact_trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.engine.simulator import Simulator
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.generator import MessageGenerator, TrafficSpec
from repro.net.transfer import TransferManager
from repro.policies.fifo import FifoPolicy
from repro.reports.metrics import MetricsCollector
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.traces.contact_trace import ContactTrace, ContactTraceRecorder
from repro.units import kbps, megabytes
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.trace_world import TraceWorld
from repro.world.world import World

N_NODES = 20
SIM_TIME = 3000.0
TRAFFIC = TrafficSpec(interval_range=(40.0, 60.0),
                      message_size=megabytes(0.5), ttl=9000.0,
                      initial_copies=8)


def build_common(sim: Simulator) -> tuple[list[Node], TransferManager,
                                          MetricsCollector]:
    radio = Radio(100.0, kbps(250))
    nodes = [Node(i, radio, megabytes(2.5)) for i in range(N_NODES)]
    tm = TransferManager(sim)
    metrics = MetricsCollector()
    metrics.subscribe(sim)
    return nodes, tm, metrics


def attach_routers(sim, nodes, tm) -> None:
    for node in nodes:
        SprayAndWaitRouter(node, FifoPolicy()).bind(sim, tm, N_NODES)


def run_with_mobility() -> tuple[MetricsCollector, ContactTrace]:
    sim = Simulator(end_time=SIM_TIME)
    nodes, tm, metrics = build_common(sim)
    mobility = RandomWaypoint(N_NODES, (1200.0, 900.0), speed_range=(3.0, 3.0))
    world = World(sim, mobility, nodes, tm)
    attach_routers(sim, nodes, tm)
    recorder = ContactTraceRecorder()
    recorder.subscribe(sim)
    gen = MessageGenerator(sim, nodes, TRAFFIC, np.random.default_rng(42))
    world.start(np.random.default_rng(7))
    gen.start()
    sim.run()
    return metrics, recorder.trace


def run_from_trace(trace: ContactTrace) -> MetricsCollector:
    sim = Simulator(end_time=SIM_TIME)
    nodes, tm, metrics = build_common(sim)
    world = TraceWorld(sim, nodes, tm, trace)
    attach_routers(sim, nodes, tm)
    gen = MessageGenerator(sim, nodes, TRAFFIC, np.random.default_rng(42))
    world.start()
    gen.start()
    sim.run()
    return metrics


def main() -> None:
    print(f"1. mobility run: {N_NODES} nodes, {SIM_TIME:.0f} s ...")
    original, trace = run_with_mobility()
    print(f"   {len(trace)} link events recorded, "
          f"{original.created} messages, {original.delivered} delivered")

    path = Path(tempfile.mkstemp(suffix=".contacts")[1])
    trace.save(path)
    print(f"2. trace saved to {path} "
          f"({path.stat().st_size} bytes), reloading ...")
    reloaded = ContactTrace.load(path)

    print("3. replaying connectivity without mobility ...")
    replayed = run_from_trace(reloaded)

    print()
    print(f"{'metric':<18}{'mobility run':>14}{'trace replay':>14}")
    for name, a, b in (
        ("created", original.created, replayed.created),
        ("delivered", original.delivered, replayed.delivered),
        ("relayed", original.relayed, replayed.relayed),
        ("drops", original.drops_total, replayed.drops_total),
    ):
        marker = "ok" if a == b else "MISMATCH"
        print(f"{name:<18}{a:>14}{b:>14}   {marker}")
    assert original.delivered == replayed.delivered
    assert original.relayed == replayed.relayed
    print("\nreplay is exact: contact traces fully determine the experiment.")
    path.unlink()


if __name__ == "__main__":
    main()
