#!/usr/bin/env python
"""Extending the library: write, register and evaluate a custom drop policy.

Implements "HYBRID", a policy that mixes the remaining-TTL ratio and the
copies ratio (the two baselines the paper compares) with a tunable weight,
registers it with the policy registry, and runs it through the same harness
as the built-in strategies — exactly what a downstream user exploring the
design space would do.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.sweep import replicate, run_many, summarize_replicates
from repro.net.message import Message
from repro.policies.base import StaticRankPolicy
from repro.policies.registry import available_policies, register_policy


class HybridPolicy(StaticRankPolicy):
    """priority = w * (R/TTL) + (1-w) * (C/C0)."""

    name = "hybrid"
    compare_newcomer = True

    def __init__(self, weight: float = 0.5) -> None:
        super().__init__()
        self.weight = float(weight)

    def priority(self, message: Message, now: float) -> float:
        ttl_ratio = message.remaining_ttl(now) / message.ttl
        copies_ratio = message.copies / message.initial_copies
        return self.weight * ttl_ratio + (1.0 - self.weight) * copies_ratio


def main() -> None:
    register_policy("hybrid", HybridPolicy)
    print("registered policies:", ", ".join(available_policies()))

    base = scale_scenario(
        random_waypoint_scenario(seed=2),
        node_factor=0.3,
        time_factor=0.25,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )

    print(f"\nscenario {base.name}: {base.n_nodes} nodes, "
          f"{base.sim_time:.0f} s\n")
    print(f"{'policy':<22}{'delivery':>10}{'hops':>8}{'overhead':>10}")
    rows: list[tuple[str, dict]] = []
    for policy, kwargs in [
        ("snw-o", {}),
        ("snw-c", {}),
        ("hybrid", {"weight": 0.25}),
        ("hybrid", {"weight": 0.5}),
        ("hybrid", {"weight": 0.75}),
        ("sdsrp", {}),
    ]:
        configs = replicate(
            base.replace(policy=policy, policy_kwargs=kwargs), 2
        )
        summaries = run_many(configs, workers=1)
        label = policy + (f"(w={kwargs['weight']})" if kwargs else "")
        print(
            f"{label:<22}"
            f"{summarize_replicates(summaries, 'delivery_ratio'):>10.3f}"
            f"{summarize_replicates(summaries, 'average_hopcount'):>8.2f}"
            f"{summarize_replicates(summaries, 'overhead_ratio'):>10.2f}"
        )
        rows.append((label, kwargs))

    print("\nThe linear blend cannot express the non-linear flip of the")
    print("paper's Fig. 2 — which is SDSRP's whole argument (Eq. 10 is a")
    print("non-linear function of C and R).")


if __name__ == "__main__":
    main()
