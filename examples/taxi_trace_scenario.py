#!/usr/bin/env python
"""The paper's second scenario: San-Francisco taxi mobility (Table III).

By default this uses the synthetic taxi-fleet model that stands in for the
EPFL/CRAWDAD ``cabspotting`` trace (that dataset is not redistributable; see
DESIGN.md §1).  If you have a local copy of the real dataset, point
``--cabspotting-dir`` at it and the same experiment replays the real GPS
logs instead.

Run:  python examples/taxi_trace_scenario.py [--cabspotting-dir PATH]
"""

from __future__ import annotations

import argparse

from repro.experiments import epfl_scenario, run_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.reports.summary import RunSummary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cabspotting-dir", default=None,
                        help="directory with real new_*.txt cab files")
    parser.add_argument("--taxis", type=int, default=40,
                        help="fleet size (paper: 200)")
    parser.add_argument("--policies", nargs="+",
                        default=["fifo", "snw-o", "snw-c", "sdsrp"])
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    base = scale_scenario(
        epfl_scenario(seed=args.seed),
        node_factor=args.taxis / 200,
        time_factor=1 / 3,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )

    if args.cabspotting_dir:
        # Replay real GPS data: resample the first N cabs onto a 30 s grid
        # and write a playback trace the runner can load.
        import tempfile

        import numpy as np

        from repro.traces.epfl import load_cabspotting_dir
        from repro.traces.format import write_movement_trace

        mobility = load_cabspotting_dir(
            args.cabspotting_dir, n_taxis=base.n_nodes,
            duration=base.sim_time,
        )
        mobility.initialize(np.random.default_rng(0))
        path = tempfile.mktemp(suffix=".trace")
        write_movement_trace(path, mobility._times, mobility._samples)
        base = base.replace(mobility="trace", trace_path=path)
        print(f"replaying real cabspotting data: {base.n_nodes} taxis")
    else:
        print(f"synthetic taxi fleet: {base.n_nodes} taxis "
              f"(EPFL substitute; see DESIGN.md §1)")

    print(f"{base.sim_time:.0f} s simulated, buffers "
          f"{base.buffer_bytes // (1024 * 1024)} MB, "
          f"L={base.initial_copies}\n")
    print(RunSummary.table_header())
    for policy in args.policies:
        summary = run_scenario(base.replace(policy=policy))
        print(summary.table_row())


if __name__ == "__main__":
    main()
