#!/usr/bin/env python
"""Quickstart: run one SDSRP simulation and print the paper's metrics.

This builds the paper's Table II scenario (random-waypoint, 100 nodes,
2.5 MB buffers, 0.5 MB messages, L = 32 copies) at a laptop-friendly reduced
scale and runs it once per buffer-management policy.

Run:  python examples/quickstart.py [--full]
"""

from __future__ import annotations

import argparse

from repro.experiments import random_waypoint_scenario, run_scenario, scale_scenario
from repro.reports.summary import RunSummary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper-scale scenario (minutes, not seconds)")
    parser.add_argument("--policy", default="sdsrp",
                        help="buffer policy: fifo / snw-o / snw-c / sdsrp / ...")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    config = random_waypoint_scenario(policy=args.policy, seed=args.seed)
    if not args.full:
        config = scale_scenario(config, node_factor=0.3, time_factor=0.25,
                                interval_factor=2.5)

    print(f"running {config.name}: {config.n_nodes} nodes, "
          f"{config.sim_time:.0f} s, policy={config.policy}")
    summary = run_scenario(config)

    print()
    print(RunSummary.table_header())
    print(summary.table_row())
    print()
    print(f"created           {summary.created}")
    print(f"delivered         {summary.delivered}")
    print(f"delivery ratio    {summary.delivery_ratio:.3f}")
    print(f"average hopcount  {summary.average_hopcount:.2f}")
    print(f"overhead ratio    {summary.overhead_ratio:.2f}")
    print(f"average latency   {summary.average_latency:.0f} s")
    print(f"contacts observed {summary.contacts}")
    print(f"drops             {summary.drops}")
    print(f"wall time         {summary.wall_seconds:.1f} s")


if __name__ == "__main__":
    main()
