#!/usr/bin/env python
"""A guided tour of the SDSRP priority machinery (Figs. 1, 2, 4, 5, 6).

Walks through the paper's illustrations with concrete numbers:

1. the Fig. 2 situation — why the priority order of two messages flips as
   copies and TTL run down;
2. the Fig. 4 curve — priority peaks at P(R) = 1 − 1/e, and the Eq. 13
   Taylor truncations converge to the idealization;
3. the Fig. 5 dropped-list gossip — two nodes exchanging drop records;
4. the Fig. 6 spray tree — estimating m_i from a copy's spray timestamps.

Run:  python examples/priority_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core.dropped_list import DroppedListStore
from repro.core.priority import (
    PEAK_P_R,
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_from_probabilities,
    priority_taylor,
)
from repro.core.spray_tree import estimate_infected

N = 100  # fleet size
LAM = 5e-5  # intermeeting rate (E(I) = 20000 s)


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def fig2_flip() -> None:
    section("Fig. 2 — the priority order flips over time")
    # At node c (early): M_i has more copies AND more TTL than M_j.
    print("early (node c):  M_i: C=8, R=12000   M_j: C=4, R=6000")
    ui = float(priority_closed_form(8, 12000.0, 2, 3, LAM, N))
    uj = float(priority_closed_form(4, 6000.0, 6, 4, LAM, N))
    print(f"  U_i = {ui:.5f}   U_j = {uj:.5f}   ->  "
          f"{'M_j' if uj > ui else 'M_i'} first")
    # At node e (late): M_i's copies and TTL are both nearly spent — it is
    # below the Fig. 4 peak now, while the widely-held M_j sits past it.
    print("late  (node e):  M_i: C=2, R=800     M_j: C=1, R=3000")
    ui = float(priority_closed_form(2, 800.0, 10, 2, LAM, N))
    uj = float(priority_closed_form(1, 3000.0, 50, 12, LAM, N))
    print(f"  U_i = {ui:.5f}   U_j = {uj:.5f}   ->  "
          f"{'M_j' if uj > ui else 'M_i'} first")
    print("  (a linear combination of C and R cannot produce this flip —")
    print("   the paper's Eq. 10 does)")


def fig4_peak() -> None:
    section("Fig. 4 — U(P(R)) peaks at 1 - 1/e and Taylor converges")
    p_r = np.linspace(0.0, 0.999, 2001)
    ideal = priority_from_probabilities(0.0, p_r, 1.0)
    peak = p_r[int(np.argmax(ideal))]
    print(f"  analytic peak: 1 - 1/e = {PEAK_P_R:.4f}; "
          f"grid argmax = {peak:.4f}")
    for terms in (1, 2, 4, 8, 32):
        approx = priority_taylor(0.0, p_r, 1.0, terms=terms)
        err = float(np.max(np.abs(approx - ideal)))
        print(f"  Taylor k={terms:<3} max error vs idealization = {err:.4f}")


def fig5_gossip() -> None:
    section("Fig. 5 — dropped-list exchange")
    a, b = DroppedListStore(0), DroppedListStore(1)
    a.record_drop("M7", now=120.0, expires_at=18000.0)
    b.record_drop("M3", now=200.0, expires_at=18000.0)
    b.record_drop("M7", now=260.0, expires_at=18000.0)
    print("  before contact: node0 knows drops of", sorted(
        {m for rec in a.known_records().values() for m in rec.dropped}))
    a.merge_from(b)
    b.merge_from(a)
    print("  after contact:  node0 counts d(M7) =", a.count_drops("M7"),
          " d(M3) =", a.count_drops("M3"))
    print("  node0 rejects re-receiving M7?", a.has_dropped("M7"))
    print("  node1 rejects M7 too (it dropped it itself)?", b.has_dropped("M7"))


def fig6_spray_tree() -> None:
    section("Fig. 6 — estimating m_i from the binary-spray timestamps")
    e_min = 1 / (LAM * (N - 1))
    print(f"  E(I_min) = E(I)/(N-1) = {e_min:.0f} s")
    sprays = [0.0, e_min, 2 * e_min, 3 * e_min]
    m = estimate_infected(sprays, now=3 * e_min, mean_min_intermeeting=e_min,
                          n_nodes=N)
    print(f"  sprays at t = 0, {e_min:.0f}, {2*e_min:.0f}, {3*e_min:.0f} s")
    print(f"  Eq. 15: m = 2^3 + 2^2 + 2^1 + 2^0 = {m}")
    pt = float(p_delivered(m, N))
    pr = float(p_remaining(2, 1_500.0, m + 1, LAM, N))
    print(f"  with C=2, R=1500 s and n = m+1 = {m + 1}:")
    print(f"  -> P(T) = {pt:.3f}, P(R) = {pr:.3f}, "
          f"U = {float(priority_from_probabilities(pt, pr, m + 1)):.5f}")


def main() -> None:
    fig2_flip()
    fig4_peak()
    fig5_gossip()
    fig6_spray_tree()
    print()


if __name__ == "__main__":
    main()
