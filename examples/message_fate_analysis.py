#!/usr/bin/env python
"""Which messages does each buffer policy sacrifice?

Runs the reduced Table-II scenario once per policy with the per-message
fate report attached, then contrasts the *profile* of delivered vs. lost
messages — relays invested, drop counts, latency — and exports one CSV per
policy for further analysis.

This is the diagnostic view behind the paper's overhead-ratio argument:
SDSRP wastes fewer relays on messages that end up undeliverable.

Run:  python examples/message_fate_analysis.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import statistics
from pathlib import Path

from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import REDUCED_INTERVAL_FACTOR
from repro.experiments.runner import build_scenario
from repro.reports.fate import MessageFateReport


def run_with_fates(policy: str, seed: int):
    config = scale_scenario(
        random_waypoint_scenario(policy=policy, seed=seed),
        node_factor=0.3, time_factor=0.25,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )
    built = build_scenario(config)
    report = MessageFateReport()
    report.subscribe(built.sim)
    built.sim.run()
    return report


def mean(values) -> float:
    values = list(values)
    return statistics.fmean(values) if values else float("nan")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default=None,
                        help="write per-policy fate CSVs here")
    parser.add_argument("--seed", type=int, default=8)
    parser.add_argument("--policies", nargs="+",
                        default=["fifo", "snw-o", "snw-c", "sdsrp"])
    args = parser.parse_args()

    print(f"{'policy':<10}{'deliv':>7}{'lost':>6}{'relays/deliv':>14}"
          f"{'relays/lost':>13}{'wasted%':>9}{'med latency':>13}")
    for policy in args.policies:
        report = run_with_fates(policy, args.seed)
        delivered = report.delivered_fates()
        lost = report.undelivered_fates()
        relays_delivered = sum(f.relays for f in delivered)
        relays_lost = sum(f.relays for f in lost)
        total = relays_delivered + relays_lost
        wasted = 100.0 * relays_lost / total if total else 0.0
        latencies = sorted(f.latency for f in delivered if f.latency is not None)
        med_latency = latencies[len(latencies) // 2] if latencies else float("nan")
        print(f"{policy:<10}{len(delivered):>7}{len(lost):>6}"
              f"{mean(f.relays for f in delivered):>14.2f}"
              f"{mean(f.relays for f in lost):>13.2f}"
              f"{wasted:>9.1f}{med_latency:>13.0f}")
        if args.out_dir:
            out = Path(args.out_dir)
            out.mkdir(parents=True, exist_ok=True)
            report.write_csv(out / f"fates_{policy}.csv")

    print("\n'wasted%' = share of completed relays spent on messages that")
    print("were never delivered — the mechanism behind the overhead-ratio")
    print("differences in the paper's Fig. 8(c).")


if __name__ == "__main__":
    main()
