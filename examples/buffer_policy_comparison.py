#!/usr/bin/env python
"""The paper's core experiment in miniature: four buffer policies head-to-head.

Reproduces the Fig. 8 comparison (delivery ratio / average hopcounts /
overhead ratio for FIFO, Spray-and-Wait-O, Spray-and-Wait-C and SDSRP) on a
reduced random-waypoint scenario with several replicate seeds, and prints
the mean of each metric per policy.

Run:  python examples/buffer_policy_comparison.py [--replicates N]
"""

from __future__ import annotations

import argparse

from repro.experiments import random_waypoint_scenario, scale_scenario
from repro.experiments.figures import PAPER_POLICIES, REDUCED_INTERVAL_FACTOR
from repro.experiments.sweep import replicate, run_many, summarize_replicates

METRICS = ("delivery_ratio", "average_hopcount", "overhead_ratio")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicates", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--policies", nargs="+",
                        default=list(PAPER_POLICIES) + ["sdsrp-oracle"])
    args = parser.parse_args()

    base = scale_scenario(
        random_waypoint_scenario(seed=args.seed),
        node_factor=0.4,
        time_factor=1 / 3,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )
    print(f"scenario: {base.name} — {base.n_nodes} nodes, "
          f"{base.sim_time:.0f} s, L={base.initial_copies}, "
          f"{args.replicates} replicates per policy\n")

    header = f"{'policy':<14}" + "".join(f"{m:>20}" for m in METRICS)
    print(header)
    print("-" * len(header))
    for policy in args.policies:
        configs = replicate(base.replace(policy=policy), args.replicates)
        summaries = run_many(configs, workers=args.workers)
        row = f"{policy:<14}"
        for metric in METRICS:
            row += f"{summarize_replicates(summaries, metric):>20.3f}"
        print(row)

    print()
    print("Expected shape (paper Fig. 8): sdsrp has the highest delivery")
    print("ratio and the lowest overhead ratio; snw-c the lowest hopcounts;")
    print("plain Spray-and-Wait (fifo) the highest hopcounts.  sdsrp-oracle")
    print("replaces the distributed estimators with exact global knowledge")
    print("and bounds what the policy could achieve.")


if __name__ == "__main__":
    main()
