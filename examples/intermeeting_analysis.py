#!/usr/bin/env python
"""Fig. 3 of the paper: intermeeting times are approximately exponential.

Runs traffic-free mobility simulations under both scenarios (random-waypoint
and the synthetic taxi fleet standing in for the EPFL trace), collects pair
intermeeting samples, fits an exponential by maximum likelihood, and prints
an ASCII histogram with the fitted curve — the textual equivalent of the
paper's Fig. 3(a)/(b).

Run:  python examples/intermeeting_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import fit_exponential, histogram_pdf
from repro.experiments.figures import fig3_intermeeting


def ascii_histogram(samples: np.ndarray, fit, bins: int = 14, width: int = 46) -> None:
    centers, density = histogram_pdf(samples, bins=bins)
    fitted = fit.pdf(centers)
    peak = max(density.max(), fitted.max())
    for c, d, f in zip(centers, density, fitted):
        bar = "#" * int(round(width * d / peak))
        marker_pos = int(round(width * f / peak))
        line = list(bar.ljust(width))
        if 0 <= marker_pos < width:
            line[marker_pos] = "*"
        print(f"{c:9.0f}s |{''.join(line)}|")
    print(f"{'':9}   ('#' empirical density, '*' fitted λe^(-λx))")


def main() -> None:
    for scenario, label in (("rwp", "random-waypoint (Fig. 3a)"),
                            ("epfl", "taxi fleet / EPFL substitute (Fig. 3b)")):
        fit, samples = fig3_intermeeting(scenario=scenario, seed=4)
        print(f"== {label} ==")
        print(f"samples: {fit.n_samples}")
        print(f"E(I) = {fit.mean:.0f} s   λ = {fit.rate:.3e} /s")
        print(f"Kolmogorov-Smirnov: D = {fit.ks_statistic:.3f} "
              f"(p = {fit.ks_pvalue:.3g})")
        ascii_histogram(samples, fit)
        print()

    print("The paper's Eq. 3 then gives the minimum-intermeeting rate")
    print("λ_min = (N-1)·λ, the spray cadence used by Eqs. 6 and 15.")
    # Show the derived quantities for the paper's N values.
    fit, _ = fig3_intermeeting(scenario="rwp", seed=4)
    for n in (100, 200):
        print(f"  N={n}: E(I_min) = {fit.mean / (n - 1):8.1f} s, "
              f"λ_min = {(n - 1) * fit.rate:.3e} /s")


if __name__ == "__main__":
    main()
