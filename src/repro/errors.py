"""Exception hierarchy for the :mod:`repro` DTN simulator.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch simulator failures without masking programming errors (``TypeError``
etc. are deliberately *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario / component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class BufferError_(ReproError):
    """Buffer accounting violation (offered message cannot fit at all, etc.)."""


class MessageNotFoundError(BufferError_, KeyError):
    """Lookup of a message id in a buffer failed."""


class DuplicateMessageError(BufferError_):
    """A message id was inserted twice into the same buffer."""


class TransferError(ReproError):
    """Transfer manager misuse (e.g. starting a transfer on a dead link)."""


class TraceFormatError(ReproError, ValueError):
    """An external movement/contact trace file could not be parsed."""


class SchedulingError(ReproError):
    """Event queue misuse (e.g. scheduling into the past)."""
