"""Exception hierarchy for the :mod:`repro` DTN simulator.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch simulator failures without masking programming errors (``TypeError``
etc. are deliberately *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario / component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class ReproBufferError(ReproError):
    """Buffer accounting violation (offered message cannot fit at all, etc.)."""


class MessageNotFoundError(ReproBufferError, KeyError):
    """Lookup of a message id in a buffer failed."""


class DuplicateMessageError(ReproBufferError):
    """A message id was inserted twice into the same buffer."""


class TransferError(ReproError):
    """Transfer manager misuse (e.g. starting a transfer on a dead link)."""


class TraceFormatError(ReproError, ValueError):
    """An external movement/contact trace file could not be parsed."""


class SchedulingError(ReproError):
    """Event queue misuse (e.g. scheduling into the past)."""


class ObsFormatError(ReproError, ValueError):
    """An observability artifact (event trace / metrics export) could not be
    parsed — malformed JSONL, truncated records, missing required keys."""


class FaultInjectionError(ReproError):
    """Fault injector misuse (double start, unsupported world, etc.)."""


class SweepInterrupted(ReproError):
    """A sweep item could not complete (timeout / worker death) and no
    failure handler was installed to absorb it."""


class SnapshotError(ReproError):
    """A simulation snapshot could not be written, read, or restored —
    unknown schema version, checksum mismatch, truncated file, or state
    that does not match the scenario it claims to continue."""


class InvariantViolation(SimulationError):
    """The runtime sanitizer caught a broken simulation invariant.

    Raised by :class:`repro.analysis.sanitizer.Sanitizer` with enough
    structure to locate the bug: which invariant, on which node, for which
    message, at what simulation time.  When the failing run carried an
    event trace, the runner attaches the last trace records as
    :attr:`trace_tail` before the exception propagates (see
    docs/observability.md).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        node_id: int | None = None,
        msg_id: str | None = None,
        time: float | None = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.node_id = node_id
        self.msg_id = msg_id
        self.time = time
        #: Last-N event-trace records leading up to the violation, filled in
        #: by :func:`repro.experiments.runner.run_built` when tracing is on.
        self.trace_tail: list[dict] | None = None
        where = []
        if node_id is not None:
            where.append(f"node={node_id}")
        if msg_id is not None:
            where.append(f"msg={msg_id}")
        if time is not None:
            where.append(f"t={time:.3f}")
        suffix = f" [{' '.join(where)}]" if where else ""
        super().__init__(f"{invariant}: {detail}{suffix}")


def __getattr__(name: str) -> type[ReproError]:
    """Deprecated aliases kept importable for external users.

    ``BufferError_`` (the old trailing-underscore name that shadowed the
    :class:`BufferError` builtin) emits :class:`DeprecationWarning` on
    access; first-party code must use :class:`ReproBufferError` directly
    (enforced by reprolint REP007).
    """
    if name == "BufferError_":
        import warnings

        warnings.warn(
            "repro.errors.BufferError_ is deprecated; use "
            "repro.errors.ReproBufferError",
            DeprecationWarning,
            stacklevel=2,
        )
        return ReproBufferError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
