"""Exception hierarchy for the :mod:`repro` DTN simulator.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch simulator failures without masking programming errors (``TypeError``
etc. are deliberately *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario / component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class ReproBufferError(ReproError):
    """Buffer accounting violation (offered message cannot fit at all, etc.)."""


#: Deprecated alias — the old trailing-underscore name confusingly shadowed
#: the :class:`BufferError` builtin.  Kept for backward compatibility.
BufferError_ = ReproBufferError


class MessageNotFoundError(ReproBufferError, KeyError):
    """Lookup of a message id in a buffer failed."""


class DuplicateMessageError(ReproBufferError):
    """A message id was inserted twice into the same buffer."""


class TransferError(ReproError):
    """Transfer manager misuse (e.g. starting a transfer on a dead link)."""


class TraceFormatError(ReproError, ValueError):
    """An external movement/contact trace file could not be parsed."""


class SchedulingError(ReproError):
    """Event queue misuse (e.g. scheduling into the past)."""


class FaultInjectionError(ReproError):
    """Fault injector misuse (double start, unsupported world, etc.)."""


class SweepInterrupted(ReproError):
    """A sweep item could not complete (timeout / worker death) and no
    failure handler was installed to absorb it."""
