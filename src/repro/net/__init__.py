"""Network stack: messages, buffers, transfers and traffic generation.

* :class:`repro.net.message.Message` — a *copy* of a DTN message held by one
  node, carrying the Spray-and-Wait copy token count and its spray history.
* :class:`repro.net.buffer.MessageBuffer` — byte-exact capacity accounting.
* :class:`repro.net.transfer.TransferManager` — bandwidth-limited,
  abort-on-link-down message transfers.
* :class:`repro.net.generator.MessageGenerator` — periodic random traffic as
  in Table II/III of the paper.
"""

from repro.net.buffer import MessageBuffer
from repro.net.generator import MessageGenerator, TrafficSpec
from repro.net.message import Message
from repro.net.outcomes import (
    MODE_COPY,
    MODE_DELIVERY,
    MODE_MOVE,
    MODE_SPLIT,
    ReceiveOutcome,
)
from repro.net.transfer import Transfer, TransferManager

__all__ = [
    "MODE_COPY",
    "MODE_DELIVERY",
    "MODE_MOVE",
    "MODE_SPLIT",
    "Message",
    "MessageBuffer",
    "MessageGenerator",
    "ReceiveOutcome",
    "Transfer",
    "TrafficSpec",
    "TransferManager",
]
