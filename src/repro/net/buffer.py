"""Byte-exact message buffer.

The buffer only does storage and accounting; *which* message to drop when
space runs out is the buffer policy's job (see :mod:`repro.policies`).  It
preserves insertion order so FIFO-style policies can rank without extra
bookkeeping, and tracks "pinned" messages (currently being transmitted) that
must not be dropped mid-transfer.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import (
    DuplicateMessageError,
    MessageNotFoundError,
    ReproBufferError,
)
from repro.net.message import Message


class MessageBuffer:
    """A capacity-limited store of :class:`Message` copies.

    Parameters
    ----------
    capacity:
        Capacity in bytes. Must be positive.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ReproBufferError(f"buffer capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._messages: dict[str, Message] = {}  # insertion-ordered
        self._used = 0
        self._pins: dict[str, int] = {}

    # -- capacity ----------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes currently occupied."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes currently available."""
        return self.capacity - self._used

    def fits(self, message: Message) -> bool:
        """True if *message* fits in the current free space."""
        return message.size <= self.free

    def could_ever_fit(self, message: Message) -> bool:
        """True if *message* would fit in an empty buffer."""
        return message.size <= self.capacity

    # -- storage -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._messages

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages.values())

    def messages(self) -> list[Message]:
        """Snapshot of stored messages in insertion (arrival) order."""
        return list(self._messages.values())

    def ids(self) -> list[str]:
        """Message ids in insertion order."""
        return list(self._messages.keys())

    def get(self, msg_id: str) -> Message:
        """Return the stored copy for *msg_id*.

        Raises :class:`MessageNotFoundError` if absent.
        """
        try:
            return self._messages[msg_id]
        except KeyError:
            raise MessageNotFoundError(msg_id) from None

    def add(self, message: Message) -> None:
        """Insert *message*; the caller must have ensured space.

        Raises :class:`DuplicateMessageError` on id collision and
        :class:`ReproBufferError` if the message does not fit — callers are
        expected to run the drop policy first, so an overflow here is a bug.
        """
        if message.msg_id in self._messages:
            raise DuplicateMessageError(message.msg_id)
        if message.size > self.free:
            raise ReproBufferError(
                f"message {message.msg_id} ({message.size}B) exceeds free "
                f"space ({self.free}B of {self.capacity}B)"
            )
        self._messages[message.msg_id] = message
        self._used += message.size

    def remove(self, msg_id: str) -> Message:
        """Remove and return the copy for *msg_id*.

        Pinned messages cannot be removed (see :meth:`pin`).
        """
        if self.is_pinned(msg_id):
            raise ReproBufferError(f"message {msg_id} is pinned (in transfer)")
        message = self._messages.pop(msg_id, None)
        if message is None:
            raise MessageNotFoundError(msg_id)
        self._used -= message.size
        return message

    # -- pinning (active transfers) -----------------------------------------

    def pin(self, msg_id: str) -> None:
        """Protect *msg_id* from removal while a transfer is in flight.

        Pins are counted, so concurrent transfers of the same message each
        pin/unpin independently.
        """
        if msg_id not in self._messages:
            raise MessageNotFoundError(msg_id)
        self._pins[msg_id] = self._pins.get(msg_id, 0) + 1

    def unpin(self, msg_id: str) -> None:
        """Release one pin on *msg_id* (idempotent for unknown ids)."""
        count = self._pins.get(msg_id, 0)
        if count <= 1:
            self._pins.pop(msg_id, None)
        else:
            self._pins[msg_id] = count - 1

    def is_pinned(self, msg_id: str) -> bool:
        """True while at least one transfer holds *msg_id*."""
        return self._pins.get(msg_id, 0) > 0

    def pinned_ids(self) -> list[str]:
        """Ids currently holding at least one pin (sanitizer/debug view)."""
        return [msg_id for msg_id, count in self._pins.items() if count > 0]

    def droppable(self) -> list[Message]:
        """Messages eligible for policy-driven dropping (unpinned)."""
        return [m for m in self._messages.values() if not self.is_pinned(m.msg_id)]

    def expired(self, now: float) -> list[Message]:
        """Messages whose TTL has elapsed (pinned ones included)."""
        return [m for m in self._messages.values() if m.is_expired(now)]

    def occupancy(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self._used / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MessageBuffer {len(self)} msgs, {self._used}/{self.capacity}B>"
        )
