"""Bandwidth-limited message transfers.

A transfer occupies the sender's interface for ``size / bandwidth`` seconds
(paper: 0.5 MB at 250 kbit/s ≈ 16.8 s — bandwidth, not latency, is the
scarce resource).  Transfers abort when the link drops mid-flight; the
message is pinned in the sender's buffer for the duration so the drop policy
cannot evict bytes that are on the air.

Completion runs the two-phase spray-token protocol: the receiver first
decides (duplicate / dropped-list / overflow per Algorithm 1), and only then
are the sender's tokens committed.  A newcomer that *loses the drop
decision* still consumes tokens — the copy existed and was destroyed, which
is exactly the paper's :math:`\\Delta n_i = -1` drop semantics — whereas a
duplicate race (receiver got the message from a third party mid-transfer)
aborts without token loss, like ONE's denied transfers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.events import Event
from repro.engine.simulator import Simulator
from repro.errors import TransferError
from repro.net.message import Message
from repro.obs.profiler import timed
from repro.net.outcomes import (
    DROP_TTL,
    MODE_COPY,
    MODE_DELIVERY,
    MODE_MOVE,
    MODE_SPLIT,
    ReceiveOutcome,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.world.node import Node

#: Outcomes that mean "the transfer happened" for relay accounting (ONE
#: increments its relayed counter on completion even when the receiving
#: policy immediately drops the newcomer).
_PROCESSED = (
    ReceiveOutcome.ACCEPTED,
    ReceiveOutcome.DELIVERED,
    ReceiveOutcome.REJECTED_OVERFLOW,
)


class Transfer:
    """One in-flight message transmission."""

    __slots__ = (
        "sender", "receiver", "message", "mode", "started_at", "eta", "event",
        "seq",
    )

    def __init__(
        self,
        sender: Node,
        receiver: Node,
        message: Message,
        mode: str,
        started_at: float,
        eta: float,
        seq: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.message = message
        self.mode = mode
        self.started_at = started_at
        self.eta = eta
        self.event: Event | None = None
        #: Manager-assigned serial; identifies this transfer in sanitizer
        #: double-commit checks and debugging output.
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transfer {self.message.msg_id} {self.sender.id}->{self.receiver.id} "
            f"{self.mode} eta={self.eta:.1f}>"
        )


class TransferManager:
    """Tracks the (at most one) outgoing transfer per node."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._active: dict[int, Transfer] = {}  # keyed by sender id
        self._seq = 0
        #: Optional fault model (see :mod:`repro.faults`): an object with a
        #: ``transfer_fails(transfer) -> bool`` method consulted at completion
        #: time.  A failed transfer is truncated on the air: the receiver
        #: never materializes the copy and, because the spray-token protocol
        #: is two-phase, the sender's tokens are left uncommitted.
        self.fault_model: object | None = None

    # -- queries -----------------------------------------------------------

    def active_transfer(self, node: Node) -> Transfer | None:
        """The node's outgoing transfer, if any."""
        return self._active.get(node.id)

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- lifecycle -----------------------------------------------------------

    def start(self, sender: Node, receiver: Node, message: Message, mode: str) -> Transfer:
        """Begin transmitting *message* from *sender* to *receiver*."""
        if sender.sending or sender.id in self._active:
            raise TransferError(f"node {sender.id} is already sending")
        if not sender.is_connected_to(receiver):
            raise TransferError(
                f"no link {sender.id}->{receiver.id}; cannot start transfer"
            )
        if message.msg_id not in sender.buffer:
            raise TransferError(
                f"message {message.msg_id} not in node {sender.id} buffer"
            )
        if mode not in (MODE_SPLIT, MODE_COPY, MODE_MOVE, MODE_DELIVERY):
            raise TransferError(f"unknown transfer mode {mode!r}")
        duration = sender.radio.transfer_time(message.size, receiver.radio)
        self._seq += 1
        transfer = Transfer(
            sender, receiver, message, mode, self.sim.now,
            self.sim.now + duration, seq=self._seq,
        )
        sender.buffer.pin(message.msg_id)
        sender.sending = True
        self._active[sender.id] = transfer
        transfer.event = self.sim.schedule_in(duration, self._complete, transfer)
        self.sim.listeners.emit("transfer.started", transfer)
        return transfer

    def abort_for_link(self, a: Node, b: Node) -> None:
        """Abort any in-flight transfer riding the (a, b) link (both ways)."""
        for sender, receiver in ((a, b), (b, a)):
            transfer = self._active.get(sender.id)
            if transfer is not None and transfer.receiver.id == receiver.id:
                self._teardown(transfer)
                if transfer.event is not None:
                    self.sim.queue.cancel(transfer.event)
                self.sim.listeners.emit("transfer.aborted", transfer)
                # The sender may have other neighbors to serve.
                if sender.router is not None:
                    sender.router.try_send()

    # -- completion -----------------------------------------------------------

    def _teardown(self, transfer: Transfer) -> None:
        self._active.pop(transfer.sender.id, None)
        transfer.sender.sending = False
        transfer.sender.buffer.unpin(transfer.message.msg_id)

    def _complete(self, transfer: Transfer) -> None:
        # Profiling hook: completion runs the whole receive path (policy
        # decisions inside it are charged to "policy" by the nesting rules).
        with timed(self.sim.profiler, "transfer"):
            self._complete_inner(transfer)

    def _complete_inner(self, transfer: Transfer) -> None:
        sender, receiver = transfer.sender, transfer.receiver
        message, mode = transfer.message, transfer.mode
        assert sender.router is not None and receiver.router is not None
        now = self.sim.now
        self._teardown(transfer)

        # Injected mid-transfer fault: the payload was truncated on the air.
        # The receiver discards the partial copy; no tokens were committed
        # (two-phase split), so spray accounting is untouched.
        if self.fault_model is not None and self.fault_model.transfer_fails(  # type: ignore[attr-defined]
            transfer
        ):
            self.sim.listeners.emit("transfer.aborted", transfer)
            sender.router.try_send()
            receiver.router.try_send()
            return

        # The payload expired on the air: the sender's copy dies too.
        if message.is_expired(now):
            if message.msg_id in sender.buffer:
                sender.router.drop_message(message, DROP_TTL)
            self.sim.listeners.emit("transfer.aborted", transfer)
            sender.router.try_send()
            return

        # Re-check (a third party may have infected the receiver mid-flight).
        if not receiver.router.will_accept(message, sender):
            self.sim.listeners.emit("transfer.aborted", transfer)
            sender.router.try_send()
            receiver.router.try_send()
            return

        if mode == MODE_SPLIT:
            payload = message.split_child(now)
        else:
            payload = message.forward_clone(now)

        outcome = receiver.router.receive(payload, sender)
        if outcome in _PROCESSED:
            if mode == MODE_SPLIT:
                # Commit the sender-side token halving even when the newcomer
                # lost the drop decision: that copy existed and was dropped
                # (the paper's Δn_i = -1), not refused on the air.  The
                # commit event precedes the mutation so the sanitizer can
                # catch a double commit before tokens are destroyed.
                self.sim.listeners.emit("transfer.commit", transfer)
                message.apply_split(now)
            self.sim.listeners.emit(
                "message.relayed", payload, sender, receiver, outcome
            )
            sender.router.after_transfer(message, receiver, mode, outcome)
        else:
            self.sim.listeners.emit("transfer.aborted", transfer)

        sender.router.try_send()
        receiver.router.try_send()
