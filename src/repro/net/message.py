"""DTN message copies.

A :class:`Message` instance represents one node's *copy* of a logical message
(identified by :attr:`Message.msg_id`).  Copy-local state — the
Spray-and-Wait token count :attr:`copies`, the :attr:`hop_count`, and the
:attr:`spray_times` lineage used by SDSRP's :math:`m_i(T_i)` estimator
(Eq. 15 / Fig. 6 of the paper) — lives on the instance; logical-message state
(source, destination, size, TTL) is shared immutably by all copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Message:
    """One node's copy of a DTN message.

    Parameters mirror the paper's notation: ``initial_copies`` is :math:`C`,
    :attr:`copies` is :math:`C_i`, ``ttl`` is :math:`TTL_i` (seconds),
    :meth:`remaining_ttl` is :math:`R_i` and :meth:`elapsed` is :math:`T_i`.
    """

    msg_id: str
    source: int
    destination: int
    size: int
    created_at: float
    ttl: float
    initial_copies: int = 1
    copies: int = 1
    hop_count: int = 0
    #: Simulation times at which this copy's lineage was binary-sprayed
    #: (both sides of a split record the split time). Used by Eq. 15.
    spray_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"message size must be positive: {self.size}")
        if self.ttl <= 0:
            raise ConfigurationError(f"message ttl must be positive: {self.ttl}")
        if self.initial_copies < 1:
            raise ConfigurationError(
                f"initial_copies must be >= 1: {self.initial_copies}"
            )
        if not 1 <= self.copies <= self.initial_copies:
            raise ConfigurationError(
                f"copies must be in [1, {self.initial_copies}]: {self.copies}"
            )
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")

    # -- paper notation helpers -------------------------------------------

    def elapsed(self, now: float) -> float:
        """:math:`T_i` — time since generation (clamped at 0)."""
        return max(0.0, now - self.created_at)

    def remaining_ttl(self, now: float) -> float:
        """:math:`R_i` — remaining time to live (can be negative if expired)."""
        return self.ttl - self.elapsed(now)

    def expires_at(self) -> float:
        """Absolute expiry time."""
        return self.created_at + self.ttl

    def is_expired(self, now: float) -> bool:
        """True once the TTL has fully elapsed."""
        return now >= self.expires_at()

    @property
    def can_spray(self) -> bool:
        """True while this copy may still replicate (binary spray phase)."""
        return self.copies > 1

    # -- replication -------------------------------------------------------

    def split_counts(self) -> tuple[int, int]:
        """``(keep, give)`` token counts for a binary split.

        The sender keeps ``ceil(copies/2)`` tokens and the peer receives
        ``floor(copies/2)`` (Spyropoulos et al.'s binary mode).
        """
        if not self.can_spray:
            raise ConfigurationError(
                f"cannot split message {self.msg_id} with copies={self.copies}"
            )
        give = self.copies // 2
        return self.copies - give, give

    def split_child(self, now: float) -> "Message":
        """Build (without committing) the copy a binary split hands the peer.

        Pure: the sender copy is unchanged until :meth:`apply_split` is
        called.  The two-phase protocol lets the receiver's drop policy
        inspect the incoming copy and reject it without losing tokens.
        Both lineages record the split time for the Eq. 15 infection-scope
        estimate, and the peer copy's hop count increments.
        """
        _, give = self.split_counts()
        return Message(
            msg_id=self.msg_id,
            source=self.source,
            destination=self.destination,
            size=self.size,
            created_at=self.created_at,
            ttl=self.ttl,
            initial_copies=self.initial_copies,
            copies=give,
            hop_count=self.hop_count + 1,
            spray_times=[*self.spray_times, now],
        )

    def apply_split(self, now: float) -> None:
        """Commit a binary split on the sender side (keep ``ceil(copies/2)``)."""
        keep, _ = self.split_counts()
        self.copies = keep
        self.spray_times.append(now)

    def split(self, now: float) -> "Message":
        """Convenience: :meth:`split_child` + :meth:`apply_split` in one step."""
        child = self.split_child(now)
        self.apply_split(now)
        return child

    def forward_clone(self, now: float) -> "Message":
        """Clone for a non-splitting forward (direct delivery / wait phase).

        The receiving side gets the full remaining token count; used when the
        peer is the destination (delivery) or by routers without copy limits
        (Epidemic), where ``copies`` stays 1.
        """
        return Message(
            msg_id=self.msg_id,
            source=self.source,
            destination=self.destination,
            size=self.size,
            created_at=self.created_at,
            ttl=self.ttl,
            initial_copies=self.initial_copies,
            copies=self.copies,
            hop_count=self.hop_count + 1,
            spray_times=list(self.spray_times),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.msg_id} {self.source}->{self.destination} "
            f"C={self.copies}/{self.initial_copies} hops={self.hop_count}>"
        )
