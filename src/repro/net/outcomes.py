"""Message-exchange vocabulary shared by the transfer and routing layers.

Lives in its own import-free module so :mod:`repro.net.transfer` and
:mod:`repro.routing.base` can both depend on it without a cycle.
"""

from __future__ import annotations

import enum


class ReceiveOutcome(enum.Enum):
    """Result of offering a message copy to a node."""

    ACCEPTED = "accepted"
    DELIVERED = "delivered"
    DUPLICATE = "duplicate"
    ALREADY_DELIVERED = "already_delivered"
    REJECTED_POLICY = "rejected_policy"  # e.g. in the node's dropped list
    REJECTED_OVERFLOW = "rejected_overflow"  # newcomer lost the drop decision
    EXPIRED = "expired"


#: Transfer modes: how the sender-side copy is treated on completion.
MODE_SPLIT = "split"  # binary spray: sender halves its tokens
MODE_COPY = "copy"  # replicate without token accounting (Epidemic)
MODE_MOVE = "move"  # forward: sender deletes its copy (First Contact/Focus)
MODE_DELIVERY = "delivery"  # peer is the destination; sender deletes

ALL_MODES = (MODE_SPLIT, MODE_COPY, MODE_MOVE, MODE_DELIVERY)
