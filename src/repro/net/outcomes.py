"""Message-exchange vocabulary shared by the transfer and routing layers.

Lives in its own import-free module so :mod:`repro.net.transfer` and
:mod:`repro.routing.base` can both depend on it without a cycle.
"""

from __future__ import annotations

import enum


class ReceiveOutcome(enum.Enum):
    """Result of offering a message copy to a node."""

    ACCEPTED = "accepted"
    DELIVERED = "delivered"
    DUPLICATE = "duplicate"
    ALREADY_DELIVERED = "already_delivered"
    REJECTED_POLICY = "rejected_policy"  # e.g. in the node's dropped list
    REJECTED_OVERFLOW = "rejected_overflow"  # newcomer lost the drop decision
    EXPIRED = "expired"


#: Transfer modes: how the sender-side copy is treated on completion.
MODE_SPLIT = "split"  # binary spray: sender halves its tokens
MODE_COPY = "copy"  # replicate without token accounting (Epidemic)
MODE_MOVE = "move"  # forward: sender deletes its copy (First Contact/Focus)
MODE_DELIVERY = "delivery"  # peer is the destination; sender deletes

ALL_MODES = (MODE_SPLIT, MODE_COPY, MODE_MOVE, MODE_DELIVERY)

#: Drop reasons: the vocabulary of the ``message.dropped`` event.  These feed
#: ``RunSummary.drops`` and SDSRP's dropped-list gossip, so drop sites must
#: reference the constants — a typo'd literal would silently split the
#: counters (enforced by reprolint REP005).
DROP_OVERFLOW = "overflow"  # evicted (or refused) by the buffer policy
DROP_TTL = "ttl"  # time-to-live elapsed
DROP_NO_ROOM = "no_room"  # locally generated message could not be stored
DROP_FAULT = "fault"  # destroyed by fault injection (buffer wipe)

DROP_REASONS = (DROP_OVERFLOW, DROP_TTL, DROP_NO_ROOM, DROP_FAULT)
