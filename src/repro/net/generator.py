"""Traffic generation.

The paper's workload: "messages with random sources and destinations are
generated periodically" with an inter-generation gap drawn uniformly from an
interval (e.g. "one message every 25-35 seconds", Table II), fixed size
0.5 MB, fixed TTL 300 min, and L initial copies placed at the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.obs.profiler import timed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.world.node import Node


@dataclass(frozen=True)
class TrafficSpec:
    """Workload parameters (Table II / Table III rows).

    The paper uses a fixed 0.5 MB message size; ``size_range`` optionally
    draws sizes uniformly instead (an extension workload under which
    set-based drop strategies like the knapsack variant differ from plain
    ranking).
    """

    interval_range: tuple[float, float]
    message_size: int
    ttl: float
    initial_copies: int
    size_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        lo, hi = self.interval_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad interval_range: {self.interval_range}")
        if self.message_size <= 0:
            raise ConfigurationError(f"bad message_size: {self.message_size}")
        if self.ttl <= 0:
            raise ConfigurationError(f"bad ttl: {self.ttl}")
        if self.initial_copies < 1:
            raise ConfigurationError(f"bad initial_copies: {self.initial_copies}")
        if self.size_range is not None:
            slo, shi = self.size_range
            if not 0 < slo <= shi:
                raise ConfigurationError(f"bad size_range: {self.size_range}")

    def draw_size(self, rng: np.random.Generator) -> int:
        """The next message's size in bytes."""
        if self.size_range is None:
            return self.message_size
        slo, shi = self.size_range
        return int(rng.integers(slo, shi + 1))


class MessageGenerator:
    """Creates messages at random nodes on the spec's schedule."""

    def __init__(
        self,
        sim: Simulator,
        nodes: list[Node],
        spec: TrafficSpec,
        rng: np.random.Generator,
        id_prefix: str = "M",
    ) -> None:
        if len(nodes) < 2:
            raise ConfigurationError("traffic needs at least 2 nodes")
        self.sim = sim
        self.nodes = nodes
        self.spec = spec
        self.rng = rng
        self.id_prefix = id_prefix
        self.created = 0
        #: Time of the next generation event, recorded even when it falls
        #: past the horizon (so a restore with an extended horizon re-arms
        #: the exact draw this generator already consumed).
        self._next_at = float("nan")

    def start(self) -> None:
        """Arm the first generation event."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        lo, hi = self.spec.interval_range
        gap = float(self.rng.uniform(lo, hi))
        when = self.sim.now + gap
        self._next_at = when
        if when <= self.sim.end_time:
            self.sim.schedule_at(when, self._generate)

    def rearm(self) -> None:
        """Re-schedule the pending generation event (snapshot restore)."""
        when = self._next_at
        if when == when and when <= self.sim.end_time:
            self.sim.schedule_at(when, self._generate)

    def _generate(self) -> None:
        with timed(self.sim.profiler, "traffic"):
            self._generate_inner()
        self._schedule_next()

    def _generate_inner(self) -> None:
        src_idx, dst_idx = self.rng.choice(len(self.nodes), size=2, replace=False)
        source = self.nodes[int(src_idx)]
        dest = self.nodes[int(dst_idx)]
        self.created += 1
        message = Message(
            msg_id=f"{self.id_prefix}{self.created}",
            source=source.id,
            destination=dest.id,
            size=self.spec.draw_size(self.rng),
            created_at=self.sim.now,
            ttl=self.spec.ttl,
            initial_copies=self.spec.initial_copies,
            copies=self.spec.initial_copies,
        )
        assert source.router is not None
        source.router.create_message(message)
