"""PRoPHET routing (Lindgren et al.) — probabilistic routing baseline.

The paper's related work improves Spray-and-Wait using "the delivery
predictability of nodes" ([19], [20]); PRoPHET is the canonical
delivery-predictability protocol those schemes borrow from, so it is
included as a substrate baseline.

Each node maintains delivery predictabilities P(a, b) ∈ [0, 1]:

* **direct update** on every encounter: ``P += (1 - P) * P_INIT``;
* **aging** with time: ``P *= GAMMA ** Δt`` (Δt in seconds);
* **transitivity** through the encountered peer:
  ``P(a, c) = max(P(a, c), P(a, b) · P(b, c) · BETA)``.

A copy is *replicated* to a peer whose predictability for the destination
exceeds the holder's.  Buffer scheduling/drop stay policy-driven like every
other router here, so PRoPHET also composes with SDSRP and the baselines.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy
from repro.routing.base import MODE_COPY, Router
from repro.world.node import Node

#: Canonical parameters from the PRoPHET internet draft.
P_INIT = 0.75
GAMMA = 0.98  # per aging unit
BETA = 0.25
#: Seconds per aging time unit (the draft leaves this deployment-defined).
AGING_UNIT = 30.0


class ProphetRouter(Router):
    """Delivery-predictability replication."""

    name = "prophet"

    def __init__(
        self,
        node: Node,
        policy: BufferPolicy,
        p_init: float = P_INIT,
        gamma: float = GAMMA,
        beta: float = BETA,
        aging_unit: float = AGING_UNIT,
    ) -> None:
        super().__init__(node, policy)
        self.p_init = float(p_init)
        self.gamma = float(gamma)
        self.beta = float(beta)
        self.aging_unit = float(aging_unit)
        self._preds: dict[int, float] = {}
        self._last_aged = 0.0

    # -- predictability table ------------------------------------------------

    def predictability(self, dest: int) -> float:
        """Current (aged) delivery predictability for *dest*."""
        self._age()
        return self._preds.get(dest, 0.0)

    def _age(self) -> None:
        now = self.now
        elapsed = now - self._last_aged
        if elapsed <= 0:
            return
        factor = self.gamma ** (elapsed / self.aging_unit)
        for dest in list(self._preds):
            value = self._preds[dest] * factor
            if value < 1e-6:
                del self._preds[dest]
            else:
                self._preds[dest] = value
        self._last_aged = now

    def on_link_up(self, peer: Node) -> None:
        self._age()
        # Direct update for the encountered peer.
        old = self._preds.get(peer.id, 0.0)
        self._preds[peer.id] = old + (1.0 - old) * self.p_init
        # Transitive update through the peer's table.
        peer_router = peer.router
        if isinstance(peer_router, ProphetRouter):
            p_ab = self._preds[peer.id]
            for dest, p_bc in peer_router._preds.items():
                if dest == self.node.id:
                    continue
                candidate = p_ab * p_bc * self.beta
                if candidate > self._preds.get(dest, 0.0):
                    self._preds[dest] = candidate
        super().on_link_up(peer)

    # -- forwarding rule --------------------------------------------------------

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        peer_router = peer.router
        if not isinstance(peer_router, ProphetRouter):
            return None
        if peer_router.predictability(message.destination) > self.predictability(
            message.destination
        ):
            return MODE_COPY
        return None
