"""First-Contact routing.

A single copy hops to the first encountered node (the sender deletes its
copy after a successful forward).  A classic single-copy baseline: cheap,
low delivery ratio; bounds the benefit of multi-copy schemes from below.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.routing.base import MODE_MOVE, Router
from repro.world.node import Node


class FirstContactRouter(Router):
    """Forward (move) each message to any available peer."""

    name = "first-contact"

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        return MODE_MOVE
