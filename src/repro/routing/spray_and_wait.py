"""Binary Spray-and-Wait (Spyropoulos et al. [8]) — the paper's protocol.

* **Spray phase** (``copies > 1``): on contact with a node lacking the
  message, hand over ``floor(copies/2)`` tokens and keep ``ceil(copies/2)``.
* **Wait phase** (``copies == 1``): direct transmission only — the copy is
  offered solely to its destination.

Scheduling order among sprayable messages and the overflow drop decision are
delegated to the attached buffer policy, which is exactly the axis the paper
varies (FIFO / SnW-O / SnW-C / SDSRP).

``source_spray=True`` switches to vanilla (non-binary) spray-and-wait, where
only the source hands out single-token copies; included for ablation.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy
from repro.routing.base import MODE_COPY, MODE_SPLIT, Router
from repro.world.node import Node


class SprayAndWaitRouter(Router):
    """Spray-and-Wait with pluggable buffer management."""

    name = "spray-and-wait"

    def __init__(
        self, node: Node, policy: BufferPolicy, source_spray: bool = False
    ) -> None:
        super().__init__(node, policy)
        self.source_spray = source_spray

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        if not message.can_spray:
            return None  # wait phase: only direct delivery (base class)
        if self.source_spray:
            # Vanilla spray: only the source distributes, one token at a time.
            if message.source != self.node.id:
                return None
            return MODE_COPY if message.copies > 1 else None
        return MODE_SPLIT

    def after_transfer(self, message: Message, peer: Node, mode: str, outcome) -> None:
        if mode == MODE_COPY and message.msg_id in self.node.buffer:
            # Vanilla spray bookkeeping: one token left the source.
            message.copies = max(1, message.copies - 1)
        super().after_transfer(message, peer, mode, outcome)
