"""Direct-Delivery routing.

The source holds its single copy until it meets the destination — the
degenerate L=1 corner of Spray-and-Wait and the lower bound on overhead
(exactly 0 by the paper's overhead-ratio definition).
"""

from __future__ import annotations

from repro.net.message import Message
from repro.routing.base import Router
from repro.world.node import Node


class DirectDeliveryRouter(Router):
    """Source-to-destination transfers only."""

    name = "direct-delivery"

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        return None  # deliveries are handled by the base class
