"""Routing protocols.

The paper's protocol is binary Spray-and-Wait
(:class:`repro.routing.spray_and_wait.SprayAndWaitRouter`); Epidemic,
Direct-Delivery, First-Contact and Spray-and-Focus are provided as substrate
baselines (the related work the paper positions against).

Every router delegates scheduling order and drop decisions to a
:class:`repro.policies.base.BufferPolicy`, which is what the paper varies.
"""

from repro.routing.base import ReceiveOutcome, Router
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.first_contact import FirstContactRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter

__all__ = [
    "DirectDeliveryRouter",
    "EpidemicRouter",
    "FirstContactRouter",
    "ProphetRouter",
    "ReceiveOutcome",
    "Router",
    "SprayAndFocusRouter",
    "SprayAndWaitRouter",
]
