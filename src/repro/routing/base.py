"""Router base class.

A router owns one node's forwarding logic.  The base class implements
everything protocol-independent:

* message creation (with make-room),
* the receive path — duplicate / dropped-list / delivery / overflow handling
  per Algorithm 1 of the paper,
* the make-room drop loop driven by the attached
  :class:`~repro.policies.base.BufferPolicy`,
* idle-sender scheduling: pick the best ``(message, peer)`` pair by the
  policy's send priority and hand it to the transfer manager.

Subclasses define *eligibility*: which buffered messages may go to which
peers, and what happens on the sender side when a transfer completes
(:meth:`Router.transfer_modes`, :meth:`Router.after_transfer`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.net.message import Message
from repro.net.outcomes import (  # re-exported: the routing-facing names
    DROP_NO_ROOM,
    DROP_OVERFLOW,
    DROP_TTL,
    MODE_COPY,
    MODE_DELIVERY,
    MODE_MOVE,
    MODE_SPLIT,
    ReceiveOutcome,
)
from repro.obs.profiler import timed
from repro.policies.base import BufferPolicy, PolicyContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.transfer import TransferManager
    from repro.rng import RngFactory
    from repro.world.node import Node

__all__ = [
    "MODE_COPY",
    "MODE_DELIVERY",
    "MODE_MOVE",
    "MODE_SPLIT",
    "ReceiveOutcome",
    "Router",
]


class Router:
    """Protocol-independent routing machinery (see module docstring)."""

    name = "abstract"

    #: If True, messages deliverable to a connected destination jump the
    #: queue (ONE's ``exchangeDeliverableMessages``).  If False, scheduling
    #: is strictly by policy priority — the literal reading of the paper's
    #: Algorithm 1 ("return ID_S"), under which a bad priority function also
    #: delays direct deliveries.  The experiment harness uses strict order
    #: for the paper comparison; the flag is an ablation axis.
    deliverable_first = False

    #: Pre-rank whole buffers with the policy's batched kernels
    #: (:meth:`~repro.policies.base.BufferPolicy.send_priorities` /
    #: ``drop_priorities``) instead of per-message calls.  Set by the
    #: scenario builder for the vector engine backend; only takes effect for
    #: policies flagged :attr:`~repro.policies.base.BufferPolicy.batchable`,
    #: whose batched floats are bit-identical to their scalar ones — so
    #: routing decisions (and traces) never change, only evaluation cost.
    batch_eval = False

    #: Smallest message population worth shipping to an array kernel: below
    #: this, NumPy's fixed per-call overhead loses to plain Python calls, so
    #: the batched paths fall back to scalar evaluation.  Purely a cost
    #: dispatch — both sides produce identical floats (the equivalence suite
    #: runs with this forced to 1 to pin the batched branch).
    batch_min_messages = 16

    def __init__(self, node: Node, policy: BufferPolicy) -> None:
        self.node = node
        self.policy = policy
        self.sim: Simulator | None = None
        self.transfer_manager: "TransferManager | None" = None
        #: Messages this node (as destination) has received.
        self.delivered_ids: set[str] = set()
        node.attach_router(self)

    # -- wiring ----------------------------------------------------------------

    def bind(self, sim: Simulator, transfer_manager: "TransferManager",
             n_nodes: int, rng: "RngFactory | None" = None) -> None:
        """Connect to the simulator; called once by the scenario builder."""
        self.sim = sim
        self.transfer_manager = transfer_manager
        self.policy.attach(
            PolicyContext(node=self.node, sim=sim, n_nodes=n_nodes, rng=rng)
        )

    @property
    def now(self) -> float:
        if self.sim is None:
            raise SimulationError("router used before bind()")
        return self.sim.now

    # -- message creation ---------------------------------------------------------

    def create_message(self, message: Message) -> bool:
        """Buffer a locally generated message, making room if needed.

        Returns False when the message cannot be stored (larger than the
        whole buffer, or everything else is pinned).  The ``message.created``
        event is emitted either way — the paper's delivery ratio denominator
        counts all generated messages.
        """
        assert self.sim is not None
        self.sim.listeners.emit("message.created", message)
        # Locally generated messages are never "the newcomer that loses":
        # the source always tries to make room (ONE's makeRoomForNewMessage).
        if not self._make_room(message, allow_reject=False):
            self.sim.listeners.emit(
                "message.dropped", message, self.node, DROP_NO_ROOM
            )
            return False
        self.node.buffer.add(message)
        self.policy.on_message_added(message, self.now)
        self.try_send()
        return True

    # -- receive path ----------------------------------------------------------------

    def will_accept(self, message: Message, sender: Node) -> bool:
        """Cheap pre-checks used during selection AND re-checked on arrival."""
        if message.is_expired(self.now):
            return False
        if message.destination == self.node.id:
            return message.msg_id not in self.delivered_ids
        if message.msg_id in self.node.buffer:
            return False
        if not self.node.buffer.could_ever_fit(message):
            return False
        return self.policy.will_accept(message, self.now)

    def receive(self, message: Message, sender: Node) -> ReceiveOutcome:
        """Handle an arriving copy (transfer already completed)."""
        assert self.sim is not None
        now = self.now
        if message.is_expired(now):
            return ReceiveOutcome.EXPIRED
        if message.destination == self.node.id:
            if message.msg_id in self.delivered_ids:
                return ReceiveOutcome.ALREADY_DELIVERED
            self.delivered_ids.add(message.msg_id)
            self.sim.listeners.emit("message.delivered", message, sender, self.node)
            return ReceiveOutcome.DELIVERED
        if message.msg_id in self.node.buffer:
            return ReceiveOutcome.DUPLICATE
        if not self.policy.will_accept(message, now):
            return ReceiveOutcome.REJECTED_POLICY
        if not self._make_room(message, allow_reject=self.policy.compare_newcomer):
            # The newcomer copy is destroyed: record it as a drop so that
            # stateful policies (SDSRP's dropped list) learn about it.
            self.policy.on_message_dropped(message, now, DROP_OVERFLOW)
            self.sim.listeners.emit(
                "message.dropped", message, self.node, DROP_OVERFLOW
            )
            return ReceiveOutcome.REJECTED_OVERFLOW
        self.node.buffer.add(message)
        self.policy.on_message_added(message, now)
        self.try_send()
        return ReceiveOutcome.ACCEPTED

    def _make_room(self, incoming: Message, allow_reject: bool) -> bool:
        """Drop lowest-priority droppable messages until *incoming* fits.

        With *allow_reject* (Algorithm 1), the newcomer participates in the
        ranking and is refused if it is ever the lowest-priority candidate.
        Policies that define ``select_victims`` (set-based strategies such
        as the knapsack variant) take over the whole decision instead.
        """
        assert self.sim is not None
        with timed(self.sim.profiler, "policy"):
            return self._make_room_inner(incoming, allow_reject)

    def _make_room_inner(self, incoming: Message, allow_reject: bool) -> bool:
        assert self.sim is not None
        buffer = self.node.buffer
        if not buffer.could_ever_fit(incoming):
            return False
        now = self.now
        select_victims = getattr(self.policy, "select_victims", None)
        if allow_reject and select_victims is not None and not buffer.fits(incoming):
            droppable = buffer.droppable()
            budget = buffer.free + sum(m.size for m in droppable)
            accept, victims = select_victims(droppable, incoming, budget, now)
            if not accept:
                return False
            for victim in victims:
                self.drop_message(victim, DROP_OVERFLOW)
            return buffer.fits(incoming)
        batched = self.batch_eval and self.policy.batchable
        while not buffer.fits(incoming):
            candidates = buffer.droppable()
            if not candidates:
                return False
            if batched and len(candidates) >= self.batch_min_messages:
                pris = self.policy.drop_priorities(candidates, now)
                # First index of the minimum == min(candidates, key=...)'s
                # first-minimal tie-breaking.
                k = min(range(len(candidates)), key=pris.__getitem__)
                worst = candidates[k]
                if allow_reject and (
                    self.policy.drop_priorities([incoming], now)[0] <= pris[k]
                ):
                    return False
            else:
                worst = min(
                    candidates, key=lambda m: self.policy.drop_priority(m, now)
                )
                if allow_reject and (
                    self.policy.drop_priority(incoming, now)
                    <= self.policy.drop_priority(worst, now)
                ):
                    return False
            self.drop_message(worst, DROP_OVERFLOW)
        return True

    def drop_message(self, message: Message, reason: str) -> None:
        """Remove *message* from the buffer and fire the drop hooks."""
        assert self.sim is not None
        self.node.buffer.remove(message.msg_id)
        self.policy.on_message_dropped(message, self.now, reason)
        self.sim.listeners.emit("message.dropped", message, self.node, reason)

    def purge_expired(self) -> None:
        """Drop all expired, unpinned messages (pinned ones die on completion)."""
        for message in self.node.buffer.expired(self.now):
            if not self.node.buffer.is_pinned(message.msg_id):
                self.drop_message(message, DROP_TTL)

    # -- link lifecycle ---------------------------------------------------------------

    def on_link_up(self, peer: Node) -> None:
        self.policy.on_link_up(peer, self.now)
        self.try_send()

    def on_link_down(self, peer: Node) -> None:
        self.policy.on_link_down(peer, self.now)

    # -- sending ------------------------------------------------------------------------

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        """Eligibility: may *message* be offered to *peer*, and how?

        Returns one of the MODE_* constants or None.  Delivery eligibility is
        handled by the base class; subclasses decide relay eligibility.
        """
        return None

    def select_next(self) -> tuple[Node, Message, str] | None:
        """Choose the best (peer, message, mode) to send, or None.

        Candidates are ranked by the policy's send priority — the paper's
        scheduling decision.  With :attr:`deliverable_first`, messages whose
        destination is connected outrank all relays regardless of priority
        (ONE's ``exchangeDeliverableMessages`` behaviour).
        """
        assert self.sim is not None
        with timed(self.sim.profiler, "routing"):
            return self._select_next_inner()

    def _select_next_inner(self) -> tuple[Node, Message, str] | None:
        now = self.now
        # Batched pre-pass (vector backend): rank the whole buffer in one
        # policy call.  Safe only for batchable (pure) policies, whose
        # batched floats match the scalar per-message calls exactly — the
        # selected pair is therefore identical either way.
        ranks: dict[str, float] | None = None
        if self.batch_eval and self.policy.batchable:
            buffered = list(self.node.buffer)
            if len(buffered) >= self.batch_min_messages:
                ranks = dict(
                    zip(
                        (m.msg_id for m in buffered),
                        self.policy.send_priorities(buffered, now),
                    )
                )
        best_delivery: tuple[float, Node, Message] | None = None
        best_relay: tuple[float, Node, Message, str] | None = None
        for message in self.node.buffer:
            if message.is_expired(now):
                continue
            for peer in self.node.neighbors.values():
                if peer.router is None:
                    continue
                if message.destination == peer.id:
                    if peer.router.will_accept(message, self.node):
                        rank = (
                            ranks[message.msg_id]
                            if ranks is not None
                            else self.policy.send_priority(message, now)
                        )
                        if best_delivery is None or rank > best_delivery[0]:
                            best_delivery = (rank, peer, message)
                    continue
                mode = self.transfer_modes(message, peer)
                if mode is None:
                    continue
                if not peer.router.will_accept(message, self.node):
                    continue
                rank = (
                    ranks[message.msg_id]
                    if ranks is not None
                    else self.policy.send_priority(message, now)
                )
                if best_relay is None or rank > best_relay[0]:
                    best_relay = (rank, peer, message, mode)
        if best_delivery is not None and (
            self.deliverable_first
            or best_relay is None
            or best_delivery[0] >= best_relay[0]
        ):
            _, peer, message = best_delivery
            return peer, message, MODE_DELIVERY
        if best_relay is not None:
            _, peer, message, mode = best_relay
            return peer, message, mode
        return None

    def try_send(self) -> None:
        """Start a transfer if the interface is idle and something is eligible."""
        if self.transfer_manager is None:
            return
        if self.node.sending or not self.node.neighbors:
            return
        choice = self.select_next()
        if choice is None:
            return
        peer, message, mode = choice
        self.transfer_manager.start(self.node, peer, message, mode)

    def after_transfer(self, message: Message, peer: Node, mode: str,
                       outcome: ReceiveOutcome) -> None:
        """Sender-side bookkeeping once a transfer completed.

        Default implements the mode semantics; subclasses may extend (e.g.
        MOFO's forward counting).
        """
        accepted = outcome in (ReceiveOutcome.ACCEPTED, ReceiveOutcome.DELIVERED)
        if mode == MODE_DELIVERY:
            # Direct delivery: the copy reached its destination; this node's
            # copy is spent (ONE deletes on transfer to final recipient).
            if outcome == ReceiveOutcome.DELIVERED and message.msg_id in self.node.buffer:
                self.node.buffer.remove(message.msg_id)
        elif mode == MODE_MOVE:
            if accepted and message.msg_id in self.node.buffer:
                self.node.buffer.remove(message.msg_id)
        # MODE_SPLIT token accounting is committed by the transfer manager
        # (two-phase split); MODE_COPY needs nothing.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} node={self.node.id}>"
