"""Epidemic routing (Vahdat & Becker [7]).

Replicate every message to every encountered node that lacks it.  Maximal
delivery ratio under infinite resources, pathological under constrained
buffers — which is the paper's motivation for copy-limited routing.  Used
as a substrate baseline in the extended benchmarks.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.routing.base import MODE_COPY, Router
from repro.world.node import Node


class EpidemicRouter(Router):
    """Unlimited replication."""

    name = "epidemic"

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        return MODE_COPY
