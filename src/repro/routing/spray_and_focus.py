"""Spray-and-Focus (Spyropoulos et al. [18]).

Identical spray phase to binary Spray-and-Wait, but instead of passively
waiting, a wait-phase copy is *forwarded* (moved) to relays with fresher
last-encounter information about the destination.  The utility is the
classic last-encounter timer: node u's utility for destination d is the time
since u last met d (smaller = better); a copy moves when the peer's timer
beats the holder's by ``focus_threshold`` seconds.

Included as the paper's "improvements of Spray and Wait" related-work
representative, so the buffer-policy comparison can be repeated on a
stronger router (extended benchmarks).
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy
from repro.routing.base import MODE_MOVE, MODE_SPLIT, Router
from repro.world.node import Node


class SprayAndFocusRouter(Router):
    """Binary spray + utility-driven focus phase."""

    name = "spray-and-focus"

    def __init__(
        self, node: Node, policy: BufferPolicy, focus_threshold: float = 60.0
    ) -> None:
        super().__init__(node, policy)
        self.focus_threshold = float(focus_threshold)
        #: node id -> last time this node was in contact with it.
        self.last_seen: dict[int, float] = {}

    def on_link_up(self, peer: Node) -> None:
        self.last_seen[peer.id] = self.now
        super().on_link_up(peer)

    def _timer(self, dest: int) -> float:
        """Seconds since this node last met *dest* (inf if never)."""
        seen = self.last_seen.get(dest)
        return float("inf") if seen is None else self.now - seen

    def transfer_modes(self, message: Message, peer: Node) -> str | None:
        if message.can_spray:
            return MODE_SPLIT
        # Focus phase: move the last copy toward fresher information.
        peer_router = peer.router
        if not isinstance(peer_router, SprayAndFocusRouter):
            return None
        mine = self._timer(message.destination)
        theirs = peer_router._timer(message.destination)
        if theirs + self.focus_threshold < mine:
            return MODE_MOVE
        return None
