"""Chaos campaign against the scenario service (docs/chaos.md).

Where the main fuzzer attacks the *simulator* with fault schedules, this
campaign attacks the *service* (:mod:`repro.service`) with hostile
operation sequences: interleaved fresh and duplicate submissions, worker
failures, mid-flight crash-restarts, torn journal tails, and cache
corruption — all derived from one seed, so every campaign replays exactly.

The compute path is a deterministic stand-in (a summary synthesized from
the config fingerprint) so thousands of service operations cost
milliseconds; the real-simulator kill/recovery path is exercised by
``tests/service/test_kill_recovery.py``.  What this campaign proves is the
*service machinery*, via four oracles:

* :data:`ORACLE_LOST_JOB` — every accepted job reaches a terminal state;
  nothing accepted is ever silently forgotten, through any number of
  crashes and restarts;
* :data:`ORACLE_RECOMPUTE` — a fingerprint is computed at most once, plus
  one recompute per cache-corruption event that hit it (duplicates and
  crash replays must ride the cache);
* :data:`ORACLE_REPLAY_STABLE` — replaying the journal is byte-stable:
  two independent replays fold to identical state digests, and recomputed
  cache entries are byte-identical to the originals;
* :data:`ORACLE_ACCOUNTING` — counters never lie: shed jobs carry a
  reason, terminal counts cover every accepted job, and no job is in an
  unknown state.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.checkpoint import config_fingerprint
from repro.experiments.scenario import ScenarioConfig
from repro.reports.summary import FailedRun, RunSummary
from repro.rng import RngFactory, derive_seed
from repro.service.api import ScenarioService
from repro.service.store import JobStore, SHED, TERMINAL_STATES

__all__ = [
    "ORACLE_ACCOUNTING",
    "ORACLE_LOST_JOB",
    "ORACLE_RECOMPUTE",
    "ORACLE_REPLAY_STABLE",
    "ServiceCaseResult",
    "run_service_campaign",
    "run_service_case",
]

ORACLE_LOST_JOB = "service-lost-job"
ORACLE_RECOMPUTE = "service-recompute"
ORACLE_REPLAY_STABLE = "service-replay-stable"
ORACLE_ACCOUNTING = "service-accounting"


class _FakeClock:
    """Deterministic supervisor clock: advances only when slept."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.t += seconds


def _scenario(seed: int) -> ScenarioConfig:
    """A tiny scenario; only its fingerprint matters to this campaign."""
    return ScenarioConfig(
        name="chaos-service",
        n_nodes=4,
        sim_time=20.0,
        policy="fifo",
        router="snw",
        seed=seed,
    )


def _fake_summary(config: ScenarioConfig) -> RunSummary:
    """A deterministic pure-function 'result' for *config*.

    Derived entirely from the config fingerprint, so same fingerprint →
    same summary → same cache bytes: exactly the property the real
    simulator gives the cache, at zero cost.
    """
    fp = config_fingerprint(config)
    digest = hashlib.sha256(fp.encode("ascii")).digest()
    created = 10 + digest[0] % 50
    delivered = digest[1] % (created + 1)
    return RunSummary(
        scenario=config.name,
        policy=config.policy,
        seed=config.seed,
        sim_time=config.sim_time,
        initial_copies=config.initial_copies,
        buffer_bytes=config.buffer_bytes,
        interval_range=config.interval_range,
        created=created,
        delivered=delivered,
        relayed=digest[2],
        delivery_ratio=delivered / created,
        average_hopcount=1.0 + digest[3] / 255.0,
        overhead_ratio=digest[4] / 16.0,
        average_latency=float(digest[5]),
    )


@dataclass
class _Harness:
    """Mutable campaign state threaded through one case."""

    seed: int
    root: Path
    #: fingerprint -> completed computations (the recompute oracle input).
    computes: dict[str, int] = field(default_factory=dict)
    #: fingerprint -> cache corruptions we inflicted on it.
    corruptions: dict[str, int] = field(default_factory=dict)
    #: fingerprint -> first observed cache bytes (byte-stability oracle).
    first_bytes: dict[str, bytes] = field(default_factory=dict)
    #: fingerprint -> compute count when first_bytes was captured; a raw
    #: byte comparison is only meaningful after a recompute rewrote the
    #: file (a flipped gzip-header don't-care byte leaves the entry valid
    #: but byte-different, with nothing ever recomputed).
    computes_at_capture: dict[str, int] = field(default_factory=dict)
    #: fingerprint -> corruption count at the latest compute.  The rewrite
    #: (cache.put) follows the compute synchronously (inline workers), so
    #: ``corruptions[fp] == corruptions_at_compute[fp]`` means the file on
    #: disk is untouched since its last rewrite.
    corruptions_at_compute: dict[str, int] = field(default_factory=dict)
    #: job_id -> fingerprint for every accepted (non-rejected) ticket.
    accepted: dict[str, str] = field(default_factory=dict)
    #: scheduled worker-failure budget per fingerprint (attempt count that
    #: fails before the job succeeds; > max_attempts means poison).
    fail_budget: dict[str, int] = field(default_factory=dict)

    def run_fn(self, config: ScenarioConfig) -> RunSummary | FailedRun:
        fp = config_fingerprint(config)
        if self.fail_budget.get(fp, 0) > 0:
            self.fail_budget[fp] -= 1
            return FailedRun(
                scenario=config.name,
                policy=config.policy,
                seed=config.seed,
                error_type="WorkerDeath",
                error_message="chaos: injected worker failure",
            )
        self.computes[fp] = self.computes.get(fp, 0) + 1
        self.corruptions_at_compute[fp] = self.corruptions.get(fp, 0)
        return _fake_summary(config)


@dataclass
class ServiceCaseResult:
    """Verdict of one fuzzed service case."""

    case_seed: int
    ops: int
    findings: list[dict[str, Any]]

    @property
    def ok(self) -> bool:
        return not self.findings


def _new_service(harness: _Harness, clock: _FakeClock) -> ScenarioService:
    return ScenarioService(
        harness.root,
        workers=0,
        queue_capacity=4,
        max_attempts=2,
        seed=harness.seed,
        backoff_base=0.01,
        backoff_cap=0.05,
        run_fn=harness.run_fn,
        clock=clock.now,
        sleep=clock.sleep,
    )


def _tear_journal_tail(path: Path, stream) -> bool:
    """Simulate a crash mid-append: tear the journal's final line.

    Fidelity matters here.  The store fsyncs every line *before* the
    caller's ticket is acknowledged, so a real crash can only tear a line
    whose write was never acknowledged.  Tearing an acknowledged original
    ``queued`` line would therefore be an impossible fault (and would
    legitimately lose the job, turning the lost-job oracle into a false
    alarm) — for those we append a torn *fragment* instead, the other real
    failure shape (crash mid-write of the next line).  Every other final
    line (``running``/``done``/``failed``/``shed``/requeue) is fair game:
    losing it must replay as a requeue, never as a lost job.
    """
    try:
        raw = path.read_bytes()
    except OSError:
        return False
    body = raw.rstrip(b"\n")
    if not body:
        return False
    last_start = body.rfind(b"\n") + 1
    last_line = body[last_start:]
    original_queued = False
    try:
        entry = json.loads(last_line.decode("utf-8"))
        original_queued = entry.get("event") == "queued" and "seq" in entry
    except (UnicodeDecodeError, ValueError):
        pass
    if original_queued or len(last_line) <= 1:
        # Torn write of a line that never completed: garbage, no newline.
        fragment = b'{"job": "job-torn", "event": "runn'
        path.write_bytes(raw + fragment)
        return True
    cut = 1 + int(stream.integers(0, len(last_line) - 1))
    path.write_bytes(raw[: len(raw) - cut])
    return True


def _corrupt_cache_entry(harness: _Harness, service: ScenarioService, stream) -> None:
    fingerprints = service.cache.fingerprints()
    if not fingerprints:
        return
    fp = fingerprints[int(stream.integers(0, len(fingerprints)))]
    path = service.cache.path_for(fp)
    try:
        raw = bytearray(path.read_bytes())
    except OSError:
        return
    if not raw:
        return
    if harness.first_bytes.get(fp) is None:
        harness.first_bytes[fp] = bytes(raw)
        harness.computes_at_capture[fp] = harness.computes.get(fp, 0)
    pos = int(stream.integers(0, len(raw)))
    raw[pos] ^= 0xFF
    path.write_bytes(bytes(raw))
    harness.corruptions[fp] = harness.corruptions.get(fp, 0) + 1


def run_service_case(
    case_seed: int,
    *,
    ops: int = 60,
    root: str | Path | None = None,
) -> ServiceCaseResult:
    """Fuzz one operation sequence against a fresh service root."""
    stream = RngFactory(case_seed).stream("chaos.service")
    tmp = None
    if root is None:
        tmp = tempfile.mkdtemp(prefix="chaos-service-")
        root = tmp
    harness = _Harness(seed=case_seed, root=Path(root))
    clock = _FakeClock()
    service = _new_service(harness, clock)
    submitted_configs: list[ScenarioConfig] = []
    next_seed = 0
    findings: list[dict[str, Any]] = []

    def note(ticket) -> None:
        if ticket.accepted and ticket.job_id:
            harness.accepted.setdefault(ticket.job_id, ticket.fingerprint)

    try:
        for _ in range(ops):
            op = float(stream.random())
            if op < 0.30 or not submitted_configs:
                # Fresh fingerprint; occasionally scheduled to fail.
                config = _scenario(derive_seed(case_seed, "cfg", next_seed))
                next_seed += 1
                fp = config_fingerprint(config)
                fail_roll = float(stream.random())
                if fail_roll < 0.15:
                    harness.fail_budget[fp] = 1  # retry succeeds
                elif fail_roll < 0.20:
                    harness.fail_budget[fp] = 5  # poison: quarantined
                submitted_configs.append(config)
                note(service.submit(config))
            elif op < 0.50:
                # Duplicate of an earlier fingerprint.
                pick = int(stream.integers(0, len(submitted_configs)))
                note(service.submit(submitted_configs[pick]))
            elif op < 0.80:
                service.step()
                clock.sleep(0.02)
            elif op < 0.90:
                # SIGKILL equivalent: drop the live service, no drain, then
                # maybe tear the journal tail, then restart and recover.
                service.close()
                if float(stream.random()) < 0.5:
                    _tear_journal_tail(harness.root / "journal.jsonl", stream)
                service = _new_service(harness, clock)
            else:
                _corrupt_cache_entry(harness, service, stream)

        # Final drain must land every accepted job in a terminal state.
        service.drain(poll_interval=0.02, max_wall=30.0)
        findings.extend(_check_oracles(harness, service))
    finally:
        service.close()
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    return ServiceCaseResult(case_seed=case_seed, ops=ops, findings=findings)


def _check_oracles(
    harness: _Harness, service: ScenarioService
) -> list[dict[str, Any]]:
    findings: list[dict[str, Any]] = []

    def finding(oracle: str, detail: str) -> None:
        findings.append({"oracle": oracle, "detail": detail})

    # 1. No accepted job is ever lost.
    for job_id, fp in sorted(harness.accepted.items()):
        job = service.store.get(job_id)
        if job is None:
            finding(
                ORACLE_LOST_JOB,
                f"accepted job {job_id} (fp {fp[:12]}) vanished from the "
                "journal",
            )
        elif job.state not in TERMINAL_STATES:
            finding(
                ORACLE_LOST_JOB,
                f"accepted job {job_id} still {job.state} after full drain",
            )

    # 2. Duplicate fingerprints never recompute (modulo corruption).
    for fp, count in sorted(harness.computes.items()):
        allowed = 1 + harness.corruptions.get(fp, 0)
        if count > allowed:
            finding(
                ORACLE_RECOMPUTE,
                f"fingerprint {fp[:12]} computed {count}x "
                f"(allowed {allowed}: 1 + {allowed - 1} corruptions)",
            )

    # 3. Replay is byte-stable: independent journal replays agree with the
    #    live store and each other; recomputed cache entries are
    #    byte-identical to what the corruption destroyed.
    journal = service.root / "journal.jsonl"
    digest_live = service.store.state_digest()
    digest_a = JobStore(journal).state_digest()
    digest_b = JobStore(journal).state_digest()
    if not (digest_live == digest_a == digest_b):
        finding(
            ORACLE_REPLAY_STABLE,
            "journal replay digests diverge (live vs replay vs replay)",
        )
    for fp, original in sorted(harness.first_bytes.items()):
        # Only entries a recompute actually rewrote — and that no later
        # corruption touched — are held to raw byte-identity: a corruption
        # that hit a gzip-header don't-care byte leaves a *valid* entry
        # whose bytes differ although the service wrote nothing (whether
        # the flip landed before any recompute or after the last one), and
        # a corrupt entry never re-read still holds the flipped bytes
        # (get() drops it; it can never be served).
        rewritten = harness.computes.get(fp, 0) > harness.computes_at_capture[fp]
        pristine = harness.corruptions.get(fp, 0) == harness.corruptions_at_compute.get(fp, -1)
        if not rewritten or not pristine or service.cache.get(fp) is None:
            continue
        recomputed = service.cache.get_bytes(fp)
        if recomputed is not None and recomputed != original:
            finding(
                ORACLE_REPLAY_STABLE,
                f"cache entry {fp[:12]} recomputed to different bytes",
            )

    # 4. Accounting: shed jobs carry reasons; stats cover the journal.
    counts = service.store.counts()
    for job in service.store.jobs():
        if job.state == SHED and not job.shed_reason:
            finding(
                ORACLE_ACCOUNTING,
                f"job {job.job_id} shed without a recorded reason",
            )
    # Per-process stats reset on restart while the journal accumulates, so
    # the journal may show *more* sheds than the live process — but never
    # fewer (that would mean a counted shed lost its journal line).
    if counts[SHED] < service.stats.shed:
        finding(
            ORACLE_ACCOUNTING,
            f"journal shows {counts[SHED]} shed jobs but this process "
            f"shed {service.stats.shed}",
        )
    return findings


def run_service_campaign(
    seed: int,
    iterations: int,
    *,
    ops_per_case: int = 60,
) -> dict[str, Any]:
    """Run *iterations* independent cases; pure function of the inputs."""
    results = [
        run_service_case(
            derive_seed(seed, "chaos.service", i), ops=ops_per_case
        )
        for i in range(iterations)
    ]
    findings = [
        {"case": r.case_seed, **f} for r in results for f in r.findings
    ]
    return {
        "target": "service",
        "seed": seed,
        "iterations": iterations,
        "ops_per_case": ops_per_case,
        "cases_ok": sum(1 for r in results if r.ok),
        "findings": findings,
    }
