"""``python -m repro.chaos`` — see :mod:`repro.chaos.cli`."""

import sys

from repro.chaos.cli import main

if __name__ == "__main__":
    sys.exit(main())
