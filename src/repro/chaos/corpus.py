"""Reproducer corpus: self-contained failure records that replay forever.

Every failure the fuzzer confirms is serialized as one JSON file under the
corpus directory (``chaos/corpus/`` at the repo root by convention).  An
entry carries everything needed to re-run the case with zero context: the
full scenario config (via the snapshot codec's config encoding), the
oracle verdict, the shrunk size fingerprint, the trace tail at the point
of failure, and a ready-to-paste pytest snippet.  Committed entries are
replayed by ``tests/chaos/test_corpus_replay.py`` on every CI run, so a
fixed bug that regresses is caught by the exact schedule that found it.

File names are derived from the config fingerprint
(:func:`repro.experiments.checkpoint.config_fingerprint`), so re-finding
the same minimal case overwrites rather than duplicates.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.chaos.oracles import ORACLE_BACKEND, ORACLE_SHARD, OracleFailure
from repro.chaos.runner import (
    CaseResult,
    check_backend_identity,
    check_shard_identity,
    run_case,
)
from repro.errors import ObsFormatError
from repro.experiments.checkpoint import config_fingerprint
from repro.experiments.scenario import ScenarioConfig
from repro.snapshot.capture import encode_config
from repro.snapshot.restore import decode_config

__all__ = [
    "entry_path",
    "load_corpus",
    "load_entry",
    "make_entry",
    "pytest_snippet",
    "replay_entry",
    "replay_reproduces",
    "write_entry",
]

#: Bump when the entry layout changes incompatibly; ``replay_entry``
#: rejects unknown versions instead of mis-reading them.
CORPUS_SCHEMA = 1


def make_entry(
    config: ScenarioConfig,
    failure: OracleFailure,
    *,
    base_seed: int | None = None,
    iteration: int | None = None,
    shrink_attempts: int = 0,
    original_config: ScenarioConfig | None = None,
) -> dict[str, Any]:
    """Build the JSON payload for one confirmed (ideally shrunk) failure."""
    entry: dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "id": config_fingerprint(config),
        "base_seed": base_seed,
        "iteration": iteration,
        "failure": failure.as_dict(),
        "config": encode_config(config),
        "shrink_attempts": shrink_attempts,
    }
    if original_config is not None:
        entry["original_config"] = encode_config(original_config)
    entry["pytest"] = pytest_snippet(entry)
    return entry


def pytest_snippet(entry: dict[str, Any]) -> str:
    """A standalone test function reproducing this entry.

    The snippet inlines the config JSON, so it keeps working even if the
    corpus file moves; it asserts the same oracle/invariant fires.
    """
    config_json = json.dumps(entry["config"], indent=4, sort_keys=True)
    failure = entry["failure"]
    return (
        "from repro.chaos.oracles import OracleFailure\n"
        "from repro.chaos.runner import run_case\n"
        "from repro.snapshot.restore import decode_config\n"
        "\n"
        "\n"
        f"def test_chaos_reproducer_{entry['id'][:12]}():\n"
        f"    config = decode_config({config_json})\n"
        "    result = run_case(config)\n"
        "    expected = OracleFailure(\n"
        f"        oracle={failure['oracle']!r},\n"
        f"        detail='',\n"
        f"        invariant={failure['invariant']!r},\n"
        "    )\n"
        "    assert expected.matches(result.failure), (\n"
        "        f'expected {expected.oracle}/{expected.invariant}, '\n"
        "        f'got {result.failure}'\n"
        "    )\n"
    )


def entry_path(corpus_dir: str | os.PathLike[str], entry: dict[str, Any]) -> Path:
    oracle = str(entry["failure"]["oracle"]).replace("/", "-")
    return Path(corpus_dir) / f"{oracle}-{entry['id'][:16]}.json"


def write_entry(
    corpus_dir: str | os.PathLike[str], entry: dict[str, Any]
) -> Path:
    """Atomically write *entry* into *corpus_dir*; returns the file path."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = entry_path(directory, entry)
    payload = json.dumps(entry, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_entry(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Read and validate one corpus entry."""
    try:
        entry = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ObsFormatError(f"unreadable corpus entry {path}: {exc}") from exc
    if not isinstance(entry, dict):
        raise ObsFormatError(f"corpus entry {path} is not a JSON object")
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ObsFormatError(
            f"corpus entry {path} has schema {entry.get('schema')!r}; this "
            f"build reads schema {CORPUS_SCHEMA}"
        )
    for key in ("id", "failure", "config"):
        if key not in entry:
            raise ObsFormatError(f"corpus entry {path} is missing {key!r}")
    return entry


def load_corpus(
    corpus_dir: str | os.PathLike[str],
) -> list[tuple[Path, dict[str, Any]]]:
    """All entries of a corpus directory, sorted by file name."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    return [
        (path, load_entry(path))
        for path in sorted(directory.glob("*.json"))
    ]


def replay_entry(entry: dict[str, Any]) -> CaseResult:
    """Re-run an entry's config through the oracles."""
    config = decode_config(entry["config"])
    return run_case(config)


def replay_reproduces(entry: dict[str, Any]) -> bool:
    """Does the entry still fail the same way?  (The replay oracle for
    corpus entries; the corpus-replay test asserts this for every
    committed file.)

    Invariant-family entries replay through :func:`run_case`; a
    backend-identity or shard-identity entry re-runs its metamorphic
    comparison instead, since :func:`run_case` alone can never observe a
    cross-run divergence."""
    expected = OracleFailure.from_dict(entry["failure"])
    config = decode_config(entry["config"])
    if expected.oracle == ORACLE_BACKEND:
        return expected.matches(check_backend_identity(config))
    if expected.oracle == ORACLE_SHARD:
        return expected.matches(check_shard_identity(config))
    return expected.matches(run_case(config).failure)
