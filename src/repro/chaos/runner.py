"""Run one chaos case and judge it with the local oracles.

:func:`run_case` is the fuzzing loop's workhorse: build the scenario with
the sanitizer armed, run to the horizon, and translate whatever happens —
an :class:`~repro.errors.InvariantViolation`, any other crash, or an
inconsistent summary — into an :class:`~repro.chaos.oracles.OracleFailure`.
:func:`case_digest` is the byte-identity probe used by the metamorphic and
replay oracles: a SHA-256 over the full event trace plus the stable part of
the run summary.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass
from typing import Any

from repro.chaos.oracles import (
    ORACLE_BACKEND,
    ORACLE_CRASH,
    ORACLE_INVARIANT,
    ORACLE_SHARD,
    OracleFailure,
    check_summary,
)
from repro.errors import InvariantViolation
from repro.experiments.runner import build_scenario, run_built, run_scenario
from repro.experiments.scenario import ANALYTIC_BACKENDS, ScenarioConfig

__all__ = [
    "CaseResult",
    "case_digest",
    "check_backend_identity",
    "check_shard_identity",
    "run_case",
    "stable_summary",
]

#: RunSummary fields excluded from digests: wall-clock diagnostics that
#: legitimately differ between byte-identical runs.
_UNSTABLE_SUMMARY_FIELDS = ("wall_seconds", "profile")


@dataclass
class CaseResult:
    """Outcome of one chaos case."""

    config: ScenarioConfig
    summary: Any | None = None
    failure: OracleFailure | None = None
    #: Full event-trace JSONL of the run (None when the case crashed before
    #: producing one).
    trace_jsonl: str | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def stable_summary(summary: Any) -> dict[str, Any]:
    """The deterministic projection of a RunSummary (digest input)."""
    data = summary.as_dict()
    for key in _UNSTABLE_SUMMARY_FIELDS:
        data.pop(key, None)
    # Profile keys were expanded with a prefix by as_dict.
    return {k: v for k, v in data.items() if not k.startswith("profile_")}


def run_case(config: ScenarioConfig) -> CaseResult:
    """Run *config* and apply the invariant-family oracles."""
    trace_source = None
    try:
        if config.engine_backend in ANALYTIC_BACKENDS:
            # Mean-field cases build no simulator (hence no trace); the
            # crash and summary-consistency oracles still apply in full.
            summary = run_scenario(config)
        else:
            built = build_scenario(config)
            trace_source = built
            summary = run_built(built)
    except (KeyboardInterrupt, SystemExit):
        raise
    except InvariantViolation as exc:
        # The per-tick sanitizer fired: the canonical invariant-oracle hit.
        # run_built already attached the trace tail.
        return CaseResult(
            config=config,
            failure=OracleFailure(
                oracle=ORACLE_INVARIANT,
                detail=str(exc),
                invariant=exc.invariant,
                violation_time=exc.time,
                node_id=exc.node_id,
                msg_id=exc.msg_id,
                trace_tail=list(getattr(exc, "trace_tail", None) or []),
            ),
        )
    except Exception as exc:
        # Any other escape is its own oracle: the simulator must never
        # crash on a config its validators accepted.
        return CaseResult(
            config=config,
            failure=OracleFailure(
                oracle=ORACLE_CRASH,
                detail=traceback.format_exc(),
                invariant=type(exc).__name__,
            ),
        )
    trace_jsonl = (
        trace_source.trace.to_jsonl()
        if trace_source is not None and trace_source.trace is not None
        else None
    )
    failure = check_summary(summary)
    return CaseResult(
        config=config,
        summary=summary,
        failure=failure,
        trace_jsonl=trace_jsonl,
    )


def case_digest(config: ScenarioConfig) -> str | None:
    """SHA-256 of the run's observable bytes (trace + stable summary).

    Returns ``None`` when the run fails — digests are only meaningful for
    clean runs (failures are compared via :meth:`OracleFailure.matches`).
    """
    result = run_case(config)
    if result.failure is not None:
        return None
    payload = (result.trace_jsonl or "") + json.dumps(
        stable_summary(result.summary), sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def check_backend_identity(
    config: ScenarioConfig, own_digest: str | None = None
) -> OracleFailure | None:
    """The backend-identity oracle: the same case on the *other* engine
    backend (scalar <-> vector) must replay the exact bytes.

    *own_digest*, when provided, skips re-running *config* itself (the
    fuzzer reuses the digest its replay oracle just computed).  Shared by
    the fuzzing loop, its failure-replay verification and corpus replay so
    all three judge a divergence the same way.

    Analytic/hybrid cases have no byte-identical sibling backend (the
    mean-field expectation is *not* a discrete run), so the oracle
    vacuously passes for them; the replay oracle still covers their
    determinism.
    """
    if config.engine_backend in ANALYTIC_BACKENDS:
        return None
    # Sharding only exists on the scalar backend, so the vector sibling is
    # always single-process (sharded scalar == single scalar is the
    # shard-identity oracle's half of the triangle).
    flipped = config.replace(
        engine_backend="vector"
        if config.engine_backend == "scalar"
        else "scalar",
        shard_count=1,
        shard_kill=None,
    )
    own = own_digest if own_digest is not None else case_digest(config)
    other = case_digest(flipped)
    if own != other:
        return OracleFailure(
            oracle=ORACLE_BACKEND,
            detail=(
                f"{config.engine_backend} digest {own} != "
                f"{flipped.engine_backend} digest {other} for the same case"
            ),
            invariant="backend-identity",
        )
    return None


def check_shard_identity(
    config: ScenarioConfig, own_digest: str | None = None
) -> OracleFailure | None:
    """The shard-identity oracle: a sharded case must replay the bytes of
    the same case run single-process (docs/sharding.md).

    The single-process sibling also drops any scripted ``shard_kill`` —
    the whole point of the barrier-crash fault is that crash *recovery*
    leaves the sharded run indistinguishable from an uninterrupted one.
    Unsharded cases pass vacuously; their determinism is the replay
    oracle's job.
    """
    if config.shard_count <= 1:
        return None
    flipped = config.replace(shard_count=1, shard_kill=None)
    own = own_digest if own_digest is not None else case_digest(config)
    other = case_digest(flipped)
    if own != other:
        return OracleFailure(
            oracle=ORACLE_SHARD,
            detail=(
                f"{config.shard_count}-shard digest {own} != "
                f"single-process digest {other} for the same case"
                + (
                    f" (scripted worker kill {config.shard_kill})"
                    if config.shard_kill is not None
                    else ""
                )
            ),
            invariant="shard-identity",
        )
    return None
