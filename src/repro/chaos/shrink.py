"""Delta-debug a failing chaos case down to a minimal reproducer.

Greedy fixpoint over four reduction passes, each validated by re-running
the candidate and requiring the *same* failure
(:meth:`~repro.chaos.oracles.OracleFailure.matches` — same oracle, same
invariant; shrinking into a different bug would mislabel the reproducer):

1. **fault events** — ddmin-style chunk removal over the scripted
   :class:`~repro.faults.plan.FaultEvent` list;
2. **rate faults** — zero each of churn/flap/corruption individually;
3. **fleet size** — halve ``n_nodes`` toward 2, dropping scripted events
   that target removed nodes;
4. **horizon** — shorten ``sim_time`` toward just past the recorded
   violation time, dropping events past the new horizon and clamping the
   churn duty cycle to keep the plan valid.

Every candidate run is a full scenario execution, so the pass order puts
the biggest cost reducers (nodes, horizon) *after* the event passes: once
the schedule is small, the expensive passes probe fewer, cheaper runs.
The ``budget`` parameter caps total candidate executions — shrinking is
best-effort, a smaller-but-not-minimal reproducer is still a reproducer.
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.oracles import OracleFailure
from repro.chaos.runner import run_case
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.faults.plan import (
    EVENT_NODE_DOWN,
    EVENT_NODE_UP,
    FaultEvent,
    FaultPlan,
)

__all__ = ["shrink", "shrink_stats"]

_NODE_KINDS = (EVENT_NODE_DOWN, EVENT_NODE_UP)

#: Floor for the shortened horizon (seconds); below this the world barely
#: ticks and reproducers stop being readable.
_MIN_SIM_TIME = 50.0


class _Shrinker:
    def __init__(
        self,
        config: ScenarioConfig,
        failure: OracleFailure,
        check: Callable[[ScenarioConfig], OracleFailure | None],
        budget: int,
    ) -> None:
        self.config = config
        self.failure = failure
        self.check = check
        self.budget = budget
        self.attempts = 0

    def reproduces(self, candidate: ScenarioConfig) -> bool:
        if self.attempts >= self.budget:
            return False
        self.attempts += 1
        try:
            observed = self.check(candidate)
        except ConfigurationError:
            # A reduction can make the config invalid (e.g. duty cycle vs a
            # shortened horizon); an invalid candidate is simply not a
            # reproduction.
            return False
        return self.failure.matches(observed)

    def accept_if_reproduces(self, candidate: ScenarioConfig) -> bool:
        if self.reproduces(candidate):
            self.config = candidate
            return True
        return False

    # -- passes ------------------------------------------------------------

    def _with_events(self, events: tuple[FaultEvent, ...]) -> ScenarioConfig:
        assert self.config.faults is not None
        return self.config.replace(
            faults=self.config.faults.replace(events=events)
        )

    def pass_events(self) -> bool:
        """ddmin over the scripted event list."""
        plan = self.config.faults
        if plan is None or not plan.events:
            return False
        improved = False
        granularity = 2
        while len(self.config.faults.events) > 0:
            events = list(self.config.faults.events)
            n = len(events)
            chunk = max(1, n // granularity)
            removed_any = False
            start = 0
            while start < len(events):
                candidate_events = tuple(
                    events[:start] + events[start + chunk:]
                )
                if len(candidate_events) == len(events):
                    break
                if self.accept_if_reproduces(
                    self._with_events(candidate_events)
                ):
                    events = list(candidate_events)
                    removed_any = improved = True
                else:
                    start += chunk
            if removed_any:
                granularity = 2
            elif chunk <= 1:
                break
            else:
                granularity *= 2
            if self.attempts >= self.budget:
                break
        return improved

    def pass_rates(self) -> bool:
        """Zero each rate-based fault family individually."""
        plan = self.config.faults
        if plan is None:
            return False
        improved = False
        for field, zeroed in (
            ("churn_fraction", 0.0),
            ("link_flap_rate", 0.0),
            ("transfer_fault_prob", 0.0),
        ):
            plan = self.config.faults
            if getattr(plan, field) == zeroed:
                continue
            candidate = self.config.replace(
                faults=plan.replace(**{field: zeroed})
            )
            improved |= self.accept_if_reproduces(candidate)
        # A fully-disabled plan can be dropped outright.
        plan = self.config.faults
        if plan is not None and not plan.enabled:
            self.config = self.config.replace(faults=None)
        return improved

    def _drop_invalid_events(
        self, plan: FaultPlan, n_nodes: int, horizon: float
    ) -> FaultPlan:
        events = tuple(
            e for e in plan.events
            if e.time <= horizon
            and not (e.kind in _NODE_KINDS and e.node >= n_nodes)
        )
        return plan.replace(events=events)

    def pass_nodes(self) -> bool:
        """Halve the fleet toward 2 nodes."""
        improved = False
        while self.config.n_nodes > 2:
            target = max(2, self.config.n_nodes // 2)
            if target == self.config.n_nodes:
                break
            plan = self.config.faults
            if plan is not None:
                plan = self._drop_invalid_events(
                    plan, target, self.config.sim_time
                )
            candidate = self.config.replace(n_nodes=target, faults=plan)
            if not self.accept_if_reproduces(candidate):
                break
            improved = True
        return improved

    def pass_horizon(self) -> bool:
        """Halve the horizon, not below the recorded violation time."""
        improved = False
        floor = _MIN_SIM_TIME
        if self.failure.violation_time is not None:
            # Keep one world tick of slack past the violation.
            floor = max(floor, self.failure.violation_time + self.config.tick)
        while self.config.sim_time / 2.0 >= floor:
            target = self.config.sim_time / 2.0
            plan = self.config.faults
            if plan is not None:
                plan = self._drop_invalid_events(
                    plan, self.config.n_nodes, target
                )
                if plan.churn_fraction > 0:
                    plan = plan.replace(
                        churn_off_time=min(plan.churn_off_time, target),
                        churn_on_time=min(plan.churn_on_time, target),
                    )
            candidate = self.config.replace(sim_time=target, faults=plan)
            if not self.accept_if_reproduces(candidate):
                break
            improved = True
        return improved

    def pass_copies(self) -> bool:
        """Halve the spray budget toward a single copy."""
        improved = False
        while self.config.initial_copies > 1:
            target = max(1, self.config.initial_copies // 2)
            if target == self.config.initial_copies:
                break
            if not self.accept_if_reproduces(
                self.config.replace(initial_copies=target)
            ):
                break
            improved = True
        return improved

    def run(self) -> ScenarioConfig:
        while self.attempts < self.budget:
            improved = self.pass_events()
            improved |= self.pass_rates()
            improved |= self.pass_nodes()
            improved |= self.pass_horizon()
            improved |= self.pass_copies()
            if not improved:
                break
        return self.config


def _default_check(config: ScenarioConfig) -> OracleFailure | None:
    return run_case(config).failure


def shrink(
    config: ScenarioConfig,
    failure: OracleFailure,
    *,
    check: Callable[[ScenarioConfig], OracleFailure | None] | None = None,
    budget: int = 64,
) -> tuple[ScenarioConfig, int]:
    """Minimize *config* while preserving *failure*.

    Returns ``(minimal_config, candidate_runs_spent)``.  *check* defaults
    to a plain :func:`~repro.chaos.runner.run_case`; the mutation tests
    substitute a check that runs under their patched simulator.
    """
    shrinker = _Shrinker(config, failure, check or _default_check, budget)
    minimal = shrinker.run()
    return minimal, shrinker.attempts


def shrink_stats(config: ScenarioConfig) -> dict[str, float | int]:
    """Size fingerprint of a (shrunk) case for reports and tests."""
    plan = config.faults
    return {
        "n_nodes": config.n_nodes,
        "sim_time": config.sim_time,
        "fault_events": 0 if plan is None else len(plan.events),
        "initial_copies": config.initial_copies,
    }
