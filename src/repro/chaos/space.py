"""The chaos search space: seeded sampling of hostile configurations.

:func:`sample_case` is a pure function of ``(space, base_seed, index)``:
case *i* of seed *s* is the same scenario on every machine, forever.  That
single property carries the whole harness — failures replay from two
integers, the corpus stays valid across runs, and a nightly fuzz job can
split the index range across shards without coordination.

The space deliberately concentrates on the regimes the ISSUE calls out:
near-zero buffers (1–8 messages of headroom), TTL edge values (shorter
than a contact gap up to effectively-infinite), single-copy sprays, dense
fault schedules (scripted bursts on top of rate-based churn/flap/
corruption), across every router and registered buffer policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scenario import (
    ANALYTIC_BACKENDS,
    ANALYTIC_MOBILITIES,
    ANALYTIC_ROUTERS,
    ScenarioConfig,
)
from repro.faults.plan import EVENT_KINDS, FaultEvent, FaultPlan
from repro.rng import RngFactory, derive_seed

__all__ = ["ChaosSpace", "sample_case"]

#: Routers exercised by default (all of them).
_ROUTERS = (
    "snw", "snw-source", "epidemic", "direct", "first-contact", "snf",
    "prophet",
)
#: Registered buffer policies (repro.policies.registry builtins).
_POLICIES = (
    "fifo", "lifo", "random", "snw-o", "snw-c", "mofo", "shli", "sdsrp",
    "sdsrp-knapsack", "gbsd",
)
#: Mobility kinds that need no external trace file.
_MOBILITIES = ("rwp", "random-walk", "random-direction")


@dataclass(frozen=True)
class ChaosSpace:
    """Parameter ranges the fuzzer draws cases from.

    All ranges are inclusive.  Shrink the space (e.g. a single router) to
    focus a hunt; the default covers everything the runner can build
    without external inputs.
    """

    routers: tuple[str, ...] = _ROUTERS
    policies: tuple[str, ...] = _POLICIES
    mobilities: tuple[str, ...] = _MOBILITIES
    n_nodes: tuple[int, int] = (4, 20)
    sim_time: tuple[float, float] = (150.0, 600.0)
    #: Buffer capacity in *messages* — 1 means the buffer holds exactly one
    #: message, the hardest drop-policy regime.
    buffer_messages: tuple[int, int] = (1, 8)
    message_size: int = 1000
    #: TTL edge values (seconds): shorter than a typical contact gap,
    #: around the horizon, and effectively infinite.
    ttl_choices: tuple[float, ...] = (30.0, 120.0, 600.0, 1.0e6)
    #: Spray budgets: degenerate single-copy up to a full 32-copy spray.
    copies_choices: tuple[int, ...] = (1, 2, 3, 8, 32)
    #: New-message inter-arrival lower bound is drawn from this range.
    interval_lo: tuple[float, float] = (5.0, 30.0)
    #: Scripted fault events per case (upper bound, inclusive).
    max_fault_events: int = 12
    #: Probability that a case carries each rate-based fault family.
    churn_prob: float = 0.4
    flap_prob: float = 0.4
    transfer_fault_prob: float = 0.4
    #: Event-trace ring size for cases (bounds byte-identity comparisons
    #: and failure context; big enough to hold a whole small case).
    trace_capacity: int = 65536
    #: Engine backends cases may run on.  Sampling "vector" points the
    #: whole oracle battery at the struct-of-arrays fast path; the
    #: backend-identity oracle additionally cross-checks every metamorphic
    #: case against the *other* backend (docs/vectorization.md).  The
    #: default excludes "analytic"/"hybrid" so the historical
    #: (seed, index) -> case corpus mapping stays intact; widen to
    #: ``("scalar", "vector", "analytic", "hybrid")`` to point the replay /
    #: crash / summary oracles at the mean-field backend too (cases are
    #: coerced into its validity envelope — see :func:`sample_case`).
    engine_backends: tuple[str, ...] = ("scalar", "vector")
    #: Shard counts scalar-backend cases may run under (docs/sharding.md).
    #: Weighted toward 1 because every sharded case pays real worker-spawn
    #: wall-clock; drawn after every other axis (see :func:`sample_case`)
    #: so adding the axis preserved the (seed, index) -> case mapping.
    shard_counts: tuple[int, ...] = (1, 1, 1, 2)
    #: Probability that a sharded case scripts a barrier-crash fault — a
    #: worker self-SIGKILL mid-run whose recovery must stay byte-identical.
    shard_kill_prob: float = 0.5


def _sample_plan(
    space: ChaosSpace, rng: np.random.Generator, n_nodes: int, sim_time: float
) -> FaultPlan | None:
    """Draw the fault model: rate-based families plus a scripted burst."""
    churn_fraction = 0.0
    churn_off = churn_on = sim_time / 4.0
    if rng.random() < space.churn_prob:
        churn_fraction = float(rng.uniform(0.1, 0.5))
        # Duty windows up to half the horizon: long outages, but every
        # churned node still cycles at least once (validate_for enforces
        # windows <= horizon).
        churn_off = float(rng.uniform(sim_time / 10.0, sim_time / 2.0))
        churn_on = float(rng.uniform(sim_time / 10.0, sim_time / 2.0))
    link_flap_rate = 0.0
    if rng.random() < space.flap_prob:
        # Up to one forced flap every ~10 s of sim time: a flap storm for
        # these small fleets.
        link_flap_rate = float(rng.uniform(0.005, 0.1))
    transfer_fault = 0.0
    if rng.random() < space.transfer_fault_prob:
        transfer_fault = float(rng.uniform(0.05, 0.4))

    n_events = int(rng.integers(0, space.max_fault_events + 1))
    events = []
    for _ in range(n_events):
        kind = EVENT_KINDS[int(rng.integers(len(EVENT_KINDS)))]
        time = float(rng.uniform(0.0, sim_time))
        node = int(rng.integers(n_nodes))
        events.append(FaultEvent(time=time, kind=kind, node=node))
    # Sort by time so shrinking chunks are contiguous windows; FaultEvent
    # is frozen, so sorting cannot change semantics, only presentation.
    events.sort(key=lambda e: (e.time, e.kind, e.node))

    if not events and churn_fraction == 0 and link_flap_rate == 0 \
            and transfer_fault == 0:
        return None
    return FaultPlan(
        churn_fraction=churn_fraction,
        churn_off_time=churn_off,
        churn_on_time=churn_on,
        churn_wipe_buffer=bool(rng.random() < 0.8),
        link_flap_rate=link_flap_rate,
        transfer_fault_prob=transfer_fault,
        events=tuple(events),
    )


def sample_case(
    space: ChaosSpace, base_seed: int, index: int
) -> ScenarioConfig:
    """Case *index* of the fuzzing campaign seeded with *base_seed*.

    Deterministic: the draw comes from a dedicated stream of a factory
    seeded with ``derive_seed(base_seed, "chaos", index)``; the scenario
    itself gets the same derived seed, so the case is fully identified by
    ``(base_seed, index)`` and — once serialized — by its config alone.
    """
    seed = derive_seed(base_seed, "chaos", index)
    rng = RngFactory(seed).stream("chaos.space")

    n_nodes = int(rng.integers(space.n_nodes[0], space.n_nodes[1] + 1))
    sim_time = float(rng.uniform(*space.sim_time))
    router = space.routers[int(rng.integers(len(space.routers)))]
    policy = space.policies[int(rng.integers(len(space.policies)))]
    mobility = space.mobilities[int(rng.integers(len(space.mobilities)))]
    k_messages = int(
        rng.integers(space.buffer_messages[0], space.buffer_messages[1] + 1)
    )
    ttl = space.ttl_choices[int(rng.integers(len(space.ttl_choices)))]
    copies = space.copies_choices[int(rng.integers(len(space.copies_choices)))]
    lo = float(rng.uniform(*space.interval_lo))
    hi = lo + float(rng.uniform(1.0, 10.0))
    faults = _sample_plan(space, rng, n_nodes, sim_time)
    # Drawn last so adding the backend axis left every pre-existing
    # (seed, index) -> case mapping — and thus the corpus — intact.
    backend = space.engine_backends[
        int(rng.integers(len(space.engine_backends)))
    ]
    sanitize = True
    trace_capacity = space.trace_capacity
    if backend in ANALYTIC_BACKENDS:
        # The mean-field backend validates a narrower envelope (no faults,
        # no tracing/sanitizing, modelled routers/mobilities only —
        # ScenarioConfig raises ConfigurationError otherwise).  Coerce the
        # draw into that envelope deterministically so every sampled case
        # constructs; the *rejection* path is covered by
        # tests/analytic/test_config_validation.py.
        if router not in ANALYTIC_ROUTERS:
            router = ANALYTIC_ROUTERS[int(rng.integers(len(ANALYTIC_ROUTERS)))]
        if mobility not in ANALYTIC_MOBILITIES:
            mobility = ANALYTIC_MOBILITIES[
                int(rng.integers(len(ANALYTIC_MOBILITIES)))
            ]
        faults = None
        sanitize = False
        trace_capacity = 0
    # Shard axis, drawn after everything else (same discipline as the
    # backend axis above): pre-existing cases are untouched because only
    # scalar-backend draws consume these variates, and they consume them
    # last.  A sharded case may additionally script a mid-barrier worker
    # kill — the recovery path must keep the run byte-identical, which the
    # shard-identity oracle checks against the single-process sibling.
    shard_count = 1
    shard_kill = None
    if backend == "scalar":
        shard_count = space.shard_counts[
            int(rng.integers(len(space.shard_counts)))
        ]
        if shard_count > 1 and rng.random() < space.shard_kill_prob:
            shard_kill = (
                int(rng.integers(shard_count)),
                int(rng.integers(1, max(2, int(sim_time) // 2))),
            )

    # Area scales with fleet size at roughly the Table-II node density, so
    # contact rates stay in a regime where messages actually move.
    side = 350.0 * float(np.sqrt(n_nodes))
    return ScenarioConfig(
        name=f"chaos-{index}",
        n_nodes=n_nodes,
        sim_time=sim_time,
        mobility=mobility,
        area=(side, side),
        speed_range=(1.0, 3.0),
        radio_range=100.0,
        buffer_bytes=k_messages * space.message_size,
        message_size=space.message_size,
        interval_range=(lo, hi),
        ttl=ttl,
        initial_copies=copies,
        router=router,
        policy=policy,
        engine_backend=backend,
        shard_count=shard_count,
        shard_kill=shard_kill,
        seed=seed,
        faults=faults,
        sanitize=sanitize,
        trace_capacity=trace_capacity,
    )


def describe_case(config: ScenarioConfig) -> str:
    """One-line human label for logs and CLI output."""
    plan = config.faults
    fault_bits = "no-faults"
    if plan is not None:
        fault_bits = (
            f"churn={plan.churn_fraction:.2f} flap={plan.link_flap_rate:.3f} "
            f"xfer={plan.transfer_fault_prob:.2f} events={len(plan.events)}"
        )
    engine = config.engine_backend
    if config.shard_count > 1:
        engine += f"/{config.shard_count}shards"
        if config.shard_kill is not None:
            engine += f" kill@{config.shard_kill[0]}:{config.shard_kill[1]}"
    return (
        f"{config.name}: {config.router}/{config.policy}/{config.mobility} "
        f"({engine}) n={config.n_nodes} t={config.sim_time:.0f}s "
        f"buf={config.buffer_bytes}B ttl={config.ttl:.0f}s "
        f"L={config.initial_copies} [{fault_bits}]"
    )

