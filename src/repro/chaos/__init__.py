"""Chaos harness: fuzz the simulator's correctness envelope.

The paper's claims only matter while the simulator stays *correct* under
buffer pressure and disrupted connectivity — exactly the regimes the SDSRP
experiments live in.  This package closes the loop on the last four PRs'
ingredients (fault injection, the runtime sanitizer, byte-exact
observability, deterministic snapshots) by actively *searching* for
configurations that break them instead of waiting for a sweep to trip over
one:

* :mod:`repro.chaos.space` — seeded sampling of hostile scenario +
  fault-schedule combinations (churn bursts, flap storms, corruption
  spikes, near-zero buffers, TTL edge values) across every router, policy
  and mobility kind;
* :mod:`repro.chaos.oracles` / :mod:`repro.chaos.runner` — each case runs
  with the sanitizer armed and is judged by three oracle families:
  invariant oracles (no :class:`~repro.errors.InvariantViolation`, token
  conservation, delivered ≤ created), metamorphic oracles (a zero-fault
  chaos run is byte-identical to the plain run; delivery ratio must not
  improve when the buffer shrinks at fixed seed) and replay oracles (every
  run — and especially every failure — re-executes byte-identically from
  its recorded seed);
* :mod:`repro.chaos.shrink` — delta-debugs a failing case down to a
  minimal reproducer (fewer fault events, fewer nodes, shorter horizon);
* :mod:`repro.chaos.bisect` — uses :mod:`repro.snapshot` to bracket the
  first violating tick / first divergent tick without re-running the whole
  case each probe;
* :mod:`repro.chaos.corpus` — emits self-contained reproducer files
  (``chaos/corpus/*.json``) with a ready-to-run pytest snippet and the
  trace tail, and replays committed entries forever;
* :mod:`repro.chaos.fuzzer` / :mod:`repro.chaos.cli` — the fuzz loop and the
  ``repro chaos`` command (``--iterations/--seed/--corpus/--budget-seconds``).

See docs/chaos.md for the triage runbook.
"""

from repro.chaos.corpus import load_corpus, replay_entry, write_entry
from repro.chaos.fuzzer import FuzzReport, fuzz
from repro.chaos.oracles import (
    ORACLE_BUFFER_MONOTONE,
    ORACLE_CRASH,
    ORACLE_INVARIANT,
    ORACLE_REPLAY,
    ORACLE_SUMMARY,
    ORACLE_ZERO_FAULT,
    OracleFailure,
)
from repro.chaos.runner import CaseResult, case_digest, run_case
from repro.chaos.shrink import shrink
from repro.chaos.space import ChaosSpace, sample_case

__all__ = [
    "ChaosSpace",
    "CaseResult",
    "FuzzReport",
    "ORACLE_BUFFER_MONOTONE",
    "ORACLE_CRASH",
    "ORACLE_INVARIANT",
    "ORACLE_REPLAY",
    "ORACLE_SUMMARY",
    "ORACLE_ZERO_FAULT",
    "OracleFailure",
    "case_digest",
    "fuzz",
    "load_corpus",
    "replay_entry",
    "run_case",
    "sample_case",
    "shrink",
    "write_entry",
]
