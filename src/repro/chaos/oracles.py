"""Oracle vocabulary and summary-level correctness checks.

Three oracle families judge every fuzzed case (docs/chaos.md):

* **invariant oracles** — the armed sanitizer must not raise
  (:data:`ORACLE_INVARIANT`), the run must not crash with any other
  exception (:data:`ORACLE_CRASH`), and the run summary must be internally
  consistent — delivered ≤ created, no negative counters
  (:data:`ORACLE_SUMMARY`);
* **metamorphic oracles** — a chaos run whose fault plan is disabled must
  be byte-identical to the plain run (:data:`ORACLE_ZERO_FAULT`), at a
  fixed seed the delivery ratio must not *improve* when the buffer shrinks
  (:data:`ORACLE_BUFFER_MONOTONE`), and the scalar and vector engine
  backends must produce byte-identical runs of the same case
  (:data:`ORACLE_BACKEND`, the differential contract of
  docs/vectorization.md), and a sharded case — even one scripting a
  mid-barrier worker kill — must replay the single-process bytes
  (:data:`ORACLE_SHARD`, the contract of docs/sharding.md);
* **replay oracles** — re-running any case from its recorded config must
  reproduce it byte-identically; for failures, the same oracle must fire
  with the same invariant (:data:`ORACLE_REPLAY`).

A failing case is recorded as an :class:`OracleFailure`, the unit the
shrinker minimizes and the corpus serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

ORACLE_INVARIANT = "invariant"
ORACLE_CRASH = "crash"
ORACLE_SUMMARY = "summary"
ORACLE_ZERO_FAULT = "zero-fault-identity"
ORACLE_BUFFER_MONOTONE = "buffer-monotone"
ORACLE_BACKEND = "backend-identity"
ORACLE_SHARD = "shard-identity"
ORACLE_REPLAY = "replay"
ORACLE_FAMILIES = (
    ORACLE_INVARIANT,
    ORACLE_CRASH,
    ORACLE_SUMMARY,
    ORACLE_ZERO_FAULT,
    ORACLE_BUFFER_MONOTONE,
    ORACLE_BACKEND,
    ORACLE_SHARD,
    ORACLE_REPLAY,
)

#: Delivery may legitimately dip a little when a *larger* buffer reorders
#: drop decisions (more queueing can delay the copy that would have been
#: delivered), so the monotone oracle only fires on a flagrant reversal.
MONOTONE_SLACK = 0.25
#: ... and only when the sample is large enough for the ratio to be stable.
MONOTONE_MIN_CREATED = 20


@dataclass
class OracleFailure:
    """One oracle firing on one case.

    ``invariant`` carries the sanitizer's invariant name for
    :data:`ORACLE_INVARIANT` failures (``buffer-accounting``,
    ``copy-conservation``, ...) and the exception type name for crashes.
    """

    oracle: str
    detail: str
    invariant: str | None = None
    violation_time: float | None = None
    node_id: int | None = None
    msg_id: str | None = None
    trace_tail: list[dict[str, Any]] = field(default_factory=list)

    def matches(self, other: "OracleFailure | None") -> bool:
        """Same failure class?  (The shrinker's acceptance predicate: a
        candidate only counts as a reproduction when the same oracle fires
        with the same invariant — shrinking into a *different* bug would
        poison the reproducer.)"""
        return (
            other is not None
            and other.oracle == self.oracle
            and other.invariant == self.invariant
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "oracle": self.oracle,
            "detail": self.detail,
            "invariant": self.invariant,
            "violation_time": self.violation_time,
            "node_id": self.node_id,
            "msg_id": self.msg_id,
            "trace_tail": [dict(r) for r in self.trace_tail],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OracleFailure":
        return cls(
            oracle=str(data["oracle"]),
            detail=str(data["detail"]),
            invariant=data.get("invariant"),
            violation_time=data.get("violation_time"),
            node_id=data.get("node_id"),
            msg_id=data.get("msg_id"),
            trace_tail=list(data.get("trace_tail") or []),
        )


def check_summary(summary: Any) -> OracleFailure | None:
    """Summary-consistency leg of the invariant oracle family.

    The sanitizer checks per-tick state; this checks the aggregated
    outcome.  Both must hold — a counter bug could balance the books every
    tick yet still report more deliveries than creations.
    """
    if summary.delivered > summary.created:
        return OracleFailure(
            oracle=ORACLE_SUMMARY,
            detail=(
                f"delivered {summary.delivered} exceeds created "
                f"{summary.created}"
            ),
            invariant="delivered-le-created",
        )
    negatives = {
        name: value
        for name, value in (
            ("created", summary.created),
            ("delivered", summary.delivered),
            ("relayed", summary.relayed),
            ("contacts", summary.contacts),
        )
        if value < 0
    }
    negatives.update(
        (f"drop_{reason}", count)
        for reason, count in summary.drops.items()
        if count < 0
    )
    negatives.update(
        (f"fault_{kind}", count)
        for kind, count in summary.faults.items()
        if count < 0
    )
    if negatives:
        return OracleFailure(
            oracle=ORACLE_SUMMARY,
            detail=f"negative counters in run summary: {negatives}",
            invariant="non-negative-counters",
        )
    if not 0.0 <= summary.delivery_ratio <= 1.0 and summary.created > 0:
        return OracleFailure(
            oracle=ORACLE_SUMMARY,
            detail=f"delivery ratio out of [0, 1]: {summary.delivery_ratio}",
            invariant="delivery-ratio-range",
        )
    return None


def check_buffer_monotone(
    small_summary: Any, large_summary: Any
) -> OracleFailure | None:
    """Metamorphic check: shrinking the buffer must not *improve* delivery.

    *small_summary* ran with the smaller buffer, *large_summary* with the
    larger one, same seed.  Fires only past :data:`MONOTONE_SLACK` and with
    at least :data:`MONOTONE_MIN_CREATED` messages (see module docstring).
    """
    if min(small_summary.created, large_summary.created) < MONOTONE_MIN_CREATED:
        return None
    gap = small_summary.delivery_ratio - large_summary.delivery_ratio
    if gap > MONOTONE_SLACK:
        return OracleFailure(
            oracle=ORACLE_BUFFER_MONOTONE,
            detail=(
                f"delivery ratio {small_summary.delivery_ratio:.3f} with "
                f"{small_summary.buffer_bytes} B buffer beats "
                f"{large_summary.delivery_ratio:.3f} with "
                f"{large_summary.buffer_bytes} B (gap {gap:.3f} > "
                f"{MONOTONE_SLACK})"
            ),
            invariant="buffer-monotone",
        )
    return None
