"""The fuzzing loop: sample, run, judge, shrink, record.

:func:`fuzz` drives the whole campaign.  Per iteration:

1. sample case *i* from the :class:`~repro.chaos.space.ChaosSpace`
   (pure function of ``(space, seed, i)``);
2. run it with the sanitizer armed and apply the invariant-family oracles
   (:func:`~repro.chaos.runner.run_case`);
3. every ``metamorphic_every``-th *clean* case additionally pays for the
   expensive oracles: replay byte-identity (run the same config twice and
   compare digests), backend identity (the same case on the other engine
   backend — scalar vs vector — must replay the exact bytes), zero-fault
   identity (a disabled fault plan must match a plan-free run
   byte-for-byte) and buffer monotonicity (half the buffer must not
   *improve* delivery at fixed seed);
4. a failing case is verified by replay (same failure class again — a
   non-reproducing failure is itself a replay-oracle finding), shrunk via
   :mod:`~repro.chaos.shrink`, localized via
   :func:`~repro.chaos.bisect.locate_violation`, and written to the corpus
   as a self-contained reproducer.

Wall-clock only gates the *budget* (``time.perf_counter``, the one clock
reprolint REP002 allows); nothing wall-clock-derived reaches the report
payload, so a completed campaign's ``as_dict`` is byte-identical across
re-runs with the same seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chaos.bisect import locate_violation
from repro.chaos.corpus import make_entry, write_entry
from repro.chaos.oracles import (
    ORACLE_BACKEND,
    ORACLE_BUFFER_MONOTONE,
    ORACLE_INVARIANT,
    ORACLE_REPLAY,
    ORACLE_SHARD,
    ORACLE_ZERO_FAULT,
    OracleFailure,
    check_buffer_monotone,
)
from repro.chaos.runner import (
    case_digest,
    check_backend_identity,
    check_shard_identity,
    run_case,
)
from repro.chaos.shrink import shrink, shrink_stats
from repro.chaos.space import ChaosSpace, describe_case, sample_case
from repro.experiments.scenario import ScenarioConfig

__all__ = ["Finding", "FuzzReport", "fuzz"]


@dataclass
class Finding:
    """One confirmed failure, after shrinking and localization."""

    iteration: int
    failure: OracleFailure
    config: ScenarioConfig
    original_config: ScenarioConfig
    shrink_attempts: int = 0
    replay_confirmed: bool = True
    corpus_path: str | None = None
    bracket: dict[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        failure = self.failure.as_dict()
        # The trace tail is reproducer context, not report material.
        failure.pop("trace_tail", None)
        return {
            "iteration": self.iteration,
            "failure": failure,
            "replay_confirmed": self.replay_confirmed,
            "shrunk": shrink_stats(self.config),
            "original": shrink_stats(self.original_config),
            "shrink_attempts": self.shrink_attempts,
            "corpus_path": self.corpus_path,
            "bracket": self.bracket,
        }


@dataclass
class FuzzReport:
    """Campaign outcome.  ``as_dict`` is deterministic for a completed
    campaign (no wall-clock values; see module docstring)."""

    seed: int
    iterations_requested: int
    iterations_run: int = 0
    checks: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def count(self, oracle: str) -> None:
        self.checks[oracle] = self.checks.get(oracle, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "iterations_requested": self.iterations_requested,
            "iterations_run": self.iterations_run,
            "checks": dict(sorted(self.checks.items())),
            "findings": [f.as_dict() for f in self.findings],
            "budget_exhausted": self.budget_exhausted,
        }


def _zero_fault_pair(config: ScenarioConfig) -> ScenarioConfig | None:
    """The metamorphic partner for the zero-fault identity check.

    For a faulted case: the same scenario with the plan removed must be
    byte-identical to the same scenario with a *disabled* plan (faults
    must be pay-for-what-you-use).  For an unfaulted case there is nothing
    to compare.
    """
    if config.faults is None:
        return None
    from repro.faults.plan import FaultPlan

    return config.replace(faults=FaultPlan())


def fuzz(
    iterations: int,
    seed: int,
    *,
    corpus_dir: str | None = None,
    budget_seconds: float | None = None,
    space: ChaosSpace | None = None,
    shrink_failures: bool = True,
    shrink_budget: int = 64,
    metamorphic_every: int = 5,
    check: Callable[[ScenarioConfig], OracleFailure | None] | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run a fuzzing campaign; see the module docstring for the loop.

    *check* overrides the per-case oracle runner (the mutation tests use
    this to fuzz a deliberately-broken simulator); *log* receives one-line
    progress strings (the CLI passes ``print``).
    """
    space = space or ChaosSpace()
    report = FuzzReport(seed=seed, iterations_requested=iterations)
    say = log or (lambda _line: None)
    started = time.perf_counter()
    run_failure = check or (lambda config: run_case(config).failure)

    for index in range(iterations):
        if (
            budget_seconds is not None
            and time.perf_counter() - started >= budget_seconds
        ):
            report.budget_exhausted = True
            say(
                f"budget of {budget_seconds:.0f}s exhausted after "
                f"{report.iterations_run} iterations"
            )
            break
        config = sample_case(space, seed, index)
        report.iterations_run += 1
        failure = run_failure(config)
        report.count(ORACLE_INVARIANT)
        if failure is None and metamorphic_every > 0 \
                and index % metamorphic_every == 0:
            failure = _metamorphic_checks(config, report)
        if failure is None:
            continue
        say(f"FAIL {describe_case(config)}")
        say(f"     {failure.oracle}/{failure.invariant}")
        finding = _handle_failure(
            config,
            failure,
            index,
            seed,
            corpus_dir=corpus_dir,
            shrink_failures=shrink_failures,
            shrink_budget=shrink_budget,
            check=run_failure,
            say=say,
        )
        report.findings.append(finding)
    return report


def _metamorphic_checks(
    config: ScenarioConfig, report: FuzzReport
) -> OracleFailure | None:
    """Replay, zero-fault and buffer-monotone oracles for one clean case."""
    # Replay identity: the exact same config twice, byte-compared.
    report.count(ORACLE_REPLAY)
    first = case_digest(config)
    second = case_digest(config)
    if first != second:
        return OracleFailure(
            oracle=ORACLE_REPLAY,
            detail=(
                f"two runs of the same config diverged: {first} vs {second}"
            ),
            invariant="self-replay",
        )

    # Backend identity: the same case on the *other* engine backend must
    # replay the exact bytes (reuses `first` from the replay check above).
    # Shard identity: a sharded case (worker kill included) must replay
    # the single-process bytes; vacuous for unsharded cases.  Checked
    # before the backend flip so a shard-engine divergence is diagnosed as
    # such — the vector sibling is always single-process, so a lossy
    # barrier merge would otherwise fire the backend oracle first.
    if config.shard_count > 1:
        report.count(ORACLE_SHARD)
        shard_failure = check_shard_identity(config, own_digest=first)
        if shard_failure is not None:
            return shard_failure

    report.count(ORACLE_BACKEND)
    backend_failure = check_backend_identity(config, own_digest=first)
    if backend_failure is not None:
        return backend_failure

    partner = _zero_fault_pair(config)
    if partner is not None:
        report.count(ORACLE_ZERO_FAULT)
        plain = config.replace(faults=None)
        disabled = case_digest(partner)
        bare = case_digest(plain)
        if disabled != bare:
            return OracleFailure(
                oracle=ORACLE_ZERO_FAULT,
                detail=(
                    "a disabled fault plan perturbed the run: digest "
                    f"{disabled} with FaultPlan() vs {bare} with faults=None"
                ),
                invariant="zero-fault-identity",
            )

    # Buffer monotonicity: half the buffer must not improve delivery.
    smaller = config.replace(
        buffer_bytes=max(config.message_size, config.buffer_bytes // 2)
    )
    if smaller.buffer_bytes < config.buffer_bytes:
        report.count(ORACLE_BUFFER_MONOTONE)
        small_run = run_case(smaller)
        large_run = run_case(config)
        if small_run.ok and large_run.ok:
            return check_buffer_monotone(small_run.summary, large_run.summary)
    return None


def _handle_failure(
    config: ScenarioConfig,
    failure: OracleFailure,
    iteration: int,
    seed: int,
    *,
    corpus_dir: str | None,
    shrink_failures: bool,
    shrink_budget: int,
    check: Callable[[ScenarioConfig], OracleFailure | None],
    say: Callable[[str], None],
) -> Finding:
    """Verify by replay, shrink, localize and record one failure."""
    # A backend-identity failure can only be re-observed by its own
    # cross-backend comparison; run_case alone would always "pass" and
    # wrongly downgrade the finding to a failure-replay record.  The same
    # checker drives shrinking, so candidates are accepted on the oracle
    # that actually fired.
    if failure.oracle == ORACLE_BACKEND:
        check = check_backend_identity
    elif failure.oracle == ORACLE_SHARD:
        check = check_shard_identity
    replayed = check(config)
    replay_confirmed = failure.matches(replayed)
    if not replay_confirmed:
        # The failure itself is flaky: that *is* a replay-oracle finding,
        # and shrinking a non-reproducing case would chase noise.
        failure = OracleFailure(
            oracle=ORACLE_REPLAY,
            detail=(
                f"original failure {failure.oracle}/{failure.invariant} did "
                f"not reproduce on replay (got "
                f"{None if replayed is None else replayed.oracle})"
            ),
            invariant="failure-replay",
            trace_tail=failure.trace_tail,
        )

    minimal = config
    attempts = 0
    if shrink_failures and replay_confirmed:
        minimal, attempts = shrink(
            config, failure, check=check, budget=shrink_budget
        )
        say(
            f"     shrunk to {shrink_stats(minimal)} "
            f"in {attempts} candidate runs"
        )

    bracket = None
    if replay_confirmed and failure.oracle == ORACLE_INVARIANT:
        located = _try_locate(minimal)
        if located is not None:
            bracket = located
            say(
                f"     first violation at t={located['violation_time']:.1f} "
                f"(checkpoint bracket from t={located['checkpoint_time']})"
            )

    finding = Finding(
        iteration=iteration,
        failure=failure,
        config=minimal,
        original_config=config,
        shrink_attempts=attempts,
        replay_confirmed=replay_confirmed,
        bracket=bracket,
    )
    if corpus_dir is not None:
        entry = make_entry(
            minimal,
            failure,
            base_seed=seed,
            iteration=iteration,
            shrink_attempts=attempts,
            original_config=config,
        )
        path = write_entry(corpus_dir, entry)
        finding.corpus_path = str(path)
        say(f"     reproducer written to {path}")
    return finding


def _try_locate(config: ScenarioConfig) -> dict[str, Any] | None:
    """Snapshot-bracket the violation; best-effort (a config whose failure
    is a *crash* during capture must not sink the campaign)."""
    try:
        bracket = locate_violation(config)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        return None
    if bracket is None:
        return None
    return {
        "invariant": bracket.invariant,
        "violation_time": bracket.violation_time,
        "checkpoint_time": bracket.checkpoint_time,
        "confirmed_from_checkpoint": bracket.confirmed_from_checkpoint,
    }
