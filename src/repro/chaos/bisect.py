"""Snapshot-accelerated localization of failures and divergences.

Two probes, both built on :mod:`repro.snapshot` and the simulator's
``run(until=...)`` slice execution:

* :func:`locate_violation` — for invariant failures.  Re-runs the case
  once, capturing periodic in-memory snapshots; when the sanitizer fires it
  restores the last snapshot *before* the violation and replays only that
  window to confirm the failure reproduces from mid-run state.  The result
  pins the violation to a ``[checkpoint, violation_time]`` bracket and
  proves the checkpoint itself is a valid reproduction start — triage can
  iterate on a slice instead of the whole run.
* :func:`bisect_divergence` — for replay/metamorphic failures where two
  supposedly-identical runs drift apart.  Runs both legs with snapshots at
  the same instants, compares state digests checkpoint by checkpoint, then
  restores the bracketing pair and steps both legs in single ticks until
  the first tick whose digests differ.  Cost: two full runs plus one
  bracket window, instead of O(log n) full runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.engine.events import PRIORITY_SNAPSHOT
from repro.errors import InvariantViolation
from repro.experiments.runner import build_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.snapshot import Snapshot, restore, save
from repro.snapshot.codec import canonical_json

__all__ = ["ViolationBracket", "bisect_divergence", "locate_violation"]


def state_digest(snapshot: Snapshot) -> str:
    """SHA-256 over the canonical JSON of a snapshot's state payload."""
    return hashlib.sha256(
        canonical_json(snapshot.state).encode("utf-8")
    ).hexdigest()


def _run_with_snapshots(
    config: ScenarioConfig, times: list[float]
) -> tuple[list[Snapshot], InvariantViolation | None]:
    """One run of *config* capturing in-memory snapshots at *times*.

    Returns the snapshots taken before the run ended (a violation stops
    the run and with it the remaining captures) and the violation, if any.
    """
    built = build_scenario(config)
    captured: list[Snapshot] = []
    for t in times:
        built.sim.schedule_at(
            t,
            lambda: captured.append(save(built)),
            priority=PRIORITY_SNAPSHOT,
        )
    try:
        built.sim.run()
    except InvariantViolation as exc:
        return captured, exc
    return captured, None


@dataclass
class ViolationBracket:
    """Where an invariant violation lives, to one checkpoint window."""

    invariant: str
    violation_time: float
    #: Last snapshot instant before the violation (``None`` when it fired
    #: before the first checkpoint).
    checkpoint_time: float | None
    #: Replaying from the checkpoint reproduced the same violation.
    confirmed_from_checkpoint: bool


def locate_violation(
    config: ScenarioConfig, *, checkpoints: int = 8
) -> ViolationBracket | None:
    """Bracket the first invariant violation of *config* (see module doc).

    Returns ``None`` when the run completes cleanly.
    """
    step = config.sim_time / (checkpoints + 1)
    times = [step * (i + 1) for i in range(checkpoints)]
    snapshots, violation = _run_with_snapshots(config, times)
    if violation is None:
        return None
    t_violation = violation.time if violation.time is not None else float("nan")
    before = [s for s in snapshots if float(s.state["t"]) < t_violation]
    if not before:
        return ViolationBracket(
            invariant=violation.invariant,
            violation_time=t_violation,
            checkpoint_time=None,
            confirmed_from_checkpoint=False,
        )
    last = before[-1]
    confirmed = False
    try:
        resumed = restore(last)
        resumed.sim.run()
    except InvariantViolation as again:
        confirmed = (
            again.invariant == violation.invariant
            and again.time == violation.time
        )
    return ViolationBracket(
        invariant=violation.invariant,
        violation_time=t_violation,
        checkpoint_time=float(last.state["t"]),
        confirmed_from_checkpoint=confirmed,
    )


def bisect_divergence(
    config_a: ScenarioConfig,
    config_b: ScenarioConfig,
    *,
    checkpoints: int = 8,
) -> float | None:
    """First simulation time at which two runs' states differ.

    The configs must share a horizon (typically they are the same config,
    or a zero-fault pair).  Returns ``None`` when every checkpoint and
    every tick of the final bracket agree — i.e. the runs are state-
    identical at the probed resolution.
    """
    horizon = min(config_a.sim_time, config_b.sim_time)
    step = horizon / (checkpoints + 1)
    times = [step * (i + 1) for i in range(checkpoints)]
    snaps_a, _ = _run_with_snapshots(config_a, times)
    snaps_b, _ = _run_with_snapshots(config_b, times)

    first_diff = None
    for i, (sa, sb) in enumerate(zip(snaps_a, snaps_b)):
        if state_digest(sa) != state_digest(sb):
            first_diff = i
            break
    if first_diff is None:
        if len(snaps_a) != len(snaps_b):
            # One leg died early: diverged somewhere past the shared prefix.
            shared = min(len(snaps_a), len(snaps_b))
            return times[shared] if shared < len(times) else horizon
        return None
    if first_diff == 0:
        lo = 0.0
        resumed_a = build_scenario(config_a)
        resumed_b = build_scenario(config_b)
    else:
        lo = times[first_diff - 1]
        resumed_a = restore(snaps_a[first_diff - 1])
        resumed_b = restore(snaps_b[first_diff - 1])

    # Step the bracket window in single ticks, comparing state digests.
    tick = max(config_a.tick, 1e-9)
    t = lo
    while t < times[first_diff]:
        t = min(t + tick, times[first_diff])
        try:
            resumed_a.sim.run(until=t)
            resumed_b.sim.run(until=t)
        except InvariantViolation:
            return t
        if state_digest(save(resumed_a)) != state_digest(save(resumed_b)):
            return t
    return times[first_diff]
