"""Command-line interface: ``repro-chaos`` / ``repro-experiments chaos``.

Typical invocations::

    repro-chaos --iterations 200 --seed 7 --corpus chaos/corpus
    repro-chaos --iterations 25 --seed 1 --budget-seconds 60   # smoke
    REPRO_CHAOS_SEED_OFFSET=$(date +%Y%m%d) repro-chaos \
        --iterations 2000 --budget-seconds 1800 --corpus chaos/corpus

Exit status 0 means every oracle held on every case; 1 means findings
were recorded (and, with ``--corpus``, written as reproducer files).
With the same seed, space and iteration count a completed campaign's
``--json`` output is byte-identical across re-runs — that property is
itself checked in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.chaos.fuzzer import fuzz
from repro.chaos.space import ChaosSpace

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Fuzz randomized scenario + fault-schedule combinations against "
            "the invariant, metamorphic and replay oracles "
            "(see docs/chaos.md)."
        ),
    )
    parser.add_argument("--iterations", type=int, default=50, metavar="N",
                        help="cases to generate (default 50)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign base seed; case i is a pure function "
                             "of (seed, i)")
    parser.add_argument("--seed-offset", type=int,
                        default=int(os.environ.get(
                            "REPRO_CHAOS_SEED_OFFSET", "0")),
                        metavar="K",
                        help="added to --seed (nightly CI passes a "
                             "date-derived value via REPRO_CHAOS_SEED_OFFSET "
                             "so every night explores fresh cases while each "
                             "night stays reproducible)")
    parser.add_argument("--corpus", type=str, default=None, metavar="DIR",
                        help="write reproducer files for findings here "
                             "(chaos/corpus to commit them)")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        metavar="S",
                        help="stop sampling new cases after S wall seconds")
    parser.add_argument("--json", type=str, default=None, metavar="FILE",
                        help="dump the campaign report as JSON "
                             "('-' for stdout)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debug minimization of findings")
    parser.add_argument("--shrink-budget", type=int, default=64, metavar="N",
                        help="max candidate runs per shrink (default 64)")
    parser.add_argument("--metamorphic-every", type=int, default=5,
                        metavar="K",
                        help="run the expensive metamorphic oracles on every "
                             "K-th clean case (0 disables; default 5)")
    parser.add_argument("--service", action="store_true",
                        help="fuzz the scenario service instead of the "
                             "simulator: hostile submit/crash/corruption "
                             "sequences against repro.service "
                             "(see docs/service.md)")
    parser.add_argument("--service-ops", type=int, default=60, metavar="N",
                        help="operations per service case (default 60)")
    parser.add_argument("--routers", nargs="+", default=None,
                        help="restrict the search space to these routers")
    parser.add_argument("--policies", nargs="+", default=None,
                        help="restrict the search space to these policies")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding progress lines")
    return parser


def _main_service(args: argparse.Namespace, seed: int) -> int:
    from repro.chaos.service_target import run_service_campaign

    report = run_service_campaign(
        seed, args.iterations, ops_per_case=args.service_ops
    )
    print(
        f"chaos[service]: {report['cases_ok']}/{report['iterations']} "
        f"cases clean (seed {seed}, {report['ops_per_case']} ops/case)"
    )
    for finding in report["findings"]:
        print(
            f"  case {finding['case']}: {finding['oracle']} — "
            f"{finding['detail']}"
        )
    if not report["findings"]:
        print("all service oracles held")
    if args.json:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}")
    return 1 if report["findings"] else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.service:
        return _main_service(args, args.seed + args.seed_offset)
    space = ChaosSpace()
    if args.routers:
        space = ChaosSpace(routers=tuple(args.routers))
    if args.policies:
        space = ChaosSpace(
            routers=space.routers, policies=tuple(args.policies)
        )
    seed = args.seed + args.seed_offset

    report = fuzz(
        args.iterations,
        seed,
        corpus_dir=args.corpus,
        budget_seconds=args.budget_seconds,
        space=space,
        shrink_failures=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        metamorphic_every=args.metamorphic_every,
        log=None if args.quiet else print,
    )

    checks = ", ".join(
        f"{name}={count}" for name, count in sorted(report.checks.items())
    )
    print(
        f"chaos: {report.iterations_run}/{report.iterations_requested} "
        f"iterations (seed {seed}), oracle checks: {checks or 'none'}"
    )
    if report.findings:
        print(f"{len(report.findings)} finding(s):")
        for finding in report.findings:
            failure = finding.failure
            where = finding.corpus_path or "not recorded (no --corpus)"
            print(
                f"  iter {finding.iteration}: {failure.oracle}"
                f"/{failure.invariant} -> {where}"
            )
    else:
        print("all oracles held")

    if args.json:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}")
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
