"""The fault plan: a picklable record of what should go wrong, and when.

A :class:`FaultPlan` travels inside a
:class:`~repro.experiments.scenario.ScenarioConfig` to sweep workers, so it
must stay a plain frozen dataclass.  The plan declares *rates and shapes*
(churn duty cycles, flap intensity, corruption probability) whose concrete
schedule is derived deterministically by the
:class:`~repro.faults.injector.FaultInjector` from the scenario's ``faults``
RNG stream — plus, optionally, an explicit list of :class:`FaultEvent`
records pinning individual faults to exact simulation times.  Scripted
events are what the chaos harness (:mod:`repro.chaos`) fuzzes and shrinks:
they need no RNG at all, so a reproducer file replays the identical schedule
forever.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

#: Scripted fault kinds (also the ``fault.injected`` event vocabulary for
#: the corresponding injected faults; see :mod:`repro.faults.injector`).
EVENT_NODE_DOWN = "node_down"
EVENT_NODE_UP = "node_up"
EVENT_LINK_FLAP = "link_flap"
EVENT_TRANSFER_FAULT = "transfer_fault"
EVENT_KINDS = (
    EVENT_NODE_DOWN, EVENT_NODE_UP, EVENT_LINK_FLAP, EVENT_TRANSFER_FAULT,
)

#: Kinds whose ``node`` field addresses a concrete node id.
_NODE_KINDS = (EVENT_NODE_DOWN, EVENT_NODE_UP)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault pinned to an exact simulation time.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) the fault applies at.
    kind:
        One of :data:`EVENT_KINDS`.  ``node_down``/``node_up`` take the
        target node offline / back online (a down event wipes the buffer
        when the owning plan sets ``churn_wipe_buffer``).  ``link_flap``
        forces down one currently-up link, selected deterministically as
        ``sorted(links)[node % len(links)]`` — no RNG draw, so a shrunk
        reproducer replays bit-exactly.  ``transfer_fault`` truncates the
        next transfer completing at or after *time*.
    node:
        Target node id for node events; selection index for ``link_flap``;
        ignored for ``transfer_fault``.
    """

    time: float
    kind: str
    node: int = 0

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ConfigurationError(
                f"fault event time must be finite and >= 0: {self.time}"
            )
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown fault event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        if self.node < 0:
            raise ConfigurationError(
                f"fault event node/index must be >= 0: {self.node}"
            )

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            node=int(data.get("node", 0)),
        )


def _require_finite(name: str, value: float) -> None:
    # NaN slips through ordering comparisons (every `nan < x` is False), so
    # an explicit finiteness gate must run before any range check.
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite: {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault model for one scenario.

    Parameters
    ----------
    churn_fraction:
        Fraction of the fleet cycling off/on (0 disables churn).  The
        affected nodes are drawn once, deterministically, from the fault RNG
        stream.
    churn_off_time / churn_on_time:
        Duration of each offline / online interval in seconds (a fixed duty
        cycle; each node gets a random phase so outages are staggered).
    churn_wipe_buffer:
        Whether a node reboot loses its buffered messages (RAM buffers).
        Wiped copies are recorded under the ``fault`` drop reason.
    link_flap_rate:
        Expected forced link drops per second across the whole network
        (a Poisson process over the current link set; 0 disables flaps).
    transfer_fault_prob:
        Probability that a completed transmission was truncated on the air
        and must be discarded by the receiver (0 disables transfer faults).
    events:
        Explicit scripted faults (:class:`FaultEvent`), applied *in addition
        to* the rate-based model above.  Scripted events consume no RNG, so
        a plan carrying only events is bit-exact under replay regardless of
        what else the run does.
    """

    churn_fraction: float = 0.0
    churn_off_time: float = 3600.0
    churn_on_time: float = 3600.0
    churn_wipe_buffer: bool = True
    link_flap_rate: float = 0.0
    transfer_fault_prob: float = 0.0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        _require_finite("churn_fraction", self.churn_fraction)
        _require_finite("churn_off_time", self.churn_off_time)
        _require_finite("churn_on_time", self.churn_on_time)
        _require_finite("link_flap_rate", self.link_flap_rate)
        _require_finite("transfer_fault_prob", self.transfer_fault_prob)
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ConfigurationError(
                f"churn_fraction must be in [0, 1]: {self.churn_fraction}"
            )
        if self.churn_off_time <= 0 or self.churn_on_time <= 0:
            raise ConfigurationError(
                "churn_off_time and churn_on_time must be positive: "
                f"{self.churn_off_time}, {self.churn_on_time}"
            )
        if self.link_flap_rate < 0:
            raise ConfigurationError(
                f"link_flap_rate must be non-negative: {self.link_flap_rate}"
            )
        if not 0.0 <= self.transfer_fault_prob <= 1.0:
            raise ConfigurationError(
                f"transfer_fault_prob must be in [0, 1]: {self.transfer_fault_prob}"
            )
        if not isinstance(self.events, tuple):
            # Accept any sequence at the call site but store a hashable,
            # immutable tuple (the plan rides inside frozen ScenarioConfigs).
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"events must contain FaultEvent records, got {event!r}"
                )

    @property
    def enabled(self) -> bool:
        """True when the plan injects at least one kind of fault."""
        return (
            self.churn_fraction > 0
            or self.link_flap_rate > 0
            or self.transfer_fault_prob > 0
            or bool(self.events)
        )

    def validate_for(self, horizon: float, n_nodes: int) -> None:
        """Reject plans whose schedule cannot fit the scenario.

        Called by :meth:`repro.faults.injector.FaultInjector.start` at build
        time.  A churn down-window longer than the horizon means every
        churned node that goes down never comes back — almost always a
        mis-scaled duty cycle, and previously it silently warped the
        schedule into "permanent outage".  Likewise a scripted event beyond
        the horizon would never fire, and a node target outside the fleet
        would crash mid-run instead of at build time.
        """
        if self.churn_fraction > 0:
            if self.churn_off_time > horizon or self.churn_on_time > horizon:
                raise ConfigurationError(
                    f"churn duty cycle ({self.churn_off_time}s off / "
                    f"{self.churn_on_time}s on) exceeds the {horizon}s "
                    "horizon; churned nodes would never cycle"
                )
        for event in self.events:
            if event.time > horizon:
                raise ConfigurationError(
                    f"scripted {event.kind} at t={event.time} is past the "
                    f"{horizon}s horizon and would never fire"
                )
            if event.kind in _NODE_KINDS and event.node >= n_nodes:
                raise ConfigurationError(
                    f"scripted {event.kind} targets node {event.node} but "
                    f"the fleet has only {n_nodes} nodes"
                )

    def replace(self, **changes: Any) -> "FaultPlan":
        """A copy with *changes* applied (dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON checkpoints, fingerprints)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict`."""
        kwargs = dict(data)
        events = kwargs.get("events") or ()
        kwargs["events"] = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
            for e in events
        )
        return cls(**kwargs)
