"""The fault plan: a picklable record of what should go wrong, and when.

A :class:`FaultPlan` travels inside a
:class:`~repro.experiments.scenario.ScenarioConfig` to sweep workers, so it
must stay a plain frozen dataclass.  The plan only declares *rates and
shapes*; the concrete fault schedule is derived deterministically by the
:class:`~repro.faults.injector.FaultInjector` from the scenario's ``faults``
RNG stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault model for one scenario.

    Parameters
    ----------
    churn_fraction:
        Fraction of the fleet cycling off/on (0 disables churn).  The
        affected nodes are drawn once, deterministically, from the fault RNG
        stream.
    churn_off_time / churn_on_time:
        Duration of each offline / online interval in seconds (a fixed duty
        cycle; each node gets a random phase so outages are staggered).
    churn_wipe_buffer:
        Whether a node reboot loses its buffered messages (RAM buffers).
        Wiped copies are recorded under the ``fault`` drop reason.
    link_flap_rate:
        Expected forced link drops per second across the whole network
        (a Poisson process over the current link set; 0 disables flaps).
    transfer_fault_prob:
        Probability that a completed transmission was truncated on the air
        and must be discarded by the receiver (0 disables transfer faults).
    """

    churn_fraction: float = 0.0
    churn_off_time: float = 3600.0
    churn_on_time: float = 3600.0
    churn_wipe_buffer: bool = True
    link_flap_rate: float = 0.0
    transfer_fault_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ConfigurationError(
                f"churn_fraction must be in [0, 1]: {self.churn_fraction}"
            )
        if self.churn_off_time <= 0 or self.churn_on_time <= 0:
            raise ConfigurationError(
                "churn_off_time and churn_on_time must be positive: "
                f"{self.churn_off_time}, {self.churn_on_time}"
            )
        if self.link_flap_rate < 0:
            raise ConfigurationError(
                f"link_flap_rate must be non-negative: {self.link_flap_rate}"
            )
        if not 0.0 <= self.transfer_fault_prob <= 1.0:
            raise ConfigurationError(
                f"transfer_fault_prob must be in [0, 1]: {self.transfer_fault_prob}"
            )

    @property
    def enabled(self) -> bool:
        """True when the plan injects at least one kind of fault."""
        return (
            self.churn_fraction > 0
            or self.link_flap_rate > 0
            or self.transfer_fault_prob > 0
        )

    def replace(self, **changes: Any) -> "FaultPlan":
        """A copy with *changes* applied (dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON checkpoints, fingerprints)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)
