"""Fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into events.

The injector layers on top of a world (:class:`~repro.world.world.World` or
:class:`~repro.world.trace_world.TraceWorld` — anything exposing
``set_node_down`` / ``set_node_up`` / ``force_link_down``) and the
:class:`~repro.net.transfer.TransferManager`:

* churn cycles are expanded into absolute-time down/up events at
  :data:`~repro.engine.events.PRIORITY_FAULT` (after the world tick rewires
  connectivity, before message logic);
* link flaps are a Poisson process over the *current* link set;
* transfer faults hook the manager's completion path via
  :attr:`~repro.net.transfer.TransferManager.fault_model`;
* scripted :class:`~repro.faults.plan.FaultEvent` records are scheduled at
  their exact times with no RNG involvement (the chaos harness fuzzes and
  shrinks these).

Every injected fault is emitted on the ``fault.injected`` topic as
``(kind, now)`` so :class:`~repro.reports.metrics.MetricsCollector` can
surface per-kind counters in the run summary.  All randomness comes from the
single generator handed to the constructor (the scenario's ``faults`` RNG
stream), so runs are bit-reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.engine.events import PRIORITY_FAULT
from repro.errors import FaultInjectionError
from repro.faults.plan import (
    EVENT_LINK_FLAP,
    EVENT_NODE_DOWN,
    EVENT_NODE_UP,
    EVENT_TRANSFER_FAULT,
    FaultEvent,
    FaultPlan,
)
from repro.net.outcomes import DROP_FAULT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import Simulator
    from repro.net.transfer import Transfer, TransferManager
    from repro.world.node import Node


class FaultTarget(Protocol):
    """What the injector needs from a world implementation."""

    sim: "Simulator"
    nodes: list["Node"]
    links: set[tuple[int, int]]
    transfer_manager: "TransferManager"

    def set_node_down(self, node_id: int) -> None: ...
    def set_node_up(self, node_id: int) -> None: ...
    def force_link_down(self, i: int, j: int) -> bool: ...


#: Fault kinds reported through ``fault.injected`` / ``RunSummary.faults``.
KIND_NODE_DOWN = "node_down"
KIND_NODE_UP = "node_up"
KIND_LINK_FLAP = "link_flap"
KIND_TRANSFER_FAULT = "transfer_fault"
FAULT_KINDS = (KIND_NODE_DOWN, KIND_NODE_UP, KIND_LINK_FLAP, KIND_TRANSFER_FAULT)


class FaultInjector:
    """Schedules and applies the faults a :class:`FaultPlan` declares."""

    def __init__(
        self,
        world: FaultTarget,
        plan: FaultPlan,
        rng: np.random.Generator,
    ) -> None:
        self.world = world
        self.sim = world.sim
        self.plan = plan
        self.rng = rng
        #: Per-kind counts of injected faults (mirrors the emitted events).
        self.counts: dict[str, int] = {}
        #: Node ids selected for churn (fixed for the whole run).
        self.churned_nodes: tuple[int, ...] = ()
        #: Per-node random phase of the churn duty cycle, keyed by node id.
        #: Kept so a snapshot restore can replay the exact event times (the
        #: accumulation loop below produces floats that cannot be recomputed
        #: from a cycle index without drift).
        self.churn_phases: dict[int, float] = {}
        #: Time of the next link flap, recorded even past the horizon so a
        #: restore with an extended horizon re-arms the consumed draw.
        self._next_flap_at = float("nan")
        #: Scripted transfer-fault times, sorted, plus a consumed cursor so a
        #: snapshot restore knows which were already spent.
        self._scripted_transfer_times: tuple[float, ...] = tuple(sorted(
            e.time for e in plan.events if e.kind == EVENT_TRANSFER_FAULT
        ))
        self._scripted_transfer_consumed = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Validate the plan against the scenario, derive the fault schedule
        and register all hooks.  Idempotence is deliberately *not* provided:
        a second start would double-inject."""
        if self._started:
            raise FaultInjectionError("fault injector already started")
        self._started = True
        self.plan.validate_for(self.sim.end_time, len(self.world.nodes))
        if self.plan.churn_fraction > 0:
            self._schedule_churn()
        if self.plan.link_flap_rate > 0:
            self._schedule_next_flap()
        if self.plan.transfer_fault_prob > 0 or self._scripted_transfer_times:
            manager = self.world.transfer_manager
            if manager.fault_model is not None:
                raise FaultInjectionError(
                    "transfer manager already has a fault model attached"
                )
            manager.fault_model = self
        self._schedule_scripted(after=float("-inf"))

    def _emit(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sim.listeners.emit("fault.injected", kind, self.sim.now)

    # -- node churn ----------------------------------------------------------

    def _schedule_churn(self) -> None:
        n = len(self.world.nodes)
        k = int(round(self.plan.churn_fraction * n))
        if k == 0:
            return
        chosen = self.rng.choice(n, size=k, replace=False)
        self.churned_nodes = tuple(int(i) for i in sorted(chosen))
        for node_id in self.churned_nodes:
            # A random phase staggers outages; the duty cycle itself is fixed.
            period = self.plan.churn_off_time + self.plan.churn_on_time
            self.churn_phases[node_id] = float(self.rng.uniform(0.0, period))
        self._schedule_churn_events(after=float("-inf"))

    def _schedule_churn_events(self, after: float) -> None:
        """Expand the stored phases into down/up events strictly after *after*.

        Restore replays this loop from the captured phases: the repeated
        float addition reproduces the original event times bit-exactly, and
        events at or before the snapshot instant are skipped.
        """
        for node_id in self.churned_nodes:
            t = self.churn_phases[node_id]
            down = True
            while t <= self.sim.end_time:
                if t > after:
                    self.sim.schedule_at(
                        t, self._churn_event, node_id, down, priority=PRIORITY_FAULT
                    )
                t += self.plan.churn_off_time if down else self.plan.churn_on_time
                down = not down

    def _churn_event(self, node_id: int, down: bool) -> None:
        if down:
            self.world.set_node_down(node_id)
            self._emit(KIND_NODE_DOWN)
            if self.plan.churn_wipe_buffer:
                self._wipe_buffer(node_id)
        else:
            self.world.set_node_up(node_id)
            self._emit(KIND_NODE_UP)

    def _wipe_buffer(self, node_id: int) -> None:
        node = self.world.nodes[node_id]
        if node.router is None:
            return
        # All the node's transfers were aborted when its links dropped, so
        # nothing is pinned; the guard keeps a partial wipe from crashing.
        for message in node.buffer.messages():
            if not node.buffer.is_pinned(message.msg_id):
                node.router.drop_message(message, DROP_FAULT)

    # -- scripted events -----------------------------------------------------

    def _schedule_scripted(self, after: float) -> None:
        """Schedule the plan's :class:`FaultEvent` records strictly after
        *after* (snapshot restore passes the capture instant, exactly like
        :meth:`_schedule_churn_events`).

        Transfer-fault events are *not* scheduled here: they fire through the
        :meth:`transfer_fails` hook when a transfer completes, tracked by the
        consumed cursor instead of the event queue.
        """
        for index, event in enumerate(self.plan.events):
            if event.kind == EVENT_TRANSFER_FAULT:
                continue
            if event.time > after and event.time <= self.sim.end_time:
                self.sim.schedule_at(
                    event.time,
                    self._scripted_event,
                    index,
                    priority=PRIORITY_FAULT,
                )

    def _scripted_event(self, index: int) -> None:
        event = self.plan.events[index]
        if event.kind == EVENT_NODE_DOWN:
            self.world.set_node_down(event.node)
            self._emit(KIND_NODE_DOWN)
            if self.plan.churn_wipe_buffer:
                self._wipe_buffer(event.node)
        elif event.kind == EVENT_NODE_UP:
            self.world.set_node_up(event.node)
            self._emit(KIND_NODE_UP)
        elif event.kind == EVENT_LINK_FLAP:
            # Deterministic pick: the event's index field selects a link from
            # the sorted current link set.  No RNG draw, so scripted flaps
            # leave the fault stream untouched (replay/shrink stability).
            links = sorted(self.world.links)
            if links:
                i, j = links[event.node % len(links)]
                if self.world.force_link_down(i, j):
                    self._emit(KIND_LINK_FLAP)

    # -- link flaps ----------------------------------------------------------

    def _schedule_next_flap(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.plan.link_flap_rate))
        self._next_flap_at = self.sim.now + delay
        if self.sim.now + delay <= self.sim.end_time:
            self.sim.schedule_in(
                delay, self._flap_event, priority=PRIORITY_FAULT
            )

    def rearm_flap(self) -> None:
        """Re-schedule the pending flap event (snapshot restore)."""
        when = self._next_flap_at
        if when == when and when <= self.sim.end_time:
            self.sim.schedule_at(when, self._flap_event, priority=PRIORITY_FAULT)

    def _flap_event(self) -> None:
        links = sorted(self.world.links)
        if links:
            i, j = links[int(self.rng.integers(len(links)))]
            if self.world.force_link_down(i, j):
                self._emit(KIND_LINK_FLAP)
        self._schedule_next_flap()

    # -- transfer faults (TransferManager.fault_model protocol) --------------

    def transfer_fails(self, transfer: "Transfer") -> bool:
        """Decide whether *transfer* was truncated on the air.

        Scripted transfer faults are consumed first: the earliest unconsumed
        scripted time at or before ``sim.now`` truncates this transfer.  The
        probabilistic model only draws from the RNG when its probability is
        non-zero, so a plan carrying scripted events alone never perturbs the
        fault stream.
        """
        if (
            self._scripted_transfer_consumed < len(self._scripted_transfer_times)
            and self._scripted_transfer_times[self._scripted_transfer_consumed]
            <= self.sim.now
        ):
            self._scripted_transfer_consumed += 1
            self._emit(KIND_TRANSFER_FAULT)
            return True
        if self.plan.transfer_fault_prob <= 0:
            return False
        if self.rng.random() >= self.plan.transfer_fault_prob:
            return False
        self._emit(KIND_TRANSFER_FAULT)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector plan={self.plan} counts={self.counts}>"
