"""Deterministic fault injection for DTN scenarios.

The paper evaluates SDSRP under ideal conditions — every node stays up for
the whole run and every accepted transfer succeeds.  Real DTN deployments
(disaster relief, vehicular fleets) are motivated by exactly the opposite,
so this subsystem adds a first-class fault model:

* **node churn** — nodes go offline (dropping all links, optionally wiping
  their buffer) and rejoin later on a deterministic duty cycle;
* **link flaps** — random live links are forced down mid-tick, aborting
  in-flight transfers; if both endpoints stay in range the link re-forms on
  the next world tick;
* **transfer faults** — a completed transmission is truncated on the air
  with some probability; the receiver discards the partial copy and spray
  tokens are left uncommitted (the split protocol is two-phase).

Everything is driven by a dedicated :class:`~repro.rng.RngFactory` stream
(``"faults"``), so faulted runs stay bit-reproducible: identical seeds give
identical outages, flaps and truncations.
"""

from repro.faults.injector import FAULT_KINDS, FaultInjector
from repro.faults.plan import EVENT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "EVENT_KINDS", "FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan",
]
