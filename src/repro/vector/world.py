"""The vector engine backend's world: array-native link bookkeeping.

:class:`VectorWorld` replaces the scalar tick's set-of-tuples link pipeline
(detector set -> heterogeneous filter -> down filter -> two set differences
-> sorted iteration) with sorted int64 key arrays end to end.  Only the
per-tick *delta* — links that actually went up or down — ever touches
Python objects, so the cost per tick is O(pairs-in-range) NumPy work plus
O(changed links) event dispatch, instead of O(pairs-in-range) tuple/set
churn.

Determinism contract (pinned by ``tests/vector/test_equivalence.py``):

* the same pairs are detected (bit-identical distance math, see
  :mod:`repro.vector.kernels`);
* ``link.down`` then ``link.up`` events fire in ascending ``(i, j)`` order,
  exactly like the scalar world's ``sorted()`` iterations;
* ``self.links`` holds the *pre-tick* set while link handlers run and the
  post-tick set afterwards, matching the scalar world's assign-after-fire;
* faults (:meth:`set_node_down`, :meth:`force_link_down`) and snapshot
  restore mutate ``links`` through the scalar entry points; the key mirror
  re-syncs lazily on the next tick.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.net.transfer import TransferManager
from repro.obs.profiler import timed
from repro.vector.kernels import (
    contact_keys_grid,
    contact_keys_matrix,
    filter_heterogeneous_keys,
    key_delta,
    mask_down_keys,
    pairs_to_keys,
)
from repro.world.contacts import ContactDetector
from repro.world.node import Node
from repro.world.world import World

__all__ = ["VectorWorld", "make_contact_kernel"]

#: Fleet size above which the auto contact backend switches from the dense
#: upper-triangle broadcast to uniform-grid binning (mirrors
#: ``make_detector``'s size-based default).
GRID_THRESHOLD = 512


def make_contact_kernel(n_nodes: int, kind: str | None = None):
    """Pick the contact kernel: explicit *kind* or a size-based default."""
    if kind is None:
        kind = "matrix" if n_nodes <= GRID_THRESHOLD else "grid"
    if kind == "matrix":
        return contact_keys_matrix
    if kind == "grid":
        return contact_keys_grid
    raise ConfigurationError(
        f"unknown contact backend {kind!r}; expected 'matrix' or 'grid'"
    )


class VectorWorld(World):
    """Struct-of-arrays world tick (see module docstring)."""

    def __init__(
        self,
        sim,
        mobility: MobilityModel,
        nodes: list[Node],
        transfer_manager: TransferManager,
        detector: ContactDetector | None = None,
        tick: float = 1.0,
        contact_backend: str | None = None,
    ) -> None:
        # The links property setter runs during super().__init__; seed its
        # backing fields first.
        self._links_set: set[tuple[int, int]] = set()
        self._link_keys = np.empty(0, dtype=np.int64)
        self._keys_dirty = True
        super().__init__(sim, mobility, nodes, transfer_manager, detector, tick)
        self._n = len(self.nodes)
        self._contact_kernel = make_contact_kernel(self._n, contact_backend)

    # -- links mirror ------------------------------------------------------

    # ``links`` stays the public, scalar-compatible view (faults, sanitizer,
    # snapshot capture and restore all read or rebind it); the sorted key
    # array is a cache that re-syncs lazily after out-of-band mutations.
    @property
    def links(self) -> set[tuple[int, int]]:
        return self._links_set

    @links.setter
    def links(self, value: set[tuple[int, int]]) -> None:
        self._links_set = value
        self._keys_dirty = True

    def _sync_keys(self) -> None:
        """Rebuild the key mirror from ``links`` (restore / fault paths)."""
        if self._links_set:
            pairs = np.array(sorted(self._links_set), dtype=np.int64)
            self._link_keys = pairs_to_keys(pairs[:, 0], pairs[:, 1], self._n)
        else:
            self._link_keys = np.empty(0, dtype=np.int64)
        self._keys_dirty = False

    # -- fault hooks (mutate links out of band; invalidate the mirror) -----

    def set_node_down(self, node_id: int) -> None:
        super().set_node_down(node_id)
        self._keys_dirty = True

    def force_link_down(self, i: int, j: int) -> bool:
        changed = super().force_link_down(i, j)
        if changed:
            self._keys_dirty = True
        return changed

    # -- the tick ----------------------------------------------------------

    def update(self) -> None:
        """One world step, array-native (same events as ``World.update``)."""
        now = self.sim.now
        profiler = self.sim.profiler
        with timed(profiler, "movement"):
            self.positions = self.mobility.advance(now)
        with timed(profiler, "contacts"):
            new_keys = self._contact_kernel(self.positions, self._max_range)
            if not self._uniform_range:
                new_keys = filter_heterogeneous_keys(
                    new_keys, self._n, self.positions, self._ranges
                )
            if self.down_nodes:
                new_keys = mask_down_keys(new_keys, self._n, self.down_nodes)

        with timed(profiler, "links"):
            if self._keys_dirty:
                self._sync_keys()
            downs, ups = key_delta(self._link_keys, new_keys)
            n = self._n
            nodes = self.nodes
            down_pairs = [(key // n, key % n) for key in downs.tolist()]
            up_pairs = [(key // n, key % n) for key in ups.tolist()]
            # Ascending key order == the scalar world's sorted (i, j) tuple
            # order; ``links`` still exposes the pre-tick set while the
            # handlers run, exactly like the scalar assign-after-fire.
            for i, j in down_pairs:
                self._link_down(nodes[i], nodes[j])
            for i, j in up_pairs:
                self._link_up(nodes[i], nodes[j])
            if down_pairs or up_pairs:
                links = self._links_set
                links.difference_update(down_pairs)
                links.update(up_pairs)
            self._link_keys = new_keys
            self._keys_dirty = False

        self._routing_phase(now)
