"""Struct-of-arrays fast path for the simulation hot loop.

The scalar engine (``repro.world.World`` + per-node routing scans) is the
reference implementation; this package provides an alternative *engine
backend* that computes the same per-tick decisions with batched NumPy
kernels and feeds the **unchanged** per-transfer commit logic, so every
listener (metrics, sanitizer, snapshots, obs, chaos oracles) sees the
identical event stream.  Selection is ``ScenarioConfig.engine_backend``
(``"scalar"`` | ``"vector"``); byte-identity is pinned by the differential
suite in ``tests/vector/test_equivalence.py``.  See docs/vectorization.md.
"""

from repro.vector.kernels import (
    contact_keys_grid,
    contact_keys_matrix,
    filter_heterogeneous_keys,
    key_delta,
    keys_to_pairs,
    mask_down_keys,
    pairs_to_keys,
    sdsrp_priority_batch,
)
from repro.vector.world import VectorWorld, make_contact_kernel

__all__ = [
    "VectorWorld",
    "contact_keys_grid",
    "contact_keys_matrix",
    "filter_heterogeneous_keys",
    "key_delta",
    "keys_to_pairs",
    "make_contact_kernel",
    "mask_down_keys",
    "pairs_to_keys",
    "sdsrp_priority_batch",
]
