"""Pure array kernels for the vector engine backend.

Every kernel here is a pure function of its array inputs and is *exactly*
equivalent — to the last float bit — to a scalar reference the codebase
already runs:

* the contact kernels reproduce the pairwise ``dx*dx + dy*dy <= r*r``
  comparison of :class:`repro.world.contacts.BruteForceDetector`, including
  the boundary tie at exactly ``distance == radius`` (``<=``, never ``<``);
* :func:`filter_heterogeneous_keys` reproduces
  ``World._filter_heterogeneous``'s min-of-ranges test;
* :func:`sdsrp_priority_batch` evaluates the paper's Eqs. 4-13 through the
  same :mod:`repro.core.priority` ufunc pipeline the scalar policy calls
  per message — elementwise ufunc application makes batch and scalar
  results bit-identical, which ``tests/vector/test_kernels.py`` asserts.

Links are encoded as canonical int64 *keys* ``i * n + j`` with ``i < j``;
ascending key order equals lexicographic ``(i, j)`` tuple order, so sorted
key arrays iterate link events in exactly the order the scalar world fires
them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.params import FORM_CLOSED
from repro.core.priority import (
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_taylor,
)
from repro.errors import ConfigurationError

__all__ = [
    "contact_keys_grid",
    "contact_keys_matrix",
    "filter_heterogeneous_keys",
    "key_delta",
    "keys_to_pairs",
    "mask_down_keys",
    "pairs_to_keys",
    "sdsrp_priority_batch",
    "triu_pairs",
]


@lru_cache(maxsize=8)
def triu_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached upper-triangle index pair ``(i, j), i < j`` arrays for *n*.

    Row-major order, so ``i * n + j`` is ascending — downstream kernels get
    sorted key arrays for free.
    """
    iu, ju = np.triu_indices(n, k=1)
    return iu.astype(np.int64), ju.astype(np.int64)


def pairs_to_keys(ii: np.ndarray, jj: np.ndarray, n: int) -> np.ndarray:
    """Canonical int64 keys ``i * n + j`` (inputs must satisfy i < j < n)."""
    return ii.astype(np.int64) * np.int64(n) + jj.astype(np.int64)


def keys_to_pairs(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pairs_to_keys`."""
    return keys // np.int64(n), keys % np.int64(n)


def contact_keys_matrix(positions: np.ndarray, radius: float) -> np.ndarray:
    """All link keys within *radius*, by upper-triangle broadcast.

    Computes each pairwise distance exactly once (triangle, not the full
    square matrix) with the same subtract/multiply/add float sequence as
    the scalar detector, so the boundary tie behaves identically.
    """
    check_positions(positions, radius)
    n = positions.shape[0]
    if n < 2:
        return np.empty(0, dtype=np.int64)
    iu, ju = triu_pairs(n)
    diff = positions[iu] - positions[ju]
    d2 = np.einsum("ij,ij->i", diff, diff)
    close = d2 <= radius * radius
    return pairs_to_keys(iu[close], ju[close], n)


def contact_keys_grid(positions: np.ndarray, radius: float) -> np.ndarray:
    """All link keys within *radius*, by uniform cell binning.

    Cell size equals the radius, so candidates live in the 3x3 cell
    neighborhood; scanning the cell itself plus the forward half of its
    8-neighborhood visits every adjacent cell pair once.  ~O(N) for fleets
    spread over an area much larger than the radius; returns the exact
    same sorted key array as :func:`contact_keys_matrix`.
    """
    check_positions(positions, radius)
    n = positions.shape[0]
    if n < 2:
        return np.empty(0, dtype=np.int64)
    cells = np.floor(positions / radius).astype(np.int64)
    buckets: dict[tuple[int, int], list[int]] = {}
    for idx in range(n):
        buckets.setdefault((int(cells[idx, 0]), int(cells[idx, 1])), []).append(idx)

    forward = ((1, 0), (1, 1), (0, 1), (-1, 1))
    cand_a: list[int] = []
    cand_b: list[int] = []
    for (cx, cy), members in buckets.items():
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1 :]:
                cand_a.append(a)
                cand_b.append(b)
        for dx, dy in forward:
            other = buckets.get((cx + dx, cy + dy))
            if not other:
                continue
            for a in members:
                for b in other:
                    cand_a.append(a)
                    cand_b.append(b)
    if not cand_a:
        return np.empty(0, dtype=np.int64)
    ia = np.asarray(cand_a, dtype=np.int64)
    ib = np.asarray(cand_b, dtype=np.int64)
    lo = np.minimum(ia, ib)
    hi = np.maximum(ia, ib)
    # Same float sequence as the matrix kernel: positions[i] - positions[j]
    # with i < j, then squared — so the radius boundary tie agrees exactly.
    diff = positions[lo] - positions[hi]
    close = np.einsum("ij,ij->i", diff, diff) <= radius * radius
    keys = pairs_to_keys(lo[close], hi[close], n)
    keys.sort()
    return keys


def filter_heterogeneous_keys(
    keys: np.ndarray, n: int, positions: np.ndarray, ranges: np.ndarray
) -> np.ndarray:
    """Keep keys within the *smaller* of the two endpoints' radio ranges.

    Vectorized twin of ``World._filter_heterogeneous`` (same ``<=`` on the
    squared min-range).
    """
    if keys.size == 0:
        return keys
    ii, jj = keys_to_pairs(keys, n)
    limit = np.minimum(ranges[ii], ranges[jj])
    diff = positions[ii] - positions[jj]
    d2 = np.einsum("ij,ij->i", diff, diff)
    return keys[d2 <= limit * limit]


def mask_down_keys(keys: np.ndarray, n: int, down_nodes: set[int]) -> np.ndarray:
    """Discard keys touching any offline node (fault injection)."""
    if keys.size == 0 or not down_nodes:
        return keys
    down = np.fromiter(sorted(down_nodes), dtype=np.int64)
    ii, jj = keys_to_pairs(keys, n)
    alive = ~(np.isin(ii, down) | np.isin(jj, down))
    return keys[alive]


def key_delta(
    old_keys: np.ndarray, new_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(downs, ups)``: keys leaving and keys entering, both ascending.

    Both inputs must be sorted and duplicate-free (the contact kernels
    guarantee this).  Equivalent to the scalar world's
    ``sorted(old - new)`` / ``sorted(new - old)`` set differences.
    """
    # Most ticks rewire nothing: sorted-unique arrays are equal iff the
    # link sets are, so one cheap comparison skips both set differences.
    if old_keys.size == new_keys.size and np.array_equal(old_keys, new_keys):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    downs = old_keys[~np.isin(old_keys, new_keys, assume_unique=True)]
    ups = new_keys[~np.isin(new_keys, old_keys, assume_unique=True)]
    return downs, ups


def sdsrp_priority_batch(
    copies: np.ndarray,
    remaining_ttl: np.ndarray,
    m_seen: np.ndarray,
    n_holders: np.ndarray,
    lam: float,
    n_nodes: int,
    priority_form: str = FORM_CLOSED,
    taylor_terms: int = 8,
) -> np.ndarray:
    """Batched SDSRP priority U_i (paper Eq. 10, or the Eq. 13 truncation).

    One ufunc pass over a whole message population; per-element results are
    bit-identical to :meth:`repro.core.sdsrp.SdsrpPolicy.priority` calling
    the same :mod:`repro.core.priority` functions with scalars.
    """
    if priority_form == FORM_CLOSED:
        return np.asarray(
            priority_closed_form(
                copies, remaining_ttl, m_seen, n_holders, lam, n_nodes
            ),
            dtype=float,
        )
    pt = p_delivered(m_seen, n_nodes)
    pr = p_remaining(copies, remaining_ttl, n_holders, lam, n_nodes)
    return np.asarray(
        priority_taylor(pt, pr, n_holders, terms=taylor_terms), dtype=float
    )


def check_positions(positions: np.ndarray, radius: float) -> None:
    """Shared input validation for the contact kernels."""
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive: {radius}")
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError(
            f"positions must have shape (N, 2), got {positions.shape}"
        )
