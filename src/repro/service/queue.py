"""Bounded admission queue: explicit backpressure, deterministic shedding.

The service never buffers unbounded work.  When the queue is full an
arriving job either

* **displaces** the worst queued job — strictly lower priority, newest
  admission order among equals — which is *shed* (journaled with a reason
  and counted, never silently dropped), or
* is **rejected** with an explicit deterministic ``retry_after`` hint
  (backpressure: the client owns the retry, the service owns the bound).

Dispatch order is highest priority first, admission order (FIFO) within a
priority — fully deterministic, no wall-clock anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionDecision", "AdmissionQueue", "SHED_DISPLACED"]

#: Shed-reason vocabulary (docs/chaos.md taxonomy): the only way the
#: service drops accepted work, always journaled and counted.
SHED_DISPLACED = "displaced-by-priority"

#: Deterministic backpressure hint: seconds-per-queued-job a rejected
#: client should wait before retrying.  Scaled by queue depth so pressure
#: grows with load; a constant, not a measurement, so replays are stable.
RETRY_AFTER_PER_JOB = 0.5


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of offering one job to the queue."""

    admitted: bool
    #: Job displaced to make room (shed by the caller), if any.
    displaced: str | None = None
    #: Backpressure hint for a rejected submission (seconds).
    retry_after: float | None = None


@dataclass(frozen=True)
class _Entry:
    job_id: str
    priority: int
    seq: int

    @property
    def dispatch_key(self) -> tuple[int, int]:
        """Sort key for dispatch: highest priority, then oldest."""
        return (-self.priority, self.seq)

    @property
    def victim_key(self) -> tuple[int, int]:
        """Sort key for shedding: lowest priority, then newest."""
        return (self.priority, -self.seq)


class AdmissionQueue:
    """A bounded priority queue over job ids."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job_id: str) -> bool:
        return any(e.job_id == job_id for e in self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def retry_after(self) -> float:
        """The deterministic backpressure hint at the current depth."""
        return RETRY_AFTER_PER_JOB * (len(self._entries) + 1)

    def offer(
        self, job_id: str, *, priority: int = 0, seq: int = 0
    ) -> AdmissionDecision:
        """Try to admit one job; full queues shed or reject, never grow."""
        entry = _Entry(job_id=job_id, priority=priority, seq=seq)
        if not self.full:
            self._entries.append(entry)
            return AdmissionDecision(admitted=True)
        victim = min(self._entries, key=lambda e: e.victim_key)
        if priority > victim.priority:
            self._entries.remove(victim)
            self._entries.append(entry)
            return AdmissionDecision(admitted=True, displaced=victim.job_id)
        return AdmissionDecision(
            admitted=False, retry_after=self.retry_after()
        )

    def force(self, job_id: str, *, priority: int = 0, seq: int = 0) -> None:
        """Enqueue bypassing the bound.

        Only for crash recovery: a requeued job was *already accepted*
        before the crash, and recovery must never shed accepted work.  The
        transient overshoot drains through normal dispatch.
        """
        self._entries.append(_Entry(job_id=job_id, priority=priority, seq=seq))

    def pop(self) -> str | None:
        """Remove and return the next job to dispatch, or ``None``."""
        if not self._entries:
            return None
        entry = min(self._entries, key=lambda e: e.dispatch_key)
        self._entries.remove(entry)
        return entry.job_id

    def snapshot(self) -> list[str]:
        """Queued job ids in dispatch order (diagnostics/tests)."""
        return [
            e.job_id for e in sorted(self._entries, key=lambda e: e.dispatch_key)
        ]
