"""Resilient scenario-execution service (docs/service.md).

A supervised, crash-tolerant job service over the existing scenario
machinery: an append-only job journal that replays on restart, a worker
supervisor with heartbeat/timeout detection and seeded retry backoff,
bounded admission with explicit backpressure and load shedding, and a
result cache keyed by the deterministic config fingerprint (same
fingerprint → same bytes, so serving a hit is indistinguishable from
recomputing).
"""

from repro.service.api import ScenarioService, ServiceStats, Ticket
from repro.service.cache import ResultCache
from repro.service.queue import AdmissionQueue
from repro.service.store import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
)
from repro.service.supervisor import JobOutcome, WorkerSupervisor

__all__ = [
    "AdmissionQueue",
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobOutcome",
    "JobRecord",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "ResultCache",
    "SHED",
    "ScenarioService",
    "ServiceStats",
    "TERMINAL_STATES",
    "Ticket",
    "WorkerSupervisor",
]
